//! Admission control: a bounded job queue that sheds load instead of
//! buffering it.
//!
//! The queue is the daemon's only buffer between connection workers and
//! compute workers. It is *bounded* and [`try_submit`] never blocks:
//! when the queue is full the request is rejected right away with a
//! typed [`WcmsError::Overloaded`] carrying a retry-after hint, so a
//! saturated daemon degrades into fast, honest rejections instead of an
//! unbounded backlog of doomed work (the crash-only stance applied to
//! overload: fail the request now, cheaply, rather than later,
//! expensively).
//!
//! [`try_submit`]: AdmissionQueue::try_submit

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

use wcms_error::WcmsError;

/// Clamp bounds for the retry-after hint.
const MIN_RETRY_AFTER_MS: u64 = 50;
const MAX_RETRY_AFTER_MS: u64 = 5_000;

/// How long a rejected client should back off, given the backlog it
/// saw. Scales with the work ahead of it (half the queue times the
/// estimated per-job cost — by the time it retries, roughly half the
/// backlog should have drained), clamped to a sane band.
#[must_use]
pub fn retry_after_ms(queue_depth: usize, est_job_ms: u64) -> u64 {
    let depth = queue_depth as u64;
    (depth / 2).saturating_mul(est_job_ms).clamp(MIN_RETRY_AFTER_MS, MAX_RETRY_AFTER_MS)
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer job queue with non-blocking
/// admission and blocking consumption.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `cap` jobs (minimum one).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner { queue: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    // A poisoned mutex means some thread panicked while holding it; the
    // queue's state (a VecDeque and a bool) is valid after any partial
    // operation, so we keep serving rather than propagate the poison.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admit a job or shed it. Never blocks. On admission, returns the
    /// number of jobs queued *ahead* of this one — the caller's honest
    /// estimate of how long it will wait before a worker picks it up.
    ///
    /// # Errors
    ///
    /// [`WcmsError::Overloaded`] when the queue is at capacity, with a
    /// retry-after hint derived from `est_job_ms`;
    /// [`WcmsError::Cancelled`] when the queue has been closed for
    /// shutdown.
    pub fn try_submit(&self, job: T, est_job_ms: u64) -> Result<usize, WcmsError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(WcmsError::Cancelled { cell: "admission queue closed".into() });
        }
        if inner.queue.len() >= self.cap {
            let queue_depth = inner.queue.len();
            drop(inner);
            return Err(WcmsError::Overloaded {
                queue_depth,
                retry_after_ms: retry_after_ms(queue_depth, est_job_ms),
            });
        }
        let ahead = inner.queue.len();
        inner.queue.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(ahead)
    }

    /// Block until a job is available or the queue closes. `None` means
    /// the queue closed *and* drained — the consumer should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.queue.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Jobs currently queued.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Close the queue: future submissions fail, consumers drain the
    /// backlog then see `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_load_with_a_typed_rejection_when_full() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_submit(1, 100).unwrap(), 0);
        assert_eq!(q.try_submit(2, 100).unwrap(), 1);
        let err = q.try_submit(3, 100).unwrap_err();
        match err {
            WcmsError::Overloaded { queue_depth, retry_after_ms } => {
                assert_eq!(queue_depth, 2);
                assert!((MIN_RETRY_AFTER_MS..=MAX_RETRY_AFTER_MS).contains(&retry_after_ms));
            }
            other => unreachable!("expected Overloaded, got {other}"),
        }
        // Draining one slot readmits.
        assert_eq!(q.pop(), Some(1));
        q.try_submit(3, 100).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_the_backlog_then_releases_consumers() {
        let q = AdmissionQueue::new(4);
        q.try_submit("a", 10).unwrap();
        q.try_submit("b", 10).unwrap();
        q.close();
        assert!(matches!(q.try_submit("c", 10), Err(WcmsError::Cancelled { .. })));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_submit_and_on_close() {
        let q = AdmissionQueue::new(4);
        std::thread::scope(|s| {
            let popper = s.spawn(|| q.pop());
            q.try_submit(42, 10).unwrap();
            assert_eq!(popper.join().unwrap_or(None), Some(42));
            let popper = s.spawn(|| q.pop());
            q.close();
            assert_eq!(popper.join().unwrap_or(Some(0)), None);
        });
    }

    #[test]
    fn retry_after_scales_with_backlog_but_stays_clamped() {
        assert_eq!(retry_after_ms(0, 1_000), MIN_RETRY_AFTER_MS);
        assert_eq!(retry_after_ms(4, 200), 400);
        assert_eq!(retry_after_ms(10_000, u64::MAX), MAX_RETRY_AFTER_MS);
    }
}
