//! The crash-only job journal.
//!
//! Every admitted compute job is journaled to disk *before* it enters
//! the queue and re-journaled when a worker picks it up, using the same
//! atomic temp-fsync-rename + checksum-footer discipline as the
//! checkpoint store. The daemon has no clean-shutdown path — SIGKILL is
//! the normal stop — so restart recovery works purely from what the
//! journal shows:
//!
//! * **queued** records: the daemon died holding an admitted job it
//!   never started; the job is *recovered* (re-executed into the result
//!   cache) before the listener opens, so an accepted job is never
//!   silently lost.
//! * **running** records: the daemon died mid-execution; any partial
//!   state is suspect, so the record is *tombstoned* into `tombstones/`
//!   — evidence preserved, visible in `status`, never re-run blindly
//!   (the client that was waiting saw its connection die and will
//!   retry; the retry goes through the cache and the normal path).
//! * corrupt records are quarantined into `quarantine/`, like every
//!   other integrity failure in the repo.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use wcms_bench::checkpoint::{decode_file, encode_file};
use wcms_error::WcmsError;
use wcms_obs::json::{self, escape_into, Value};

/// Lifecycle state a journal record can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting in the queue.
    Queued,
    /// Claimed by a compute worker.
    Running,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
        }
    }
}

/// A queued job found (and re-runnable) after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJob {
    /// Journal id.
    pub id: u64,
    /// The original request document, byte-exact as admitted.
    pub request: String,
}

/// What startup recovery found on disk.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Queued jobs to re-execute before serving.
    pub recovered: Vec<RecoveredJob>,
    /// Mid-run records moved to `tombstones/`.
    pub tombstoned: u64,
    /// Corrupt records moved to `quarantine/`.
    pub quarantined: u64,
}

/// A directory of one-file-per-job lifecycle records.
#[derive(Debug)]
pub struct JobJournal {
    dir: PathBuf,
    next_id: std::sync::atomic::AtomicU64,
}

fn job_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id:016x}.json"))
}

fn parse_id(path: &Path) -> Option<u64> {
    let stem = path.file_name()?.to_str()?.strip_suffix(".json")?.strip_prefix("job-")?;
    u64::from_str_radix(stem, 16).ok()
}

impl JobJournal {
    /// Open (creating if needed) a journal directory. The next job id
    /// continues past every id visible on disk — live, tombstoned or
    /// quarantined — so a restart can never reuse one.
    ///
    /// # Errors
    ///
    /// [`WcmsError::Io`] if the directories cannot be created or read.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WcmsError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut max_id = 0u64;
        for sub in [dir.clone(), dir.join("tombstones"), dir.join("quarantine")] {
            let Ok(entries) = fs::read_dir(&sub) else { continue };
            for entry in entries.flatten() {
                if let Some(id) = parse_id(&entry.path()) {
                    max_id = max_id.max(id);
                }
            }
        }
        Ok(JobJournal { dir, next_id: std::sync::atomic::AtomicU64::new(max_id + 1) })
    }

    fn write_record(&self, id: u64, state: JobState, request: &str) -> Result<(), WcmsError> {
        let mut doc = format!("{{\"id\":{id},\"state\":\"{}\",\"request\":", state.name());
        escape_into(&mut doc, request);
        doc.push('}');
        let path = job_path(&self.dir, id);
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(encode_file(&doc).as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Journal a freshly admitted job; returns its id. The record is
    /// durable before this returns — admission is not acknowledged
    /// until the job would survive a crash.
    ///
    /// # Errors
    ///
    /// [`WcmsError::Io`] on filesystem failures.
    pub fn record_queued(&self, request: &str) -> Result<u64, WcmsError> {
        let id = self.next_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.write_record(id, JobState::Queued, request)?;
        Ok(id)
    }

    /// Re-journal a job as claimed by a worker (atomic overwrite).
    ///
    /// # Errors
    ///
    /// [`WcmsError::Io`] on filesystem failures.
    pub fn mark_running(&self, id: u64, request: &str) -> Result<(), WcmsError> {
        self.write_record(id, JobState::Running, request)
    }

    /// Remove a finished job's record. Missing is fine (recovery may
    /// have already consumed it).
    ///
    /// # Errors
    ///
    /// [`WcmsError::Io`] on filesystem failures other than not-found.
    pub fn complete(&self, id: u64) -> Result<(), WcmsError> {
        match fs::remove_file(job_path(&self.dir, id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Startup recovery: classify every record left by the previous
    /// incarnation. Call before accepting connections.
    ///
    /// # Errors
    ///
    /// [`WcmsError::Io`] if the journal directory itself is unreadable;
    /// individual bad records never fail recovery — they are moved
    /// aside and counted.
    pub fn recover(&self) -> Result<Recovery, WcmsError> {
        let mut out = Recovery::default();
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .flatten()
            .map(|e| e.path())
            .filter(|p| parse_id(p).is_some())
            .collect();
        paths.sort(); // deterministic recovery order (ids are fixed width hex)
        for path in paths {
            match self.read_record(&path) {
                Ok((id, JobState::Queued, request)) => {
                    out.recovered.push(RecoveredJob { id, request });
                }
                Ok((_, JobState::Running, _)) => {
                    self.move_aside(&path, "tombstones");
                    out.tombstoned += 1;
                }
                Err(_) => {
                    self.move_aside(&path, "quarantine");
                    out.quarantined += 1;
                }
            }
        }
        Ok(out)
    }

    fn read_record(&self, path: &Path) -> Result<(u64, JobState, String), String> {
        let text = fs::read_to_string(path).map_err(|e| format!("unreadable record: {e}"))?;
        let doc = decode_file(&text)?;
        let v = json::parse(&doc).map_err(|e| format!("record JSON: {e}"))?;
        let id = v.get("id").and_then(Value::as_u64).ok_or("record missing `id`")?;
        let state = match v.get("state").and_then(Value::as_str) {
            Some("queued") => JobState::Queued,
            Some("running") => JobState::Running,
            other => return Err(format!("record has unknown state {other:?}")),
        };
        let request =
            v.get("request").and_then(Value::as_str).ok_or("record missing `request`")?.to_string();
        Ok((id, state, request))
    }

    fn move_aside(&self, path: &Path, sub: &str) {
        let dest_dir = self.dir.join(sub);
        let dest = dest_dir.join(path.file_name().unwrap_or_default());
        // Best effort: if even the rename fails the record stays put and
        // the next restart classifies it again — never a crash loop.
        let _ = fs::create_dir_all(&dest_dir).and_then(|()| fs::rename(path, dest));
    }

    /// The journal directory (for tooling and chaos scripts).
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wcms-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lifecycle_leaves_no_record_behind() {
        let j = JobJournal::open(scratch("lifecycle")).unwrap();
        let id = j.record_queued("{\"op\":\"measure\"}").unwrap();
        assert!(job_path(j.dir(), id).exists());
        j.mark_running(id, "{\"op\":\"measure\"}").unwrap();
        j.complete(id).unwrap();
        assert!(!job_path(j.dir(), id).exists());
        assert_eq!(j.recover().unwrap(), Recovery::default());
    }

    #[test]
    fn crash_recovery_classifies_queued_running_and_corrupt() {
        let dir = scratch("recover");
        {
            let j = JobJournal::open(&dir).unwrap();
            let q = j.record_queued("{\"op\":\"generate\",\"n\":128}").unwrap();
            let r = j.record_queued("{\"op\":\"grid\"}").unwrap();
            j.mark_running(r, "{\"op\":\"grid\"}").unwrap();
            let c = j.record_queued("{\"op\":\"measure\"}").unwrap();
            // Simulated bit rot on the third record.
            let path = job_path(j.dir(), c);
            let mut bytes = fs::read(&path).unwrap();
            let k = bytes.len() / 2;
            bytes[k] ^= 0x20;
            fs::write(&path, &bytes).unwrap();
            assert_eq!(q, 1);
        }
        // "Restart": a fresh journal over the same directory.
        let j = JobJournal::open(&dir).unwrap();
        let rec = j.recover().unwrap();
        assert_eq!(
            rec.recovered,
            vec![RecoveredJob { id: 1, request: "{\"op\":\"generate\",\"n\":128}".into() }]
        );
        assert_eq!(rec.tombstoned, 1);
        assert_eq!(rec.quarantined, 1);
        assert_eq!(fs::read_dir(j.dir().join("tombstones")).unwrap().count(), 1);
        assert_eq!(fs::read_dir(j.dir().join("quarantine")).unwrap().count(), 1);
        // Recovery consumed the queued record too: a second recovery
        // (double restart) finds a clean journal.
        let _ = j.complete(1);
        assert_eq!(j.recover().unwrap(), Recovery::default());
    }

    #[test]
    fn restart_never_reuses_an_id_even_after_tombstoning() {
        let dir = scratch("ids");
        {
            let j = JobJournal::open(&dir).unwrap();
            let id = j.record_queued("{}").unwrap();
            j.mark_running(id, "{}").unwrap();
        }
        let j = JobJournal::open(&dir).unwrap();
        let rec = j.recover().unwrap();
        assert_eq!(rec.tombstoned, 1);
        // The tombstoned record still pins the id space.
        let fresh = j.record_queued("{}").unwrap();
        assert!(fresh >= 2, "id {fresh} collides with the tombstoned record");
        let j2 = JobJournal::open(&dir).unwrap();
        let after_restart = j2.record_queued("{}").unwrap();
        assert!(after_restart > fresh);
    }
}
