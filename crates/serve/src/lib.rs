//! # `wcms-serve` — the crash-only adversarial-input service
//!
//! A long-running daemon over a length-prefixed framed protocol on
//! plain blocking TCP (no async runtime — the workspace is offline and
//! vendored), serving the paper's worst-case constructions and
//! measurements to repeat traffic:
//!
//! * [`wire`] — the framed JSON protocol: `generate`, `measure`,
//!   `grid`, `status`, `health`; oversized frames rejected before
//!   allocation.
//! * [`deadline`] — socket read/write deadlines (every wcms socket has
//!   them; the `socket-without-deadline` lint enforces it) and client
//!   budget clamping.
//! * [`admission`] — the bounded job queue that sheds load with typed
//!   [`wcms_error::WcmsError::Overloaded`] rejections instead of
//!   buffering unbounded backlog.
//! * [`journal`] — crash-only durable job state: queued jobs recovered
//!   after SIGKILL, mid-run jobs tombstoned, corrupt records
//!   quarantined.
//! * [`cache`] — the content-addressed result cache; hits replay the
//!   cold computation's bytes exactly.
//! * [`server`] — the accept loop, worker pools, and the request
//!   lifecycle tying the layers together (deadline propagation via
//!   [`wcms_error::CancelToken`], the sim→analytic→reference demotion
//!   ladder as graceful degradation).
//! * [`load`] — the open-loop load generator behind `wcms-load` and
//!   its `BENCH_serve.json` report.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod deadline;
pub mod journal;
pub mod load;
pub mod server;
pub mod wire;
