//! The open-loop load generator behind `wcms-load`.
//!
//! Open-loop means arrivals are scheduled on a fixed timetable
//! (`i / rate`) regardless of how fast the server answers — the honest
//! way to find a saturation point, because a closed loop slows its own
//! offered load down exactly when the server struggles (coordinated
//! omission). A worker that falls behind its timetable sends
//! immediately and the lateness shows up in the latency tail, not in a
//! silently reduced request rate.
//!
//! The generator reports sustained jobs/sec, latency percentiles and a
//! [`wcms_obs::MetricsRegistry`] histogram, plus a cold-vs-warm cache
//! probe (the `BENCH_serve.json` regression gate asserts warm hits are
//! at least one order of magnitude faster than cold computes).

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use wcms_error::WcmsError;
use wcms_obs::{Clock, MetricsRegistry, LATENCY_BUCKETS_S};
use wcms_workloads::WorkloadSpec;

use crate::deadline::apply_deadlines;
use crate::wire::{
    read_frame, write_frame, Request, Response, Tuning, MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME,
};

/// A blocking protocol client over one deadline-armed connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and arm both socket deadlines.
    ///
    /// # Errors
    ///
    /// [`WcmsError::Io`] on connect or socket-option failure.
    pub fn connect(addr: SocketAddr, deadline: Duration) -> Result<Self, WcmsError> {
        let stream = TcpStream::connect(addr)?;
        apply_deadlines(&stream, deadline, deadline)?;
        Ok(Client { stream })
    }

    /// Send one request, wait for its response.
    ///
    /// # Errors
    ///
    /// [`WcmsError::Io`] on socket failure (including deadline expiry),
    /// [`WcmsError::WireMalformed`] on a protocol violation or a closed
    /// stream mid-frame.
    pub fn call(&mut self, request: &Request) -> Result<Response, WcmsError> {
        let payload = self.call_text(&request.encode())?;
        Response::decode(&payload)
    }

    /// Send a raw request document, returning the raw response payload
    /// (byte-exact — what the chaos harness compares across restarts).
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn call_text(&mut self, request: &str) -> Result<String, WcmsError> {
        write_frame(&mut self.stream, request.as_bytes(), MAX_REQUEST_FRAME)?;
        let payload = read_frame(&mut self.stream, MAX_RESPONSE_FRAME)?.ok_or_else(|| {
            WcmsError::WireMalformed { reason: "server closed the stream before replying".into() }
        })?;
        String::from_utf8(payload)
            .map_err(|_| WcmsError::WireMalformed { reason: "response is not UTF-8".into() })
    }
}

/// What to offer the server.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Offered arrival rate, jobs per second.
    pub rate_rps: f64,
    /// How long to keep offering.
    pub duration: Duration,
    /// Concurrent connections (each a worker thread).
    pub connections: usize,
    /// Distinct request keys cycled through; after the first lap the
    /// working set is fully cache-resident.
    pub distinct: u64,
    /// Sort tuning every request targets.
    pub tuning: Tuning,
    /// Input length (`bE·2^m` for the adversarial families).
    pub n: usize,
    /// Per-call socket deadline.
    pub call_deadline: Duration,
    /// Seed domain separating this run's unique (cold) keys from
    /// earlier runs against the same daemon.
    pub run_seed: u64,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            rate_rps: 50.0,
            duration: Duration::from_secs(5),
            connections: 4,
            distinct: 8,
            tuning: Tuning { w: 16, e: 3, b: 32 },
            n: 16 * 3 * 32 * 2,
            call_deadline: Duration::from_secs(10),
            run_seed: u64::from(std::process::id()),
        }
    }
}

/// Latency summary over every completed call, in milliseconds.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl LatencySummary {
    fn from_samples(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        LatencySummary {
            mean_ms: mean * 1e3,
            p50_ms: percentile(samples, 0.50) * 1e3,
            p90_ms: percentile(samples, 0.90) * 1e3,
            p99_ms: percentile(samples, 0.99) * 1e3,
            max_ms: samples.last().copied().unwrap_or(0.0) * 1e3,
        }
    }
}

/// Everything a load run measured (the `BENCH_serve.json` document).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Arrival rate the timetable offered.
    pub offered_rps: f64,
    /// Completed-call rate actually sustained.
    pub achieved_rps: f64,
    /// Calls sent.
    pub sent: u64,
    /// Calls answered with a result.
    pub ok: u64,
    /// Calls shed with a typed `overloaded`.
    pub overloaded: u64,
    /// Calls that failed any other way (socket, deadline, error).
    pub errors: u64,
    /// Latency over completed calls.
    pub latency: LatencySummary,
    /// Cold-compute latency of one uncached request, milliseconds.
    pub cold_ms: f64,
    /// Cache-hit latency of the same request re-asked, milliseconds.
    pub warm_ms: f64,
    /// `cold_ms / warm_ms` — the acceptance gate wants ≥ 10.
    pub cache_speedup: f64,
}

impl LoadReport {
    /// Render as the `BENCH_serve.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":1,\"offered_rps\":{},\"achieved_rps\":{},\"sent\":{},\"ok\":{},\
             \"overloaded\":{},\"errors\":{},\"latency_ms\":{{\"mean\":{},\"p50\":{},\
             \"p90\":{},\"p99\":{},\"max\":{}}},\"cache\":{{\"cold_ms\":{},\"warm_ms\":{},\
             \"speedup\":{}}}}}",
            self.offered_rps,
            self.achieved_rps,
            self.sent,
            self.ok,
            self.overloaded,
            self.errors,
            self.latency.mean_ms,
            self.latency.p50_ms,
            self.latency.p90_ms,
            self.latency.p99_ms,
            self.latency.max_ms,
            self.cold_ms,
            self.warm_ms,
            self.cache_speedup,
        )
    }
}

fn load_request(opts: &LoadOptions, i: u64) -> Request {
    Request::Generate {
        tuning: opts.tuning,
        n: opts.n,
        // Seeds cycle over a bounded working set, domain-separated per
        // run so lap one is cold and every later lap is cache-resident.
        family: WorkloadSpec::WorstCaseFamily {
            seed: (opts.run_seed << 16) | (i % opts.distinct.max(1)),
        },
        include_data: false,
        // Untraced on purpose: load documents stay byte-identical to
        // pre-trace clients, so the bench exercises the absent-context
        // fast path the overhead gate measures.
        trace: None,
    }
}

/// Ask the daemon for its Prometheus rendering (`metrics` frame).
///
/// # Errors
///
/// Client I/O errors; [`WcmsError::WireMalformed`] if the daemon
/// answers with anything but a metrics document.
pub fn scrape_metrics(addr: SocketAddr, deadline: Duration) -> Result<String, WcmsError> {
    let mut client = Client::connect(addr, deadline)?;
    match client.call(&Request::Metrics)? {
        Response::Metrics { text } => Ok(text),
        other => Err(WcmsError::WireMalformed {
            reason: format!("metrics scrape was not answered with metrics: {other:?}"),
        }),
    }
}

/// Probe the cache: ask one never-before-seen request (cold compute),
/// then re-ask it (warm hit). Returns `(cold_ms, warm_ms)`.
///
/// # Errors
///
/// Propagates client I/O errors; an `overloaded` or error response is
/// [`WcmsError::WireMalformed`] here because the probe needs a real
/// answer on both sides of the comparison.
pub fn probe_cache_speedup(
    addr: SocketAddr,
    opts: &LoadOptions,
    clock: &Clock,
) -> Result<(f64, f64), WcmsError> {
    let mut client = Client::connect(addr, opts.call_deadline)?;
    let probe = Request::Generate {
        tuning: opts.tuning,
        n: opts.n,
        family: WorkloadSpec::WorstCaseFamily { seed: (opts.run_seed << 16) | 0xFFFF },
        include_data: false,
        trace: None,
    };
    let timed = |client: &mut Client| -> Result<(f64, String), WcmsError> {
        let t0 = clock.now_us();
        let payload = client.call_text(&probe.encode())?;
        Ok((clock.elapsed_s(t0), payload))
    };
    let (cold_s, cold_payload) = timed(&mut client)?;
    let (warm_s, warm_payload) = timed(&mut client)?;
    if cold_payload != warm_payload {
        return Err(WcmsError::WireMalformed {
            reason: "cache hit returned different bytes than the cold compute".into(),
        });
    }
    if !cold_payload.contains("\"ok\":true") {
        return Err(WcmsError::WireMalformed {
            reason: format!("cache probe was not answered: {cold_payload}"),
        });
    }
    Ok((cold_s * 1e3, warm_s * 1e3))
}

/// Drive the daemon open-loop and report.
///
/// # Errors
///
/// [`WcmsError::Io`] when no connection can be established at all;
/// individual call failures during the run are counted, not fatal.
pub fn run_load(
    addr: SocketAddr,
    opts: &LoadOptions,
    metrics: &MetricsRegistry,
) -> Result<LoadReport, WcmsError> {
    // Fail fast (and loudly) if the daemon is unreachable.
    drop(Client::connect(addr, opts.call_deadline)?);

    let clock = Clock::wall();
    let total = (opts.rate_rps * opts.duration.as_secs_f64()).ceil().max(1.0) as u64;
    let interval_us = (1e6 / opts.rate_rps.max(0.001)) as u64;
    let next = AtomicUsize::new(0);
    let sent = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let samples: Vec<std::sync::Mutex<Vec<f64>>> =
        (0..opts.connections.max(1)).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    let histogram = metrics.histogram("load_latency_seconds", &LATENCY_BUCKETS_S);

    let t_start = clock.now_us();
    std::thread::scope(|s| {
        for lane in &samples {
            s.spawn(|| {
                let mut client = Client::connect(addr, opts.call_deadline).ok();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed) as u64;
                    if i >= total {
                        break;
                    }
                    // Open loop: wait for the timetable slot; if we are
                    // late, send immediately — the lateness lands in
                    // the measured latency, never in the offered rate.
                    let due_us = t_start + i * interval_us;
                    let now = clock.now_us();
                    if due_us > now {
                        clock.sleep(Duration::from_micros(due_us - now));
                    }
                    if client.is_none() {
                        client = Client::connect(addr, opts.call_deadline).ok();
                    }
                    let Some(c) = client.as_mut() else {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    sent.fetch_add(1, Ordering::Relaxed);
                    let t0 = clock.now_us();
                    match c.call(&load_request(opts, i)) {
                        Ok(Response::Overloaded { .. }) => {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Response::Error { .. }) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            let dt = clock.elapsed_s(t0);
                            histogram.observe(dt);
                            if let Ok(mut lane) = lane.lock() {
                                lane.push(dt);
                            }
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            client = None; // reconnect on the next slot
                        }
                    }
                }
            });
        }
    });
    let wall_s = clock.elapsed_s(t_start).max(1e-9);

    let mut all: Vec<f64> = Vec::new();
    for lane in &samples {
        if let Ok(lane) = lane.lock() {
            all.extend_from_slice(&lane);
        }
    }
    let ok = ok.load(Ordering::Relaxed);
    let (cold_ms, warm_ms) = probe_cache_speedup(addr, opts, &clock)?;
    Ok(LoadReport {
        offered_rps: opts.rate_rps,
        achieved_rps: ok as f64 / wall_s,
        sent: sent.load(Ordering::Relaxed),
        ok,
        overloaded: overloaded.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        latency: LatencySummary::from_samples(&mut all),
        cold_ms,
        warm_ms,
        cache_speedup: if warm_ms > 0.0 { cold_ms / warm_ms } else { f64::INFINITY },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let mut samples: Vec<f64> = (1..=100).map(|i| f64::from(i) / 1000.0).collect();
        let s = LatencySummary::from_samples(&mut samples);
        assert!((s.p50_ms - 50.0).abs() < 2.0, "{s:?}");
        assert!((s.p99_ms - 99.0).abs() < 2.0, "{s:?}");
        assert!((s.max_ms - 100.0).abs() < 1e-9, "{s:?}");
        assert!(s.mean_ms > 49.0 && s.mean_ms < 52.0, "{s:?}");
    }

    #[test]
    fn report_json_is_parseable_and_complete() {
        let report = LoadReport {
            offered_rps: 50.0,
            achieved_rps: 48.5,
            sent: 250,
            ok: 242,
            overloaded: 5,
            errors: 3,
            latency: LatencySummary {
                mean_ms: 2.0,
                p50_ms: 1.5,
                p90_ms: 3.0,
                p99_ms: 9.0,
                max_ms: 20.0,
            },
            cold_ms: 12.0,
            warm_ms: 0.4,
            cache_speedup: 30.0,
        };
        let v = wcms_obs::json::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("ok").and_then(wcms_obs::json::Value::as_u64), Some(242));
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("speedup").and_then(wcms_obs::json::Value::as_f64), Some(30.0));
        assert!(v.get("latency_ms").and_then(|l| l.get("p99")).is_some());
    }

    #[test]
    fn load_requests_cycle_a_bounded_working_set() {
        let opts = LoadOptions { distinct: 4, ..LoadOptions::default() };
        let keys: std::collections::BTreeSet<String> =
            (0..32).map(|i| load_request(&opts, i).canonical_key().unwrap()).collect();
        assert_eq!(keys.len(), 4);
    }
}
