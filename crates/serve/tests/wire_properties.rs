//! Adversarial property tests for the serve wire codec and the cache
//! key contract: framing round-trips under arbitrary payloads, hostile
//! declared lengths are refused before any buffer is sized from them,
//! truncation at every byte boundary yields a typed error (never a
//! panic or a hang), and canonical cache keys / FNV fingerprints are
//! pinned by golden values so a silent codec change cannot alias old
//! cache entries.

use std::io::Read;

use proptest::prelude::*;
use wcms_mergesort::{AlgorithmKind, BackendKind};
use wcms_obs::TraceContext;
use wcms_serve::cache::fingerprint;
use wcms_serve::wire::{
    read_frame, write_frame, Request, Tuning, MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME,
};
use wcms_workloads::WorkloadSpec;

// --- Strategies -----------------------------------------------------------

fn any_family() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(|seed| WorkloadSpec::Random { seed }),
        (0u64..u64::MAX).prop_map(|seed| WorkloadSpec::RandomPermutation { seed }),
        Just(WorkloadSpec::Sorted),
        Just(WorkloadSpec::Reverse),
        (0usize..1 << 20, (0u64..u64::MAX))
            .prop_map(|(swaps, seed)| WorkloadSpec::KSwaps { swaps, seed }),
        (1u32..1 << 16, (0u64..u64::MAX))
            .prop_map(|(distinct, seed)| WorkloadSpec::FewDistinct { distinct, seed }),
        (1usize..1 << 16).prop_map(|teeth| WorkloadSpec::Sawtooth { teeth }),
        Just(WorkloadSpec::WorstCase),
        (0u64..u64::MAX).prop_map(|seed| WorkloadSpec::WorstCaseFamily { seed }),
        (1usize..1 << 16).prop_map(|stride| WorkloadSpec::ConflictHeavy { stride }),
    ]
}

fn any_tuning() -> impl Strategy<Value = Tuning> {
    (1usize..1024, 1usize..64, 1usize..2048).prop_map(|(w, e, b)| Tuning { w, e, b })
}

fn any_backend() -> impl Strategy<Value = BackendKind> {
    proptest::sample::select(BackendKind::ALL.to_vec())
}

fn any_algorithm() -> impl Strategy<Value = AlgorithmKind> {
    proptest::sample::select(AlgorithmKind::ALL.to_vec())
}

fn any_device() -> impl Strategy<Value = String> {
    proptest::sample::select(vec![
        "test".to_string(),
        "quadro_m4000".to_string(),
        "rtx_2080_ti".to_string(),
        "gtx_770".to_string(),
    ])
}

/// An optional propagated trace context, as a client might attach: any
/// nonzero trace/span pair (the wire form never carries a parent).
fn any_trace() -> impl Strategy<Value = Option<TraceContext>> {
    proptest::option::of((1u64..u64::MAX, 1u64..u64::MAX).prop_map(|(trace, span)| TraceContext {
        trace: wcms_obs::TraceId(trace),
        span: wcms_obs::SpanId(span),
        parent: None,
    }))
}

fn any_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any_tuning(), 0usize..1 << 30, any_family(), proptest::bool::ANY, any_trace()).prop_map(
            |(tuning, n, family, include_data, trace)| Request::Generate {
                tuning,
                n,
                family,
                include_data,
                trace
            }
        ),
        (
            (any_tuning(), 0usize..1 << 30, any_family(), 1u64..64),
            (
                any_backend(),
                any_algorithm(),
                any_device(),
                proptest::option::of(0u64..1 << 40),
                any_trace()
            ),
        )
            .prop_map(
                |((tuning, n, family, runs), (backend, algorithm, device, budget_ms, trace))| {
                    Request::Measure {
                        tuning,
                        n,
                        family,
                        runs,
                        backend,
                        algorithm,
                        device,
                        budget_ms,
                        trace,
                    }
                }
            ),
        (
            (any_tuning(), any_family(), 0u32..12, 12u32..24),
            (
                1u64..64,
                any_backend(),
                any_algorithm(),
                any_device(),
                proptest::option::of(0u64..1 << 40),
                any_trace(),
            ),
        )
            .prop_map(
                |(
                    (tuning, family, min_doublings, max_doublings),
                    (runs, backend, algorithm, device, budget_ms, trace),
                )| {
                    Request::Grid {
                        tuning,
                        family,
                        min_doublings,
                        max_doublings,
                        runs,
                        backend,
                        algorithm,
                        device,
                        budget_ms,
                        trace,
                    }
                }
            ),
        Just(Request::Status),
        Just(Request::Health),
        Just(Request::Metrics),
    ]
}

// --- Codec round-trips ----------------------------------------------------

proptest! {
    #[test]
    fn requests_round_trip_the_wire_codec(req in any_request()) {
        let decoded = Request::decode(&req.encode()).expect("self-encoded request parses");
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn framing_round_trips_arbitrary_payloads(payload in proptest::collection::vec(0u8..=255, 0..4096)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload, MAX_REQUEST_FRAME).unwrap();
        let mut r = buf.as_slice();
        let got = read_frame(&mut r, MAX_REQUEST_FRAME).unwrap().expect("one frame in");
        prop_assert_eq!(got, payload);
        // And the stream is cleanly drained: next read is a clean EOF.
        prop_assert_eq!(read_frame(&mut r, MAX_REQUEST_FRAME).unwrap(), None);
    }

    #[test]
    fn budgets_never_reach_the_cache_key(budget_a in proptest::option::of(0u64..u64::MAX),
                                         budget_b in proptest::option::of(0u64..u64::MAX)) {
        // Deadlines shape *when* an answer arrives, not *what* it is —
        // two calls differing only in budget must share an entry.
        let req = |budget_ms| Request::Measure {
            tuning: Tuning { w: 16, e: 3, b: 32 },
            n: 3072,
            family: WorkloadSpec::WorstCase,
            runs: 1,
            backend: BackendKind::Reference,
            algorithm: AlgorithmKind::Pairwise,
            device: "test".into(),
            budget_ms,
            trace: None,
        };
        prop_assert_eq!(req(budget_a).canonical_key(), req(budget_b).canonical_key());
    }

    #[test]
    fn trace_contexts_never_reach_the_cache_key(trace in any_trace()) {
        // A trace names who asked, not what the answer is — attaching
        // one must alias the same cache entry as an untraced request.
        let req = |trace| Request::Generate {
            tuning: Tuning { w: 16, e: 3, b: 32 },
            n: 3072,
            family: WorkloadSpec::WorstCase,
            include_data: false,
            trace,
        };
        prop_assert_eq!(req(trace).canonical_key(), req(None).canonical_key());
    }

    #[test]
    fn distinct_compute_requests_never_share_a_fingerprint(a in any_request(), b in any_request()) {
        // Fingerprint equality must imply canonical-key equality for
        // generated requests (FNV collisions exist in principle; the
        // cache handles them by storing the key — this asserts the
        // *codec* never manufactures one from distinct requests).
        if let (Some(ka), Some(kb)) = (a.canonical_key(), b.canonical_key()) {
            if ka != kb {
                prop_assert_ne!(fingerprint(&ka), fingerprint(&kb));
            }
        }
    }
}

// --- Hostile framing ------------------------------------------------------

/// A reader that records whether anything beyond the 4-byte length
/// prefix was ever requested — the oversized-frame rejection must
/// happen on the prefix alone, before any payload buffer exists.
struct PrefixOnly {
    prefix: [u8; 4],
    pos: usize,
    body_requested: bool,
}

impl Read for PrefixOnly {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= 4 {
            self.body_requested = true;
            return Ok(0);
        }
        let k = out.len().min(4 - self.pos);
        out[..k].copy_from_slice(&self.prefix[self.pos..self.pos + k]);
        self.pos += k;
        Ok(k)
    }
}

proptest! {
    #[test]
    fn oversized_declared_lengths_are_rejected_before_any_payload_read(
        excess in 1u64..u64::from(u32::MAX) - MAX_REQUEST_FRAME as u64
    ) {
        let declared = u32::try_from(MAX_REQUEST_FRAME as u64 + excess).unwrap();
        let mut r = PrefixOnly { prefix: declared.to_be_bytes(), pos: 0, body_requested: false };
        let err = read_frame(&mut r, MAX_REQUEST_FRAME).unwrap_err();
        let msg = err.to_string();
        prop_assert!(msg.contains("exceeds"), "typed oversize rejection, got: {msg}");
        prop_assert!(!r.body_requested, "payload must not be read after an oversized prefix");
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_the_frame_reader(
        bytes in proptest::collection::vec(0u8..=255, 0..64)
    ) {
        let mut r = bytes.as_slice();
        // Any outcome but a panic/hang is acceptable; just drive it.
        let _ = read_frame(&mut r, MAX_RESPONSE_FRAME);
    }

    #[test]
    fn arbitrary_text_never_panics_the_request_decoder(
        bytes in proptest::collection::vec(0u8..=255, 0..256)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Request::decode(&text);
    }
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    let req = Request::Status;
    let mut framed = Vec::new();
    write_frame(&mut framed, req.encode().as_bytes(), MAX_REQUEST_FRAME).unwrap();
    assert!(framed.len() > 5);
    for cut in 0..framed.len() {
        let mut r = &framed[..cut];
        let got = read_frame(&mut r, MAX_REQUEST_FRAME);
        if cut == 0 {
            // EOF before any prefix byte is a clean end-of-stream.
            assert!(matches!(got, Ok(None)), "cut=0 got {got:?}");
        } else {
            let err = got.expect_err(&format!("cut={cut} must be malformed"));
            let msg = err.to_string();
            let expected = if cut < 4 { "inside the length prefix" } else { "inside the payload" };
            assert!(msg.contains(expected), "cut={cut}: {msg}");
        }
    }
}

// --- Golden cache-key stability ------------------------------------------
//
// These literals pin the on-disk cache contract. If any of them change,
// existing cache directories silently stop hitting (or worse, a key
// change without a CACHE_SCHEMA bump aliases stale bytes). Bump
// `wcms_serve::cache::CACHE_SCHEMA` instead of editing the values here.

#[test]
fn canonical_keys_and_fingerprints_match_the_golden_contract() {
    let generate = Request::Generate {
        tuning: Tuning { w: 16, e: 3, b: 32 },
        n: 3072,
        family: WorkloadSpec::WorstCase,
        include_data: false,
        trace: None,
    };
    let key = generate.canonical_key().unwrap();
    assert_eq!(key, "wcms/v1/s1 generate w=16 e=3 b=32 n=3072 family=worst-case data=0");
    assert_eq!(fingerprint(&key), 0x19f6_d0da_a174_95a6);

    let measure = Request::Measure {
        tuning: Tuning { w: 16, e: 3, b: 32 },
        n: 3072,
        family: WorkloadSpec::WorstCaseFamily { seed: 7 },
        runs: 3,
        backend: BackendKind::Reference,
        algorithm: AlgorithmKind::Pairwise,
        device: "test".into(),
        budget_ms: Some(1_000),
        trace: None,
    };
    let key = measure.canonical_key().unwrap();
    assert_eq!(
        key,
        "wcms/v1/s1 measure w=16 e=3 b=32 n=3072 family=worst-family:seed=7 \
         runs=3 backend=reference device=test"
    );
    assert_eq!(fingerprint(&key), 0xa742_63b2_4d40_7366);

    // The default (pairwise) algorithm adds nothing to the key — every
    // cache entry written before the field existed keeps hitting.
    // Multiway gets an explicit suffix instead of a schema bump.
    let mut multiway = measure.clone();
    if let Request::Measure { algorithm, .. } = &mut multiway {
        *algorithm = AlgorithmKind::Multiway;
    }
    assert_eq!(
        multiway.canonical_key().unwrap(),
        "wcms/v1/s1 measure w=16 e=3 b=32 n=3072 family=worst-family:seed=7 \
         runs=3 backend=reference device=test algorithm=multiway"
    );

    let grid = Request::Grid {
        tuning: Tuning { w: 16, e: 3, b: 32 },
        family: WorkloadSpec::Sorted,
        min_doublings: 1,
        max_doublings: 5,
        runs: 2,
        backend: BackendKind::Sim,
        algorithm: AlgorithmKind::Pairwise,
        device: "rtx_2080_ti".into(),
        budget_ms: None,
        trace: None,
    };
    let key = grid.canonical_key().unwrap();
    assert_eq!(
        key,
        "wcms/v1/s1 grid w=16 e=3 b=32 family=sorted doublings=1..5 \
         runs=2 backend=sim device=rtx_2080_ti"
    );
    assert_eq!(fingerprint(&key), 0xbec3_3a45_2328_8bab);

    // Non-compute operations must never acquire a cache identity.
    assert_eq!(Request::Status.canonical_key(), None);
    assert_eq!(Request::Health.canonical_key(), None);
    assert_eq!(Request::Metrics.canonical_key(), None);
}
