//! Per-warp thread assignments — the object the paper's constructions
//! produce.
//!
//! A [`WarpAssignment`] says, for each of the `w` threads of a warp
//! merging its `wE`-element window of two sorted lists `A` and `B`, how
//! many of its `E` merged elements come from `A` (`a`), how many from `B`
//! (`b = E − a`), and which list it scans first. Together with the rule
//! that a thread scans one whole list chunk and then the other (§III:
//! "every thread performs a scan of one list then the other list"), this
//! determines the warp's entire shared-memory access pattern — and, run
//! through [`crate::builder`], the actual input permutation.

use serde::{Deserialize, Serialize};
use wcms_error::WcmsError;

/// Which list a thread scans first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScanFirst {
    /// Scan the `A` chunk, then the `B` chunk.
    A,
    /// Scan the `B` chunk, then the `A` chunk.
    B,
}

impl ScanFirst {
    /// The opposite order.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            ScanFirst::A => ScanFirst::B,
            ScanFirst::B => ScanFirst::A,
        }
    }
}

/// One thread's share of a merge round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ThreadAssign {
    /// Elements taken from list `A`.
    pub a: usize,
    /// Elements taken from list `B`.
    pub b: usize,
    /// Scan order.
    pub first: ScanFirst,
}

impl ThreadAssign {
    /// Total elements merged by the thread (must equal `E`).
    #[must_use]
    pub fn total(&self) -> usize {
        self.a + self.b
    }

    /// The thread with `A` and `B` roles exchanged.
    #[must_use]
    pub fn swapped(&self) -> Self {
        Self { a: self.b, b: self.a, first: self.first.flipped() }
    }
}

/// A full warp's assignment for one merge round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpAssignment {
    /// Warp width `w` (= number of banks).
    pub w: usize,
    /// Elements per thread `E`.
    pub e: usize,
    /// Start bank `s` of the `E` consecutive banks the construction
    /// aligns to (0 in the small-`E` case, `r = w − E` in the large-`E`
    /// case).
    pub window_start: usize,
    /// Per-thread shares, `threads.len() == w`.
    pub threads: Vec<ThreadAssign>,
}

impl WarpAssignment {
    /// Total elements taken from `A` across the warp.
    #[must_use]
    pub fn share_a(&self) -> usize {
        self.threads.iter().map(|t| t.a).sum()
    }

    /// Total elements taken from `B` across the warp.
    #[must_use]
    pub fn share_b(&self) -> usize {
        self.threads.iter().map(|t| t.b).sum()
    }

    /// The symmetric assignment used for warps in the paper's set `R`
    /// (`A` and `B` exchanged).
    #[must_use]
    pub fn swapped(&self) -> Self {
        Self {
            w: self.w,
            e: self.e,
            window_start: self.window_start,
            threads: self.threads.iter().map(ThreadAssign::swapped).collect(),
        }
    }

    /// Structural validation: `w` threads, each merging exactly `E`
    /// elements, shares adding to `wE`.
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::InvalidAssignment`] describing the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), WcmsError> {
        let fail = |reason: String| Err(WcmsError::InvalidAssignment { reason });
        if self.threads.len() != self.w {
            return fail(format!("expected {} threads, found {}", self.w, self.threads.len()));
        }
        if self.window_start >= self.w {
            return fail(format!("window start {} out of {} banks", self.window_start, self.w));
        }
        for (i, t) in self.threads.iter().enumerate() {
            if t.total() != self.e {
                return fail(format!(
                    "thread {i} merges {} elements, expected E={}",
                    t.total(),
                    self.e
                ));
            }
        }
        if self.share_a() + self.share_b() != self.w * self.e {
            return fail("shares do not cover the warp's wE elements".into());
        }
        Ok(())
    }

    /// Validation for the paper's warp shares: one list contributes
    /// `(E+1)/2·w` elements and the other `(E−1)/2·w` (§III "General
    /// Strategy"). Requires odd `E`.
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::InvalidAssignment`] describing the violated
    /// invariant.
    pub fn validate_paper_shares(&self) -> Result<(), WcmsError> {
        self.validate()?;
        let fail = |reason: String| Err(WcmsError::InvalidAssignment { reason });
        if self.e.is_multiple_of(2) {
            return fail("paper shares require odd E".into());
        }
        let hi = self.e.div_ceil(2) * self.w;
        let lo = (self.e - 1) / 2 * self.w;
        let (sa, sb) = (self.share_a(), self.share_b());
        if (sa, sb) != (hi, lo) && (sa, sb) != (lo, hi) {
            return fail(format!(
                "shares ({sa}, {sb}) are not the paper's ({hi}, {lo}) in either order"
            ));
        }
        Ok(())
    }

    /// Per-thread start offsets `(a_start, b_start)` within the warp's
    /// `A` and `B` segments (prefix sums of the shares).
    #[must_use]
    pub fn thread_offsets(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.threads.len());
        let (mut pa, mut pb) = (0usize, 0usize);
        for t in &self.threads {
            out.push((pa, pb));
            pa += t.a;
            pb += t.b;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_assignment(w: usize, e: usize) -> WarpAssignment {
        // All threads read from A (a fully-sorted round for this warp).
        WarpAssignment {
            w,
            e,
            window_start: 0,
            threads: vec![ThreadAssign { a: e, b: 0, first: ScanFirst::A }; w],
        }
    }

    #[test]
    fn shares_and_offsets() {
        let mut asg = sorted_assignment(4, 3);
        asg.threads[1] = ThreadAssign { a: 1, b: 2, first: ScanFirst::B };
        assert_eq!(asg.share_a(), 3 + 1 + 3 + 3);
        assert_eq!(asg.share_b(), 2);
        assert_eq!(asg.thread_offsets(), vec![(0, 0), (3, 0), (4, 2), (7, 2)]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(sorted_assignment(32, 15).validate().is_ok());
    }

    #[test]
    fn validate_rejects_wrong_thread_count() {
        let mut asg = sorted_assignment(32, 15);
        asg.threads.pop();
        assert!(asg.validate().unwrap_err().to_string().contains("32 threads"));
    }

    #[test]
    fn validate_rejects_wrong_thread_total() {
        let mut asg = sorted_assignment(8, 5);
        asg.threads[3].a = 4; // total 4 ≠ 5
        assert!(asg.validate().unwrap_err().to_string().contains("thread 3"));
    }

    #[test]
    fn validate_rejects_bad_window() {
        let mut asg = sorted_assignment(8, 5);
        asg.window_start = 8;
        assert!(asg.validate().is_err());
    }

    #[test]
    fn paper_shares_check() {
        let w = 16;
        let e = 5;
        // 3 threads with 5 from A … craft shares (E+1)/2·w = 48 from A.
        let mut threads = Vec::new();
        for i in 0..w {
            if i < 48 / e {
                threads.push(ThreadAssign { a: 5, b: 0, first: ScanFirst::A });
            } else if i == 48 / e {
                threads.push(ThreadAssign { a: 3, b: 2, first: ScanFirst::A });
            } else {
                threads.push(ThreadAssign { a: 0, b: 5, first: ScanFirst::B });
            }
        }
        let asg = WarpAssignment { w, e, window_start: 0, threads };
        asg.validate_paper_shares().unwrap();
        // Swapped shares also valid (the R warps).
        asg.swapped().validate_paper_shares().unwrap();
        // All-A shares are not the paper's.
        assert!(sorted_assignment(16, 5).validate_paper_shares().is_err());
    }

    #[test]
    fn swap_is_involutive() {
        let asg = sorted_assignment(8, 3);
        assert_eq!(asg.swapped().swapped(), asg);
        assert_eq!(asg.swapped().share_b(), asg.share_a());
    }
}
