//! The `d = gcd(w, E) > 1` case (§III, "Considered values of E"): with
//! data in sorted order, every `(w/d)`-th thread's chunk is aligned, so
//! sorted order *itself* aligns `d·E` elements — and when `E` is a power
//! of two (`d = E`), sorted order is already the worst-case input.

use crate::assignment::{ScanFirst, ThreadAssign, WarpAssignment};
use crate::numtheory::gcd;

/// The warp assignment a *sorted* input induces on a warp whose whole
/// window comes from one list: thread `i` scans elements
/// `[iE, (i+1)E)` of `A`.
#[must_use]
pub fn sorted_warp(w: usize, e: usize) -> WarpAssignment {
    WarpAssignment {
        w,
        e,
        window_start: 0,
        threads: vec![ThreadAssign { a: e, b: 0, first: ScanFirst::A }; w],
    }
}

/// Aligned elements of [`sorted_warp`]: `gcd(w, E) · E` (Fig. 1's
/// observation — the `d` threads whose chunk starts on bank 0 are fully
/// aligned).
#[must_use]
pub fn sorted_aligned_count(w: usize, e: usize) -> usize {
    gcd(w as u64, e as u64) as usize * e
}

/// Per-step serialization degree of [`sorted_warp`]: every step, the `w`
/// threads spread over `w/d` banks, `d` per bank.
#[must_use]
pub fn sorted_step_degree(w: usize, e: usize) -> usize {
    gcd(w as u64, e as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;

    /// Fig. 1 of the paper: w = 16, E = 12, gcd = 4 — every 4th chunk
    /// aligned, 4-way conflicts every step.
    #[test]
    fn fig1_w16_e12() {
        let asg = sorted_warp(16, 12);
        let ev = evaluate(&asg).unwrap();
        assert_eq!(ev.aligned, sorted_aligned_count(16, 12));
        assert_eq!(ev.aligned, 4 * 12);
        assert_eq!(ev.degrees, vec![4; 12]);
    }

    /// Power-of-two E: sorted order is the worst case — E-way conflicts
    /// in every step, E² aligned (matching Theorem 3's count).
    #[test]
    fn power_of_two_e_sorted_is_worst_case() {
        for (w, e) in [(32usize, 8usize), (32, 16), (16, 4), (64, 32)] {
            let ev = evaluate(&sorted_warp(w, e)).unwrap();
            assert_eq!(ev.aligned, e * e, "w={w} E={e}");
            assert_eq!(ev.degrees, vec![e; e], "w={w} E={e}");
        }
    }

    /// Co-prime E: sorted order is conflict-free (d = 1) — exactly why
    /// the paper must construct a non-trivial permutation for odd E.
    #[test]
    fn coprime_e_sorted_is_conflict_free() {
        for (w, e) in [(32usize, 15usize), (32, 17), (32, 7), (16, 9)] {
            let ev = evaluate(&sorted_warp(w, e)).unwrap();
            assert_eq!(ev.degrees, vec![1; e], "w={w} E={e}");
            assert_eq!(ev.totals.extra_cycles, 0, "w={w} E={e}");
            assert_eq!(ev.aligned, e, "only the bank-0 chunk aligns, w={w} E={e}");
        }
    }

    #[test]
    fn analytic_formulas_match_evaluation() {
        for w in [8usize, 16, 32, 64] {
            for e in 1..w {
                let ev = evaluate(&sorted_warp(w, e)).unwrap();
                assert_eq!(ev.aligned, sorted_aligned_count(w, e), "w={w} E={e}");
                assert_eq!(ev.degrees, vec![sorted_step_degree(w, e); e], "w={w} E={e}");
            }
        }
    }
}
