//! The congruence sequences of §III-B (Lemmas 7 and 8) and the tuple
//! sequences `S` and `T` that drive the large-`E` construction.
//!
//! For `r = w − E` (odd and co-prime with `E` by Lemma 4), define for
//! `i = 1, …, E−1`:
//!
//! ```text
//! xᵢ = i(E − r) mod E ≡ −ir (mod E)      yᵢ = ir mod E
//! ```
//!
//! Lemma 7: `xᵢ + yᵢ = E`, all `xᵢ` (and all `yᵢ`) are distinct, and
//! `xᵢ = y_{E−i}`. Lemma 8: consecutive sums `xᵢ + y_{i+1}` equal `r`
//! when `xᵢ < r` and `w` when `xᵢ > r`, with exactly `r − 1` sums of `r`
//! and `E − r − 1` sums of `w`.
//!
//! `S` alternates the pair order, and `T` inserts `(E, 0)` / `(0, E)`
//! full-column tuples after every group summing to `r` — producing `w`
//! tuples whose `a`-components sum to `(E+1)/2·w` and `b`-components to
//! `(E−1)/2·w`.

/// The `xᵢ` sequence: `x[i] = −(i+1)·r mod E` for `i = 0 … E−2`
/// (0-indexed storage of the paper's `i = 1 … E−1`).
#[must_use]
pub fn x_sequence(e: usize, r: usize) -> Vec<usize> {
    (1..e).map(|i| (i * (e - r % e)) % e).collect()
}

/// The `yᵢ` sequence: `y[i] = (i+1)·r mod E`.
#[must_use]
pub fn y_sequence(e: usize, r: usize) -> Vec<usize> {
    (1..e).map(|i| (i * r) % e).collect()
}

/// The sequence `S` of §III-B: pairs `(aᵢ, bᵢ)` for `i = 1 … E−1` where
/// even `i` takes `(xᵢ, yᵢ)` and odd `i` takes `(yᵢ, xᵢ)`.
#[must_use]
pub fn s_sequence(e: usize, r: usize) -> Vec<(usize, usize)> {
    let xs = x_sequence(e, r);
    let ys = y_sequence(e, r);
    (1..e)
        .map(|i| {
            let (x, y) = (xs[i - 1], ys[i - 1]);
            if i % 2 == 0 {
                (x, y)
            } else {
                (y, x)
            }
        })
        .collect()
}

/// The sequence `T`: `S` with full-column tuples inserted per the three
/// rules of §III-B. Has exactly `w = E + r` tuples.
#[must_use]
pub fn t_sequence(e: usize, r: usize) -> Vec<(usize, usize)> {
    let xs = x_sequence(e, r);
    let ys = y_sequence(e, r);
    let s = s_sequence(e, r);
    let mut t = Vec::with_capacity(e + r);
    for (idx, &pair) in s.iter().enumerate() {
        let i = idx + 1; // the paper's 1-based index
        t.push(pair);
        // Rule 1: (E, 0) after (a₁, b₁) and after (a_{E−1}, b_{E−1}).
        // (At the tail, rule 1's tuple precedes a possible rule-3 tuple —
        // matching the thread order of the paper's Fig. 3 right.)
        if i == 1 || i == e - 1 {
            t.push((e, 0));
        }
        // Rules 2–3: after pair i ≥ 2, if x_{i−1} + yᵢ = r, insert a full
        // column — in A (E, 0) after odd i, in B (0, E) after even i.
        if i >= 2 && xs[i - 2] + ys[i - 1] == r {
            if i % 2 == 1 {
                t.push((e, 0));
            } else {
                t.push((0, e));
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numtheory::gcd;

    fn large_configs() -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for w in [8usize, 16, 32, 64, 128] {
            for e in (w / 2 + 1..w).step_by(2) {
                out.push((w, e));
            }
        }
        out
    }

    /// Lemma 7.1: xᵢ + yᵢ = E for every i.
    #[test]
    fn lemma7_1_sums_to_e() {
        for (w, e) in large_configs() {
            let r = w - e;
            let xs = x_sequence(e, r);
            let ys = y_sequence(e, r);
            for i in 0..e - 1 {
                assert_eq!(xs[i] + ys[i], e, "w={w} e={e} i={}", i + 1);
            }
        }
    }

    /// Lemma 7.2: all xᵢ distinct, all yᵢ distinct (and none zero).
    #[test]
    fn lemma7_2_distinct() {
        for (w, e) in large_configs() {
            let r = w - e;
            for seq in [x_sequence(e, r), y_sequence(e, r)] {
                let mut sorted = seq.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), e - 1, "w={w} e={e}");
                assert!(!seq.contains(&0), "w={w} e={e}");
            }
        }
    }

    /// Lemma 7.3: xᵢ = y_{E−i}.
    #[test]
    fn lemma7_3_reflection() {
        for (w, e) in large_configs() {
            let r = w - e;
            let xs = x_sequence(e, r);
            let ys = y_sequence(e, r);
            for i in 1..e {
                assert_eq!(xs[i - 1], ys[e - i - 1], "w={w} e={e} i={i}");
            }
        }
    }

    /// Lemma 8.3: xᵢ + y_{i+1} is r when xᵢ < r and w when xᵢ > r; and
    /// xᵢ = r never occurs for i = 1 … E−2 (x_{E−1} = r is the endpoint).
    #[test]
    fn lemma8_consecutive_sums() {
        for (w, e) in large_configs() {
            let r = w - e;
            let xs = x_sequence(e, r);
            let ys = y_sequence(e, r);
            let mut sums_r = 0usize;
            let mut sums_w = 0usize;
            for i in 1..e - 1 {
                let x = xs[i - 1];
                let sum = x + ys[i];
                assert_ne!(x, r, "w={w} e={e} i={i}");
                if x < r {
                    assert_eq!(sum, r, "w={w} e={e} i={i}");
                    sums_r += 1;
                } else {
                    assert_eq!(sum, w, "w={w} e={e} i={i}");
                    sums_w += 1;
                }
            }
            // Exactly r−1 sums of r and E−r−1 sums of w (§III-B).
            assert_eq!(sums_r, r - 1, "w={w} e={e}");
            assert_eq!(sums_w, e - r - 1, "w={w} e={e}");
            assert_eq!(xs[e - 2], r, "x_{{E-1}} = r, w={w} e={e}");
        }
    }

    /// S has E−1 pairs, each summing to E.
    #[test]
    fn s_sequence_shape() {
        for (w, e) in large_configs() {
            let r = w - e;
            let s = s_sequence(e, r);
            assert_eq!(s.len(), e - 1);
            for &(a, b) in &s {
                assert_eq!(a + b, e, "w={w} e={e}");
            }
            // (a₁, b₁) = (y₁, x₁) = (r, E−r).
            assert_eq!(s[0], (r, e - r));
            // (a_{E−1}, b_{E−1}) = (x_{E−1}, y_{E−1}) = (r, E−r).
            assert_eq!(s[e - 2], (r, e - r));
        }
    }

    /// Theorem 9's bookkeeping: T has w = E + r tuples (r+1 insertions),
    /// with the paper's list shares.
    #[test]
    fn t_sequence_shape_and_shares() {
        for (w, e) in large_configs() {
            let r = w - e;
            let t = t_sequence(e, r);
            assert_eq!(t.len(), w, "w={w} e={e}");
            let full_a = t.iter().filter(|&&p| p == (e, 0)).count();
            let full_b = t.iter().filter(|&&p| p == (0, e)).count();
            assert_eq!(full_a + full_b, r + 1, "insertions w={w} e={e}");
            let share_a: usize = t.iter().map(|p| p.0).sum();
            let share_b: usize = t.iter().map(|p| p.1).sum();
            assert_eq!(share_a, e.div_ceil(2) * w, "A share w={w} e={e}");
            assert_eq!(share_b, (e - 1) / 2 * w, "B share w={w} e={e}");
        }
    }

    #[test]
    fn sequences_respect_coprimality_assumption() {
        for (w, e) in large_configs() {
            assert_eq!(gcd(e as u64, (w - e) as u64), 1, "w={w} e={e}");
        }
    }

    /// Worked example from the paper's Fig. 3 right: w = 16, E = 9, r = 7.
    #[test]
    fn example_w16_e9() {
        let (e, r) = (9usize, 7usize);
        assert_eq!(y_sequence(e, r), vec![7, 5, 3, 1, 8, 6, 4, 2]);
        assert_eq!(x_sequence(e, r), vec![2, 4, 6, 8, 1, 3, 5, 7]);
        let t = t_sequence(e, r);
        assert_eq!(t.len(), 16);
        let share_a: usize = t.iter().map(|p| p.0).sum();
        assert_eq!(share_a, 5 * 16);
    }
}
