//! Lemma 1: the pigeonhole worst case for any warp access.
//!
//! A warp of `w` threads reading `w` distinct addresses out of `k`
//! consecutive ones can always be forced into a
//! `min{⌈k/w⌉, w}`-way bank conflict — the trivial upper bound whose
//! *achievability inside the merge sort's access pattern* is the paper's
//! main theorem. Here we provide the bound, an explicit witness address
//! set, and (in tests) machine verification that the witness achieves it.

/// The Lemma 1 bound: the worst-case serialization degree of `w` distinct
/// addresses within `k` consecutive addresses over `w` banks.
#[must_use]
pub fn lemma1_bound(k: usize, w: usize) -> usize {
    assert!(w > 0, "need at least one bank");
    if k == 0 {
        return 0;
    }
    k.div_ceil(w).min(w)
}

/// A witness: `w` distinct addresses in `[0, k)` whose parallel access
/// serializes into [`lemma1_bound`] cycles. Requires `k ≥ w` so that `w`
/// distinct addresses exist.
///
/// The first `min{⌈k/w⌉, w}` addresses all lie in bank 0 (stride-`w`
/// multiples); the remainder spread across distinct other banks.
///
/// # Panics
///
/// Panics if `k < w` or `w == 0`.
#[must_use]
pub fn lemma1_witness(k: usize, w: usize) -> Vec<usize> {
    assert!(w > 0, "need at least one bank");
    assert!(k >= w, "need at least w consecutive addresses for w distinct ones");
    let m = lemma1_bound(k, w);
    let mut addrs = Vec::with_capacity(w);
    // m addresses in bank 0: 0, w, 2w, … — all < k because (m−1)·w < k.
    for i in 0..m {
        addrs.push(i * w);
    }
    // Remaining lanes on distinct non-zero banks of the first row.
    for bank in 1..=(w - m) {
        addrs.push(bank);
    }
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcms_dmm::{BankModel, ConflictCounter, WarpStep};

    #[test]
    fn bound_values() {
        assert_eq!(lemma1_bound(32, 32), 1);
        assert_eq!(lemma1_bound(33, 32), 2);
        assert_eq!(lemma1_bound(32 * 15, 32), 15);
        assert_eq!(lemma1_bound(32 * 32, 32), 32);
        assert_eq!(lemma1_bound(usize::MAX, 32), 32); // capped at w
        assert_eq!(lemma1_bound(0, 32), 0);
    }

    #[test]
    fn witness_achieves_bound() {
        for w in [8usize, 16, 32] {
            for k in [w, w + 1, 2 * w, 5 * w + 3, w * w, 2 * w * w] {
                let addrs = lemma1_witness(k, w);
                assert_eq!(addrs.len(), w);
                assert!(addrs.iter().all(|&a| a < k), "k={k} w={w}");
                let mut sorted = addrs.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), w, "addresses must be distinct, k={k} w={w}");

                let mut c = ConflictCounter::new(BankModel::new(w));
                let s = c.count(&WarpStep::all_read(&addrs));
                assert_eq!(s.degree, lemma1_bound(k, w), "k={k} w={w}");
            }
        }
    }

    /// The merge sort case the paper cares about: a warp's wE-element
    /// window gives k = wE, so the bound is exactly E.
    #[test]
    fn merge_sort_window_bound_is_e() {
        for e in [7usize, 9, 15, 17, 31] {
            assert_eq!(lemma1_bound(32 * e, 32), e);
        }
    }

    #[test]
    #[should_panic(expected = "at least w")]
    fn witness_needs_k_at_least_w() {
        let _ = lemma1_witness(31, 32);
    }
}
