//! The "small" `E` construction (§III-A, Theorem 3): for odd
//! `3 ≤ E < w/2`, build a warp assignment aligning all `E²` window
//! elements — `E` threads hitting one bank in every one of the `E` merge
//! steps.
//!
//! The algorithm is the constructive procedure behind Lemma 2's
//! *front-to-back / back-to-front / outside-in* strategies, expressed as
//! one greedy loop with the paper's invariants:
//!
//! * the warp's `A` share is `(E+1)/2` full columns and its `B` share
//!   `(E−1)/2` full columns (each column = `E` *window* banks `[0, E)`
//!   plus `w − E` *padding* banks);
//! * whenever a list sits at the start of a fresh column (bank 0), one
//!   thread takes the whole `E`-element window of that column — a
//!   perfectly aligned column;
//! * between alignments, *filler* threads consume exactly the padding,
//!   drawing from the list with less padding remaining first. Because
//!   `w − E > E`, a fresh column's padding alone can feed a filler, which
//!   is the inequality the paper's Lemma 2 proof leans on.
//!
//! Total padding is `E·(w−E)` and the `w − E` filler threads consume
//! exactly `E` each, so the greedy terminates with all `w` threads used
//! and every window column aligned: `E · E = E²` aligned elements.

use crate::assignment::{ScanFirst, ThreadAssign, WarpAssignment};
use crate::scan_order::optimize_scan_order;

/// Is `(w, E)` a valid "small" configuration? (`w` a power of two ≥ 8,
/// odd `E` with `3 ≤ E < w/2`.)
#[must_use]
pub fn is_small_e(w: usize, e: usize) -> bool {
    w.is_power_of_two() && w >= 8 && e % 2 == 1 && e >= 3 && e < w / 2
}

/// Build the Theorem 3 worst-case warp assignment for a warp of the `L`
/// set (`A` gets the `(E+1)/2·w` share). Use
/// [`WarpAssignment::swapped`] for the `R` set.
///
/// # Panics
///
/// Panics if `(w, E)` is not a valid small configuration
/// (see [`is_small_e`]).
#[must_use]
pub fn construct_small_e(w: usize, e: usize) -> WarpAssignment {
    assert!(is_small_e(w, e), "small-E construction needs odd 3 <= E < w/2 (got w={w}, E={e})");
    let cols_a = e.div_ceil(2);
    let cols_b = (e - 1) / 2;
    let len_a = cols_a * w;
    let len_b = cols_b * w;

    let mut threads: Vec<ThreadAssign> = Vec::with_capacity(w);
    let (mut pa, mut pb) = (0usize, 0usize);
    let (mut aligned_a, mut aligned_b) = (0usize, 0usize);

    while pa < len_a || pb < len_b {
        assert!(threads.len() < w, "construction exceeded {w} threads (w={w}, E={e})");
        let ra = pa % w;
        let rb = pb % w;
        // A list at a fresh column: align it with one full-window thread.
        if ra == 0 && aligned_a < cols_a && len_a - pa >= e {
            threads.push(ThreadAssign { a: e, b: 0, first: ScanFirst::A });
            pa += e;
            aligned_a += 1;
            continue;
        }
        if rb == 0 && aligned_b < cols_b && len_b - pb >= e {
            threads.push(ThreadAssign { a: 0, b: e, first: ScanFirst::B });
            pb += e;
            aligned_b += 1;
            continue;
        }
        // Filler thread: consume padding, smaller-remaining list first.
        let pad_a = if ra == 0 { 0 } else { (w - ra).min(len_a - pa) };
        let pad_b = if rb == 0 { 0 } else { (w - rb).min(len_b - pb) };
        let mut need = e;
        let a_first = (pad_a > 0 && pad_a <= pad_b) || pad_b == 0;
        let (take_a, take_b) = if a_first {
            let ta = need.min(pad_a);
            need -= ta;
            let tb = need.min(pad_b);
            need -= tb;
            (ta, tb)
        } else {
            let tb = need.min(pad_b);
            need -= tb;
            let ta = need.min(pad_a);
            need -= ta;
            (ta, tb)
        };
        assert!(
            need == 0,
            "padding underflow at thread {} (w={w}, E={e}): the Lemma 2 invariant failed",
            threads.len()
        );
        pa += take_a;
        pb += take_b;
        threads.push(ThreadAssign {
            a: take_a,
            b: take_b,
            first: if a_first { ScanFirst::A } else { ScanFirst::B },
        });
    }
    assert_eq!(threads.len(), w, "construction used {} of {w} threads", threads.len());
    assert_eq!(aligned_a, cols_a);
    assert_eq!(aligned_b, cols_b);

    let mut asg = WarpAssignment { w, e, window_start: 0, threads };
    optimize_scan_order(&mut asg);
    asg
}

/// All valid small-`E` values for warp width `w`, in increasing order.
#[must_use]
pub fn small_e_values(w: usize) -> Vec<usize> {
    (3..w / 2).step_by(2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;

    /// Theorem 3: `E²` aligned elements — and the stronger per-step
    /// property that every one of the `E` steps has exactly `E` threads
    /// on the expected window bank.
    #[test]
    fn theorem3_all_small_e_up_to_w128() {
        for w in [8usize, 16, 32, 64, 128] {
            for e in small_e_values(w) {
                let asg = construct_small_e(w, e);
                asg.validate_paper_shares().unwrap_or_else(|err| panic!("w={w} E={e}: {err}"));
                let ev = evaluate(&asg).unwrap();
                assert_eq!(ev.aligned, e * e, "aligned count w={w} E={e}");
                assert_eq!(
                    ev.window_multiplicity,
                    vec![e; e],
                    "per-step window multiplicity w={w} E={e}"
                );
                // Degree is at least E in every step (the window bank has
                // E distinct addresses queued).
                assert!(ev.degrees.iter().all(|&d| d >= e), "w={w} E={e}");
            }
        }
    }

    /// The paper's headline example: Fig. 3 left, w = 16, E = 7.
    #[test]
    fn fig3_small_w16_e7() {
        let asg = construct_small_e(16, 7);
        let ev = evaluate(&asg).unwrap();
        assert_eq!(ev.aligned, 49);
        // Effective parallelism drops to ⌈w/E⌉: the merging stage costs
        // at least E per step instead of 1.
        assert!(ev.cycles() >= 7 * 7);
    }

    #[test]
    fn shares_match_paper() {
        let asg = construct_small_e(32, 15);
        assert_eq!(asg.share_a(), 8 * 32); // (E+1)/2 = 8 columns
        assert_eq!(asg.share_b(), 7 * 32); // (E−1)/2 = 7 columns
    }

    #[test]
    fn swapped_warp_same_alignment() {
        let asg = construct_small_e(32, 11);
        let ev_l = evaluate(&asg).unwrap();
        let ev_r = evaluate(&asg.swapped()).unwrap();
        assert_eq!(ev_l.aligned, ev_r.aligned);
    }

    #[test]
    fn thread_budget_is_exact() {
        for e in small_e_values(32) {
            let asg = construct_small_e(32, e);
            assert_eq!(asg.threads.len(), 32);
            // E aligned threads + (w − E) fillers.
            let full = asg.threads.iter().filter(|t| t.a == e || t.b == e).count();
            assert!(full >= e, "at least E single-list threads, E={e}");
        }
    }

    #[test]
    #[should_panic(expected = "small-E construction")]
    fn rejects_large_e() {
        let _ = construct_small_e(32, 17);
    }

    #[test]
    #[should_panic(expected = "small-E construction")]
    fn rejects_even_e() {
        let _ = construct_small_e(32, 8);
    }

    #[test]
    fn is_small_e_boundaries() {
        assert!(is_small_e(32, 15));
        assert!(is_small_e(32, 3));
        assert!(!is_small_e(32, 1)); // trivial: no conflicts possible
        assert!(!is_small_e(32, 16)); // E = w/2
        assert!(!is_small_e(32, 17)); // large case
        assert!(!is_small_e(24, 5)); // w not a power of two
    }
}
