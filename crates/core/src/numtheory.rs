//! Elementary number theory used by the constructions (the paper's
//! Facts 5–6 and Lemma 4).

/// Greatest common divisor (Euclid). `gcd(0, 0) = 0` by convention.
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`.
#[must_use]
pub fn egcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a.abs(), a.signum(), 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Modular inverse of `a` modulo `m` (Fact 6: exists and is unique iff
/// `gcd(a, m) = 1`). Returns `None` otherwise.
#[must_use]
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    if m == 1 {
        return Some(0);
    }
    let (g, x, _) = egcd((a % m) as i64, m as i64);
    (g == 1).then(|| x.rem_euclid(m as i64) as u64)
}

/// Solve the linear congruence `a·x ≡ b (mod m)` for `gcd(a, m) = 1`
/// (Fact 5: exactly one solution in `Z_m`). Returns `None` if `a` and `m`
/// are not co-prime.
#[must_use]
pub fn solve_linear_congruence(a: u64, b: u64, m: u64) -> Option<u64> {
    mod_inverse(a, m).map(|inv| (inv % m) * (b % m) % m)
}

/// Lemma 4 of the paper: for `w` a power of two and odd `E` with
/// `w/2 < E < w`, the remainder `r = w − E` is odd and co-prime with `E`.
/// This checker is used by tests and as a precondition assert.
#[must_use]
pub fn lemma4_holds(w: u64, e: u64) -> bool {
    if !w.is_power_of_two() || e.is_multiple_of(2) || e <= w / 2 || e >= w {
        return false;
    }
    let r = w - e;
    r % 2 == 1 && gcd(e, r) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(32, 15), 1);
    }

    #[test]
    fn egcd_bezout_identity() {
        for (a, b) in [(240i64, 46), (17, 5), (6, 9), (1, 1), (13, 13)] {
            let (g, x, y) = egcd(a, b);
            assert_eq!(a * x + b * y, g, "a={a} b={b}");
            assert_eq!(g, gcd(a as u64, b as u64) as i64);
        }
    }

    #[test]
    fn mod_inverse_roundtrip() {
        for m in [3u64, 5, 7, 9, 15, 17, 31, 32] {
            for a in 1..m {
                match mod_inverse(a, m) {
                    Some(inv) => {
                        assert_eq!(gcd(a, m), 1);
                        assert_eq!(a * inv % m, 1, "a={a} m={m}");
                        assert!(inv < m);
                    }
                    None => assert_ne!(gcd(a, m), 1, "a={a} m={m}"),
                }
            }
        }
    }

    #[test]
    fn mod_inverse_degenerate_moduli() {
        assert_eq!(mod_inverse(3, 0), None);
        assert_eq!(mod_inverse(3, 1), Some(0));
    }

    #[test]
    fn linear_congruence_unique_solution() {
        // Fact 5 on E = 9, r = 7: each b has exactly one solution.
        let (e, r) = (9u64, 7u64);
        for b in 0..e {
            let x = solve_linear_congruence(r, b, e).unwrap();
            assert_eq!(r * x % e, b);
        }
        // Non-co-prime has no (general) unique solution.
        assert_eq!(solve_linear_congruence(6, 1, 9), None);
    }

    #[test]
    fn lemma4_all_large_odd_e() {
        for w in [16u64, 32, 64, 128] {
            for e in (w / 2 + 1)..w {
                if e % 2 == 1 {
                    assert!(lemma4_holds(w, e), "w={w} e={e}");
                    assert_eq!(gcd(e, w - e), 1, "co-primality w={w} e={e}");
                }
            }
        }
    }

    #[test]
    fn lemma4_rejects_out_of_range() {
        assert!(!lemma4_holds(32, 15)); // small E
        assert!(!lemma4_holds(32, 32)); // E = w
        assert!(!lemma4_holds(32, 18)); // even E
        assert!(!lemma4_holds(30, 17)); // w not a power of two
    }
}
