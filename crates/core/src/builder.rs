//! From per-warp assignments to a full `N`-element input permutation.
//!
//! The paper's constructions fix, for one merge round, how each thread's
//! `E` merged elements split between the two lists. The experiments,
//! however, sort whole arrays — so the adversarial interleaving must hold
//! at *every* global merge round. This module composes rounds by running
//! the merge tree **backwards** from the sorted output ("unmerge"):
//!
//! * the final sorted array is the root segment (ranks `0 … N−1`);
//! * at each round, every merged segment is split into its `A` (left
//!   child) and `B` (right child) lists according to the block
//!   interleaving derived from the warp assignments — each thread block's
//!   `bE` ranks contribute exactly `bE/2` to each list (§III "General
//!   Strategy"), each `L`-warp `(E+1)/2·w` to `A`, each `R`-warp the
//!   mirror image;
//! * the leaves are the base-case blocks of `bE` elements, whose internal
//!   order is free (the base case sorts them regardless); we emit them in
//!   ascending order, or seeded-shuffled for the *family* variant
//!   (Conclusion, point 2).
//!
//! Because all keys are distinct (`0 … N−1`), the simulated sort's Merge
//! Path partitioning recovers exactly these splits, so the warp-level
//! access pattern at every global round is exactly the constructed one.

use wcms_error::WcmsError;

use crate::assignment::{ScanFirst, WarpAssignment};
use crate::conflict_heavy::conflict_heavy_warp;
use crate::construct;

/// Builds adversarial input permutations for the pairwise merge sort with
/// parameters `(w, E, b)`.
///
/// ```
/// use wcms_core::WorstCaseBuilder;
///
/// let builder = WorstCaseBuilder::new(32, 15, 512)?;
/// let n = builder.block_elems() * 4; // sizes must be bE·2^m
/// let input = builder.build(n)?;
/// // A permutation of 0..n, adversarial at every global merge round.
/// let mut sorted = input.clone();
/// sorted.sort_unstable();
/// assert!(sorted.iter().enumerate().all(|(i, &v)| v == i as u32));
/// # Ok::<(), wcms_core::WcmsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WorstCaseBuilder {
    w: usize,
    e: usize,
    b: usize,
    /// Per-rank flag over one block window: `true` → the rank goes to the
    /// `A` (left) list.
    pattern: Vec<bool>,
}

impl WorstCaseBuilder {
    /// Builder from an explicit `L`-warp assignment (the `R` warps use
    /// its mirror image). `b` must be a power of two with at least two
    /// warps, and the block's shares must balance to `bE/2` per list.
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::InvalidBlock`] when the geometry is
    /// inconsistent and [`WcmsError::InvalidAssignment`] when the
    /// assignment or its shares are.
    pub fn from_assignment(b: usize, l_asg: &WarpAssignment) -> Result<Self, WcmsError> {
        let (w, e) = (l_asg.w, l_asg.e);
        if !b.is_power_of_two() {
            return Err(WcmsError::InvalidBlock {
                b,
                w,
                reason: "b must be a power of two".into(),
            });
        }
        if b < 2 * w {
            return Err(WcmsError::InvalidBlock {
                b,
                w,
                reason: "need at least two warps per block (b >= 2w)".into(),
            });
        }
        l_asg.validate()?;
        let r_asg = l_asg.swapped();

        let warps = b / w;
        let mut pattern = Vec::with_capacity(b * e);
        for v in 0..warps {
            let asg = if v < warps / 2 { l_asg } else { &r_asg };
            for t in &asg.threads {
                let (first_len, first_is_a) = match t.first {
                    ScanFirst::A => (t.a, true),
                    ScanFirst::B => (t.b, false),
                };
                for k in 0..e {
                    pattern.push(if k < first_len { first_is_a } else { !first_is_a });
                }
            }
        }
        let to_a = pattern.iter().filter(|&&x| x).count();
        if to_a != b * e / 2 {
            return Err(WcmsError::InvalidAssignment {
                reason: format!(
                    "block shares must balance to bE/2 = {} per list, found {to_a}",
                    b * e / 2
                ),
            });
        }
        Ok(Self { w, e, b, pattern })
    }

    /// The paper's worst-case builder for co-prime odd `3 ≤ E < w`.
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::NonCoprime`] when no construction covers
    /// `(w, E)` and [`WcmsError::InvalidBlock`] when `b` is inconsistent.
    pub fn new(w: usize, e: usize, b: usize) -> Result<Self, WcmsError> {
        Self::from_assignment(b, &construct(w, e)?)
    }

    /// A Karsin-style conflict-heavy baseline builder
    /// (see [`crate::conflict_heavy`]): every thread takes `stride`
    /// elements from one list (power-of-two strides collide
    /// `gcd(w, stride)`-ways), the rest from the other.
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::InvalidBlock`] or
    /// [`WcmsError::InvalidAssignment`] when the geometry is
    /// inconsistent.
    pub fn conflict_heavy(w: usize, e: usize, b: usize, stride: usize) -> Result<Self, WcmsError> {
        Self::from_assignment(b, &conflict_heavy_warp(w, e, stride))
    }

    /// Elements per block tile (`bE`).
    #[must_use]
    pub fn block_elems(&self) -> usize {
        self.b * self.e
    }

    /// Warp width.
    #[must_use]
    pub fn warp(&self) -> usize {
        self.w
    }

    /// Elements per thread.
    #[must_use]
    pub fn elems_per_thread(&self) -> usize {
        self.e
    }

    /// Threads per block.
    #[must_use]
    pub fn block_threads(&self) -> usize {
        self.b
    }

    /// True if `n` is a size the merge-sort structure supports:
    /// `n = bE · 2^m`.
    #[must_use]
    pub fn valid_len(&self, n: usize) -> bool {
        let be = self.block_elems();
        n >= be && n.is_multiple_of(be) && (n / be).is_power_of_two()
    }

    /// The smallest valid size ≥ `n`.
    #[must_use]
    pub fn next_valid_len(&self, n: usize) -> usize {
        let be = self.block_elems();
        let blocks = n.div_ceil(be).max(1);
        be * blocks.next_power_of_two()
    }

    /// Build the worst-case permutation of `0 … n−1`, adversarial at
    /// every global merge round. Base-block contents are deterministically
    /// shuffled (seed 0) so the base case behaves like it does on random
    /// inputs — leaving the global rounds' conflicts as the only
    /// difference, as in the paper's comparison.
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::InvalidLength`] if `n` is not a
    /// [valid length](Self::valid_len) or exceeds `u32` range.
    pub fn build(&self, n: usize) -> Result<Vec<u32>, WcmsError> {
        self.build_inner(n, Some(0), usize::MAX)
    }

    /// As [`WorstCaseBuilder::build`], but with every base block emitted
    /// in ascending order — a conflict-free base case. Useful for
    /// isolating the global rounds in analyses.
    ///
    /// # Errors
    ///
    /// As [`WorstCaseBuilder::build`].
    pub fn build_sorted_base(&self, n: usize) -> Result<Vec<u32>, WcmsError> {
        self.build_inner(n, None, usize::MAX)
    }

    /// The *family* variant (paper Conclusion, point 2): same conflict
    /// behaviour at every global round, but each base block's internal
    /// order is shuffled by `seed`, yielding distinct permutations.
    ///
    /// # Errors
    ///
    /// As [`WorstCaseBuilder::build`].
    pub fn build_family_member(&self, n: usize, seed: u64) -> Result<Vec<u32>, WcmsError> {
        self.build_inner(n, Some(seed), usize::MAX)
    }

    /// Near-worst-case variant (Conclusion, point 3): only the *last*
    /// `adversarial_rounds` global rounds use the adversarial
    /// interleaving; earlier rounds split sorted (conflict-light). Base
    /// blocks are emitted ascending, so with 0 adversarial rounds this
    /// degenerates to a fully sorted array.
    ///
    /// # Errors
    ///
    /// As [`WorstCaseBuilder::build`].
    pub fn build_partial(
        &self,
        n: usize,
        adversarial_rounds: usize,
    ) -> Result<Vec<u32>, WcmsError> {
        self.build_inner(n, None, adversarial_rounds)
    }

    fn build_inner(
        &self,
        n: usize,
        seed: Option<u64>,
        adversarial_rounds: usize,
    ) -> Result<Vec<u32>, WcmsError> {
        if !self.valid_len(n) || n > u32::MAX as usize {
            return Err(WcmsError::InvalidLength { n, block_elems: self.block_elems() });
        }
        let be = self.block_elems();
        let rounds = (n / be).trailing_zeros() as usize;

        let mut segments: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        // Walk rounds from the last (largest) down to the first.
        for round in (1..=rounds).rev() {
            // Rounds are numbered 1..=rounds in execution order; the
            // adversarial window covers the last `adversarial_rounds` of
            // them … and since every round's merge structure is
            // identical, "last k" vs "first k" only matters for partial
            // builds: we adversarialize the *latest* (largest, most
            // expensive) rounds.
            let adversarial = rounds - round < adversarial_rounds;
            let mut next = Vec::with_capacity(segments.len() * 2);
            for seg in &segments {
                let (a, b) = self.split_segment(seg, adversarial);
                next.push(a);
                next.push(b);
            }
            segments = next;
        }

        let mut out = Vec::with_capacity(n);
        for (i, seg) in segments.iter().enumerate() {
            debug_assert_eq!(seg.len(), be);
            match seed {
                None => out.extend_from_slice(seg),
                Some(s) => {
                    let mut block = seg.clone();
                    shuffle(&mut block, s ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    out.extend_from_slice(&block);
                }
            }
        }
        Ok(out)
    }

    /// Split a merged segment into its two input lists.
    fn split_segment(&self, seg: &[u32], adversarial: bool) -> (Vec<u32>, Vec<u32>) {
        let half = seg.len() / 2;
        let mut a = Vec::with_capacity(half);
        let mut b = Vec::with_capacity(half);
        if adversarial {
            let be = self.block_elems();
            for (idx, &v) in seg.iter().enumerate() {
                if self.pattern[idx % be] {
                    a.push(v);
                } else {
                    b.push(v);
                }
            }
        } else {
            a.extend_from_slice(&seg[..half]);
            b.extend_from_slice(&seg[half..]);
        }
        debug_assert_eq!(a.len(), half);
        (a, b)
    }
}

/// Deterministic Fisher–Yates with an inline SplitMix64 (keeps `rand` out
/// of the core crate's dependency set).
fn shuffle(xs: &mut [u32], seed: u64) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..xs.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_builder() -> WorstCaseBuilder {
        // w = 8, E = 3, b = 16 → block of 48 elements, 2 warps.
        WorstCaseBuilder::new(8, 3, 16).unwrap()
    }

    #[test]
    fn build_is_a_permutation() {
        let builder = tiny_builder();
        let n = builder.block_elems() * 8;
        let input = builder.build(n).unwrap();
        assert_eq!(input.len(), n);
        let mut sorted = input.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn single_block_sorted_base_is_identity() {
        let builder = tiny_builder();
        let n = builder.block_elems();
        // No global rounds: with a sorted base, the input is ascending.
        let input = builder.build_sorted_base(n).unwrap();
        assert!(input.windows(2).all(|w| w[0] < w[1]));
        // The default build shuffles base blocks deterministically.
        let shuffled = builder.build(n).unwrap();
        assert!(!shuffled.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(builder.build(n).unwrap(), shuffled);
    }

    #[test]
    fn valid_len_arithmetic() {
        let builder = tiny_builder();
        let be = builder.block_elems();
        assert!(builder.valid_len(be));
        assert!(builder.valid_len(be * 2));
        assert!(builder.valid_len(be * 8));
        assert!(!builder.valid_len(be * 3));
        assert!(!builder.valid_len(be + 1));
        assert!(!builder.valid_len(0));
        assert_eq!(builder.next_valid_len(be * 3), be * 4);
        assert_eq!(builder.next_valid_len(1), be);
    }

    #[test]
    fn split_respects_block_interleaving() {
        let builder = tiny_builder();
        let n = builder.block_elems() * 2;
        let seg: Vec<u32> = (0..n as u32).collect();
        let (a, b) = builder.split_segment(&seg, true);
        assert_eq!(a.len(), b.len());
        // Both halves are strictly ascending subsequences.
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        // Every block window contributes bE/2 to each list.
        let be = builder.block_elems();
        let in_first_block = a.iter().filter(|&&v| (v as usize) < be).count();
        assert_eq!(in_first_block, be / 2);
    }

    #[test]
    fn family_members_differ_but_are_permutations() {
        let builder = tiny_builder();
        let n = builder.block_elems() * 4;
        let m0 = builder.build_family_member(n, 1).unwrap();
        let m1 = builder.build_family_member(n, 2).unwrap();
        assert_ne!(m0, m1);
        for m in [&m0, &m1] {
            let mut s = (*m).clone();
            s.sort_unstable();
            assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
        }
    }

    #[test]
    fn partial_zero_rounds_is_sorted() {
        let builder = tiny_builder();
        let n = builder.block_elems() * 4;
        let input = builder.build_partial(n, 0).unwrap();
        assert!(input.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn partial_full_rounds_equals_sorted_base_build() {
        let builder = tiny_builder();
        let n = builder.block_elems() * 4;
        assert_eq!(builder.build_partial(n, 2).unwrap(), builder.build_sorted_base(n).unwrap());
        assert_eq!(builder.build_partial(n, 99).unwrap(), builder.build_sorted_base(n).unwrap());
    }

    #[test]
    fn conflict_heavy_builder_builds_permutations() {
        let builder = WorstCaseBuilder::conflict_heavy(8, 3, 16, 2).unwrap();
        let n = builder.block_elems() * 4;
        let input = builder.build(n).unwrap();
        let mut s = input.clone();
        s.sort_unstable();
        assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn build_rejects_bad_length() {
        let builder = tiny_builder();
        let err = builder.build(builder.block_elems() * 3).unwrap_err();
        assert!(matches!(err, wcms_error::WcmsError::InvalidLength { .. }), "{err}");
    }

    #[test]
    fn rejects_single_warp_blocks() {
        let err = WorstCaseBuilder::new(8, 3, 8).unwrap_err();
        assert!(err.to_string().contains("b >= 2w"), "{err}");
    }

    #[test]
    fn pattern_length_is_block_elems() {
        let builder = WorstCaseBuilder::new(32, 15, 128).unwrap();
        assert_eq!(builder.pattern.len(), 128 * 15);
        assert_eq!(builder.block_elems(), 1920);
    }
}
