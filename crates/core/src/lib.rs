//! # `wcms-core` — constructive worst-case inputs for GPU merge sort
//!
//! The primary contribution of Berney & Sitchinava (IPDPS 2020),
//! implemented in full: for every `E < w` co-prime with the warp width
//! `w`, construct an input permutation on which every warp of the GPU
//! pairwise merge sort degenerates to `⌈w/E⌉`-way effective parallelism
//! through shared-memory bank conflicts.
//!
//! * [`numtheory`] — gcd/inverse/congruence facts (Facts 5–6, Lemma 4);
//! * [`assignment`] — per-warp thread shares, the constructions' output;
//! * [`small_e`] — the `E < w/2` construction (Lemma 2 / Theorem 3,
//!   `E²` aligned elements);
//! * [`sequence`] — the `xᵢ/yᵢ` congruence sequences and the `S`, `T`
//!   tuple sequences (Lemmas 7–8);
//! * [`large_e`] — the `w/2 < E < w` construction (Theorem 9);
//! * [`sorted_case`] — the `gcd(w, E) = d > 1` analysis where sorted
//!   order itself aligns every `d`-th column (Fig. 1);
//! * [`mod@evaluate`] — exact DMM evaluation of an assignment's merging
//!   stage;
//! * [`scan_order`] — per-thread scan-order selection;
//! * [`lemma1`] — the pigeonhole worst-case bound and its witness;
//! * [`lemma2`] — the front-to-back / back-to-front / outside-in
//!   alignment strategies as explicit composable steps;
//! * [`builder`] — the *unmerge* composition turning per-round warp
//!   assignments into a full `N`-element input permutation;
//! * [`family`] — an iterator over the worst-case permutation family
//!   (Conclusion, point 2);
//! * [`expected`] — Monte-Carlo estimation of the expected conflict
//!   degree on random interleavings (the open problem's empirical side);
//! * [`conflict_heavy`] — a Karsin-style heuristic baseline adversary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod builder;
pub mod conflict_heavy;
pub mod evaluate;
pub mod expected;
pub mod family;
pub mod large_e;
pub mod lemma1;
pub mod lemma2;
pub mod numtheory;
pub mod scan_order;
pub mod sequence;
pub mod small_e;
pub mod sorted_case;

pub use assignment::{ScanFirst, ThreadAssign, WarpAssignment};
pub use builder::WorstCaseBuilder;
pub use evaluate::{access_matrix, evaluate, WarpEval};
pub use family::WorstCaseFamily;
pub use large_e::construct_large_e;
pub use small_e::construct_small_e;
pub use wcms_error::WcmsError;

/// Construct the worst-case warp assignment for any odd `E` co-prime with
/// `w` (`3 ≤ E < w`, `E ≠ w/2`): dispatches to the small- or large-`E`
/// construction.
///
/// ```
/// use wcms_core::{construct, evaluate, theorem_aligned_count};
///
/// // Thrust's E = 15 on 32 banks: all E² = 225 window elements align,
/// // so every merge step is a 15-way bank conflict.
/// let asg = construct(32, 15)?;
/// let ev = evaluate(&asg)?;
/// assert_eq!(ev.aligned, 225);
/// assert_eq!(ev.aligned, theorem_aligned_count(32, 15)?);
/// assert!(ev.degrees.iter().all(|&d| d >= 15));
/// # Ok::<(), wcms_core::WcmsError>(())
/// ```
///
/// # Errors
///
/// Returns [`WcmsError::NonCoprime`] if `E` is even, `E < 3`, or
/// `E ≥ w` — no worst-case construction exists for such parameters.
pub fn construct(w: usize, e: usize) -> Result<WarpAssignment, WcmsError> {
    if small_e::is_small_e(w, e) {
        Ok(construct_small_e(w, e))
    } else if large_e::is_large_e(w, e) {
        Ok(construct_large_e(w, e))
    } else {
        Err(WcmsError::NonCoprime { w, e })
    }
}

/// The aligned-element count the paper proves for `(w, E)`:
/// `E²` for small `E` (Theorem 3) and
/// `(E² + E + 2Er − r² − r)/2` with `r = w − E` for large `E`
/// (Theorem 9).
///
/// # Errors
///
/// Returns [`WcmsError::NonCoprime`] if neither theorem covers
/// `(w, E)`.
pub fn theorem_aligned_count(w: usize, e: usize) -> Result<usize, WcmsError> {
    if small_e::is_small_e(w, e) {
        Ok(e * e)
    } else if large_e::is_large_e(w, e) {
        let r = w - e;
        Ok((e * e + e + 2 * e * r - r * r - r) / 2)
    } else {
        Err(WcmsError::NonCoprime { w, e })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_dispatches() {
        assert_eq!(construct(32, 7).unwrap().window_start, 0);
        assert_eq!(construct(32, 17).unwrap().window_start, 15);
    }

    #[test]
    fn construct_rejects_even() {
        let err = construct(32, 6).unwrap_err();
        assert!(matches!(err, WcmsError::NonCoprime { w: 32, e: 6 }), "{err}");
        assert!(construct(32, 32).is_err());
        assert!(construct(32, 1).is_err());
    }

    #[test]
    fn theorem_counts_at_the_papers_corner_cases() {
        // §III-B: for E = w/2 + 1 (r = E − 2) the bound is E² − 1.
        let w = 32;
        let e = 17;
        assert_eq!(theorem_aligned_count(w, e).unwrap(), e * e - 1);
        // For E = w − 1 (r = 1) the bound is E²/2 + 3E/2 − 1
        // (paper: ½E² + 3/2·E − 1).
        let e = 31;
        assert_eq!(theorem_aligned_count(w, e).unwrap(), (e * e + 3 * e) / 2 - 1);
        assert!(theorem_aligned_count(32, 6).is_err());
    }
}
