//! Analytic evaluation of a warp assignment on the DMM.
//!
//! Given a [`WarpAssignment`], derive the exact `E`-step shared-memory
//! access pattern of the warp's merging stage (each thread scans its two
//! chunks in increasing key order) and measure it with the DMM conflict
//! counter. This is the fast, single-warp counterpart of running the full
//! simulated sort, and the oracle the theorem tests check against.

use wcms_dmm::{
    BankMatrix, BankModel, CellClass, ConflictCounter, ConflictTotals, MatrixCell, WarpStep,
};

use crate::assignment::{ScanFirst, WarpAssignment};

/// Result of evaluating one warp's merging stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpEval {
    /// Elements read in step `j` while residing in bank `(s + j) mod w` —
    /// the paper's *aligned* elements.
    pub aligned: usize,
    /// Per-step serialization degree (max distinct addresses per bank).
    pub degrees: Vec<usize>,
    /// Per-step number of accesses landing in the expected window bank
    /// `(s + j) mod w` — the quantity the constructions drive to `E`.
    pub window_multiplicity: Vec<usize>,
    /// Full conflict totals of the `E` steps.
    pub totals: ConflictTotals,
}

impl WarpEval {
    /// Serialized shared-memory cycles of the merging stage (Σ degrees).
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.totals.cycles
    }

    /// The paper's "total bank conflicts" count: Σ over steps of the
    /// number of accesses involved in a conflict.
    #[must_use]
    pub fn conflicting_accesses(&self) -> usize {
        self.totals.conflicting_accesses
    }
}

/// Per-thread access address sequences (step → shared-memory address).
///
/// Addresses place the warp's `A` segment at 0 and its `B` segment at the
/// next multiple-of-`w` boundary (in the real tile both segments start at
/// bank 0; see DESIGN.md §5.2).
#[must_use]
pub fn address_sequences(asg: &WarpAssignment) -> Vec<Vec<usize>> {
    let b_base = asg.share_a().div_ceil(asg.w) * asg.w;
    let offsets = asg.thread_offsets();
    asg.threads
        .iter()
        .zip(offsets)
        .map(|(t, (pa, pb))| {
            let a_chunk = (0..t.a).map(|k| pa + k);
            let b_chunk = (0..t.b).map(|k| b_base + pb + k);
            match t.first {
                ScanFirst::A => a_chunk.chain(b_chunk).collect(),
                ScanFirst::B => b_chunk.chain(a_chunk).collect(),
            }
        })
        .collect()
}

/// Evaluate the warp's merging stage.
///
/// # Errors
///
/// Returns [`wcms_error::WcmsError::InvalidAssignment`] if the
/// assignment fails [`WarpAssignment::validate`].
pub fn evaluate(asg: &WarpAssignment) -> Result<WarpEval, wcms_error::WcmsError> {
    asg.validate()?;
    let model = BankModel::new(asg.w);
    let mut counter = ConflictCounter::new(model);
    let seqs = address_sequences(asg);

    let mut aligned = 0usize;
    let mut degrees = Vec::with_capacity(asg.e);
    let mut window_multiplicity = Vec::with_capacity(asg.e);
    let mut addrs = vec![0usize; asg.w];

    for j in 0..asg.e {
        for (lane, seq) in seqs.iter().enumerate() {
            addrs[lane] = seq[j];
        }
        let step = WarpStep::all_read(&addrs);
        let s = counter.count(&step);
        degrees.push(s.degree);
        let expected_bank = (asg.window_start + j) % asg.w;
        let mult = addrs.iter().filter(|&&a| model.bank_of(a) == expected_bank).count();
        window_multiplicity.push(mult);
        aligned += mult;
    }
    Ok(WarpEval { aligned, degrees, window_multiplicity, totals: counter.totals() })
}

/// Build the Figure 1/3-style matrix: every element of the warp's window,
/// labelled with its owning thread and classified as aligned (`=`),
/// misaligned within the `E` banks (`!`), or filler (`.`).
#[must_use]
pub fn access_matrix(asg: &WarpAssignment) -> BankMatrix {
    let model = BankModel::new(asg.w);
    let seqs = address_sequences(asg);
    let max_addr = seqs.iter().flatten().copied().max().unwrap_or(0);
    let mut m = BankMatrix::new(model, model.column_of(max_addr) + 1);
    let in_window = |bank: usize| bank >= asg.window_start && bank < asg.window_start + asg.e;
    for (thread, seq) in seqs.iter().enumerate() {
        for (j, &addr) in seq.iter().enumerate() {
            let bank = model.bank_of(addr);
            let class = if bank == (asg.window_start + j) % asg.w {
                CellClass::Aligned
            } else if in_window(bank) {
                CellClass::Misaligned
            } else {
                CellClass::Filler
            };
            m.set_addr(addr, MatrixCell::Owned { thread, class });
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::ThreadAssign;

    /// A hand-built perfectly-aligned toy: w = 4, E = 3,
    /// |A| = 8 (2 columns), |B| = 4 (1 column).
    /// t0: 3 from A (col 0 of A, banks 0..3 → aligned).
    /// t1: 3 from B (col 0 of B → aligned).
    /// t2: 1 from A (bank 3, filler) + 2 from B (bank 3 … wait B done) —
    /// instead craft: t2: 1A + 2B? B has only 3. Use |B|=4: t2: 1A,2B
    /// hits B banks 3,0 … keep it simple and just assert the evaluator's
    /// arithmetic on a fully-A warp.
    #[test]
    fn sorted_warp_every_thread_own_column_when_e_divides_w() {
        // w = 4, E = 4 (power of two): sorted order, all from A.
        // Thread i reads addresses 4i..4i+4 → at step j every thread is in
        // bank j → degree 4 every step.
        let asg = WarpAssignment {
            w: 4,
            e: 4,
            window_start: 0,
            threads: vec![ThreadAssign { a: 4, b: 0, first: ScanFirst::A }; 4],
        };
        let ev = evaluate(&asg).unwrap();
        assert_eq!(ev.degrees, vec![4; 4]);
        assert_eq!(ev.window_multiplicity, vec![4; 4]);
        assert_eq!(ev.aligned, 16);
        assert_eq!(ev.cycles(), 16);
        assert_eq!(ev.conflicting_accesses(), 16);
    }

    #[test]
    fn interleaved_sorted_warp_is_conflict_light() {
        // w = 4, E = 3, every thread takes 3 consecutive from A: thread i
        // starts at bank 3i mod 4 — a rotation, so every step hits 4
        // distinct banks (gcd(3,4) = 1 → conflict-free steps).
        let asg = WarpAssignment {
            w: 4,
            e: 3,
            window_start: 0,
            threads: vec![ThreadAssign { a: 3, b: 0, first: ScanFirst::A }; 4],
        };
        let ev = evaluate(&asg).unwrap();
        assert_eq!(ev.degrees, vec![1; 3]);
        assert_eq!(ev.totals.extra_cycles, 0);
    }

    #[test]
    fn address_sequences_respect_scan_order() {
        let asg = WarpAssignment {
            w: 2,
            e: 3,
            window_start: 0,
            threads: vec![
                ThreadAssign { a: 2, b: 1, first: ScanFirst::A },
                ThreadAssign { a: 1, b: 2, first: ScanFirst::B },
            ],
        };
        let seqs = address_sequences(&asg);
        // share_a = 3 → B base rounds up to 4.
        assert_eq!(seqs[0], vec![0, 1, 4]);
        assert_eq!(seqs[1], vec![5, 6, 2]);
    }

    #[test]
    fn aligned_counts_window_hits_only() {
        // w = 4, E = 2, window at bank 0: thread 0 reads banks 0,1
        // (aligned twice); thread 1 reads banks 2,3 (filler).
        let asg = WarpAssignment {
            w: 4,
            e: 2,
            window_start: 0,
            threads: vec![
                ThreadAssign { a: 2, b: 0, first: ScanFirst::A },
                ThreadAssign { a: 2, b: 0, first: ScanFirst::A },
                ThreadAssign { a: 0, b: 2, first: ScanFirst::B },
                ThreadAssign { a: 0, b: 2, first: ScanFirst::B },
            ],
        };
        let ev = evaluate(&asg).unwrap();
        // Threads 0/1 read A banks (0,1) and (2,3); threads 2/3 read B
        // banks (0,1), (2,3). Step 0: banks {0,2,0,2} → window bank 0
        // multiplicity 2.
        assert_eq!(ev.window_multiplicity, vec![2, 2]);
        assert_eq!(ev.aligned, 4);
    }

    #[test]
    fn matrix_classification() {
        let asg = WarpAssignment {
            w: 4,
            e: 2,
            window_start: 0,
            threads: vec![
                ThreadAssign { a: 2, b: 0, first: ScanFirst::A },
                ThreadAssign { a: 2, b: 0, first: ScanFirst::A },
                ThreadAssign { a: 0, b: 2, first: ScanFirst::B },
                ThreadAssign { a: 0, b: 2, first: ScanFirst::B },
            ],
        };
        let m = access_matrix(&asg);
        // Aligned: thread 0's two A elements and thread 2's two B
        // elements (banks 0,1 at steps 0,1).
        assert_eq!(m.count_class(CellClass::Aligned), 4);
        // Banks 2,3 hold thread 1's and thread 3's elements: filler.
        assert_eq!(m.count_class(CellClass::Filler), 4);
        assert_eq!(m.count_class(CellClass::Misaligned), 0);
    }

    #[test]
    fn evaluate_rejects_invalid() {
        let asg = WarpAssignment {
            w: 2,
            e: 3,
            window_start: 0,
            threads: vec![ThreadAssign { a: 1, b: 1, first: ScanFirst::A }; 2],
        };
        let err = evaluate(&asg).unwrap_err();
        assert!(matches!(err, wcms_error::WcmsError::InvalidAssignment { .. }), "{err}");
    }
}
