//! The worst-case *family* (paper Conclusion, point 2): "our construction
//! can actually produce a family of permutations, as many of the elements
//! in the non-aligned `w − E` memory banks can be permuted without
//! affecting the total number of bank conflicts."
//!
//! [`WorstCaseFamily`] is an iterator over distinct members of that
//! family for fixed `(w, E, b, N)` — each a different permutation with
//! identical global-round conflict behaviour (verified by the
//! `family_members_share_global_beta2` integration test).

use crate::builder::WorstCaseBuilder;
use wcms_error::WcmsError;

/// Iterator over distinct worst-case permutations.
#[derive(Debug, Clone)]
pub struct WorstCaseFamily {
    builder: WorstCaseBuilder,
    n: usize,
    next_seed: u64,
}

impl WorstCaseFamily {
    /// Family for sort parameters `(w, E, b)` at size `n` (`bE·2^m`),
    /// starting from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::NonCoprime`] / [`WcmsError::InvalidBlock`]
    /// for bad geometry and [`WcmsError::InvalidLength`] if `n` is not
    /// `bE·2^m`.
    pub fn new(w: usize, e: usize, b: usize, n: usize, seed: u64) -> Result<Self, WcmsError> {
        let builder = WorstCaseBuilder::new(w, e, b)?;
        if !builder.valid_len(n) {
            return Err(WcmsError::InvalidLength { n, block_elems: builder.block_elems() });
        }
        Ok(Self { builder, n, next_seed: seed })
    }

    /// The shared builder (for inspecting geometry).
    #[must_use]
    pub fn builder(&self) -> &WorstCaseBuilder {
        &self.builder
    }
}

impl Iterator for WorstCaseFamily {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        let member = self.builder.build_family_member(self.n, self.next_seed).ok()?;
        self.next_seed = self.next_seed.wrapping_add(1);
        Some(member)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_are_distinct_permutations() {
        let mut family = WorstCaseFamily::new(8, 3, 16, 48 * 4, 0).unwrap();
        let a = family.next().unwrap();
        let b = family.next().unwrap();
        let c = family.next().unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        for m in [a, b, c] {
            let mut s = m.clone();
            s.sort_unstable();
            assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
        }
    }

    #[test]
    fn family_is_infinite_and_seeded() {
        let family = WorstCaseFamily::new(8, 3, 16, 48, 7).unwrap();
        assert_eq!(family.take(10).count(), 10);
        let a: Vec<_> = WorstCaseFamily::new(8, 3, 16, 48, 7).unwrap().take(3).collect();
        let b: Vec<_> = WorstCaseFamily::new(8, 3, 16, 48, 7).unwrap().take(3).collect();
        assert_eq!(a, b, "same seed, same members");
    }

    #[test]
    fn invalid_length_rejected() {
        let err = WorstCaseFamily::new(8, 3, 16, 50, 0).unwrap_err();
        assert!(matches!(err, WcmsError::InvalidLength { n: 50, .. }), "{err}");
    }
}
