//! A Karsin-style *conflict-heavy* heuristic baseline (§II-C).
//!
//! Karsin et al. (ICS 2018) hand-crafted inputs causing "a large number"
//! of bank conflicts for two specific parameter configurations, without a
//! worst-case guarantee. This module provides a comparable heuristic:
//! give every thread the same split `(s, E−s)` with a power-of-two `s`,
//! so each thread's `A` chunk starts at a multiple of `s` — the warp's
//! first `s` scan steps land on only `w/gcd(w, s)` banks, a
//! `gcd(w, s)`-way conflict. The remaining `E−s` steps (odd stride) are
//! conflict-light, so the heuristic reaches roughly
//! `β₂ ≈ (s·gcd(w,s) + (E−s))/E` — markedly worse than random, but
//! provably short of the paper's construction: exactly the gap the paper
//! closes.

use crate::assignment::{ScanFirst, ThreadAssign, WarpAssignment};

/// Build the heuristic conflict-heavy warp assignment: every thread takes
/// `stride` elements from `A` then `E − stride` from `B`. Use a
/// power-of-two `stride` for maximal collisions (`gcd(w, stride)`-way).
/// The `R` warps use the swapped assignment, balancing block shares.
///
/// # Panics
///
/// Panics if `stride` is 0 or ≥ `E`.
#[must_use]
pub fn conflict_heavy_warp(w: usize, e: usize, stride: usize) -> WarpAssignment {
    assert!(stride >= 1 && stride < e, "stride must be in [1, E)");
    let threads =
        (0..w).map(|_| ThreadAssign { a: stride, b: e - stride, first: ScanFirst::A }).collect();
    WarpAssignment { w, e, window_start: 0, threads }
}

/// The default stride for a conflict-heavy input: the largest power of
/// two ≤ min(E−1, w/4) — big enough to collide, small enough to leave a
/// valid split.
#[must_use]
pub fn default_stride(w: usize, e: usize) -> usize {
    let cap = (e - 1).min(w / 4).max(1);
    let mut s = 1usize;
    while s * 2 <= cap {
        s *= 2;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::numtheory::gcd;
    use crate::sorted_case::sorted_warp;
    use crate::{construct, theorem_aligned_count};

    #[test]
    fn heavier_than_sorted_lighter_than_construction() {
        for e in [7usize, 15, 17] {
            let w = 32;
            let s = default_stride(w, e);
            let sorted = evaluate(&sorted_warp(w, e)).unwrap().cycles();
            let heavy = evaluate(&conflict_heavy_warp(w, e, s)).unwrap().cycles();
            let worst = evaluate(&construct(w, e).unwrap()).unwrap().cycles();
            assert!(heavy > sorted, "E={e}: heavy {heavy} <= sorted {sorted}");
            assert!(worst > heavy, "E={e}: construction {worst} <= heavy {heavy}");
            assert!(worst >= theorem_aligned_count(w, e).unwrap(), "E={e}");
        }
    }

    /// The stride mechanism: the first `stride` steps collide
    /// `gcd(w, stride)`-ways.
    #[test]
    fn stride_steps_collide_gcd_ways() {
        let (w, e, s) = (32usize, 15usize, 8usize);
        let ev = evaluate(&conflict_heavy_warp(w, e, s)).unwrap();
        let expected = gcd(w as u64, s as u64) as usize;
        for (j, &d) in ev.degrees.iter().take(s).enumerate() {
            assert_eq!(d, expected, "step {j}");
        }
        // The B phase is conflict-light (odd stride).
        assert!(ev.degrees[s..].iter().all(|&d| d <= 2), "{:?}", ev.degrees);
    }

    #[test]
    fn default_stride_is_sane() {
        assert_eq!(default_stride(32, 15), 8);
        assert_eq!(default_stride(32, 3), 2);
        assert_eq!(default_stride(32, 31), 8);
        assert_eq!(default_stride(16, 5), 4);
        assert_eq!(default_stride(8, 3), 2);
    }

    #[test]
    fn valid_warp_structure() {
        for s in [1usize, 2, 4, 8] {
            let asg = conflict_heavy_warp(32, 15, s);
            asg.validate().unwrap();
            assert_eq!(asg.share_a(), 32 * s);
            assert_eq!(asg.share_b(), 32 * (15 - s));
            // Swapped warps balance a block.
            assert_eq!(asg.share_a() + asg.swapped().share_a(), 32 * 15);
        }
    }

    #[test]
    #[should_panic(expected = "stride must be")]
    fn rejects_stride_e() {
        let _ = conflict_heavy_warp(32, 15, 15);
    }
}
