//! The three alignment strategies of Lemma 2, as explicit composable
//! steps: **front-to-back**, **back-to-front**, and **outside-in**.
//!
//! Lemma 2 is stated over a *state*: how many elements of each list sit
//! before (`α↑`, `β↑`) and after (`α↓`, `β↓`) the `E` consecutive banks,
//! with `m` full columns of each list remaining. Each strategy aligns one
//! column of each list per application and recurses on `m − 1`:
//!
//! * *front-to-back* consumes the leading misalignment of both lists with
//!   filler threads, then takes each list's first full column;
//! * *back-to-front* is the mirror image on the trailing misalignment;
//! * *outside-in* mixes one front column of one list with one back column
//!   of the other.
//!
//! [`construct_small_e`](crate::small_e::construct_small_e) executes the
//! same invariants as one fused greedy loop; this module exposes the
//! strategies individually so each of Lemma 2's case conditions can be
//! tested in isolation, and provides [`AlignmentState`] to drive them.

use crate::assignment::{ScanFirst, ThreadAssign};

/// The Lemma 2 state for one list: elements consumed so far (`pos`) and
/// the list's total length (whole columns of width `w`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListState {
    /// Elements consumed from the front.
    pub pos: usize,
    /// Total list length (a multiple of `w`).
    pub len: usize,
}

impl ListState {
    /// Leading misalignment `α↑`/`β↑`: padding elements before the next
    /// window column (0 when sitting exactly on a column start).
    #[must_use]
    pub fn leading(&self, w: usize) -> usize {
        let r = self.pos % w;
        if r == 0 {
            0
        } else {
            (w - r).min(self.len - self.pos)
        }
    }

    /// Elements remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }
}

/// Mutable alignment state over both lists of a warp (small-`E` layout:
/// window = banks `[0, E)`, padding = banks `[E, w)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentState {
    /// Warp width / bank count.
    pub w: usize,
    /// Elements per thread.
    pub e: usize,
    /// The `A` list.
    pub a: ListState,
    /// The `B` list.
    pub b: ListState,
    /// Threads emitted so far.
    pub threads: Vec<ThreadAssign>,
}

impl AlignmentState {
    /// Fresh state for lists of `cols_a`/`cols_b` full columns.
    #[must_use]
    pub fn new(w: usize, e: usize, cols_a: usize, cols_b: usize) -> Self {
        Self {
            w,
            e,
            a: ListState { pos: 0, len: cols_a * w },
            b: ListState { pos: 0, len: cols_b * w },
            threads: Vec::new(),
        }
    }

    /// Lemma 2's precondition at the front: `α↑ + β↑ ≥ E` — enough
    /// combined padding for a filler thread (trivially true when either
    /// list sits on a column start with `w − E ≥ E` padding upcoming).
    #[must_use]
    pub fn front_precondition(&self) -> bool {
        let (la, lb) = (self.a.leading(self.w), self.b.leading(self.w));
        la + lb >= self.e || la == 0 || lb == 0
    }

    /// Emit filler threads consuming exactly the leading padding of both
    /// lists (smaller side first), until one list sits on a column start.
    /// Returns the number of filler threads emitted.
    ///
    /// # Panics
    ///
    /// Panics if the padding cannot be packed into whole `E`-element
    /// threads without touching a window column — i.e. the Lemma 2
    /// invariant is violated.
    pub fn consume_leading(&mut self) -> usize {
        let mut emitted = 0;
        while self.a.leading(self.w) != 0 && self.b.leading(self.w) != 0 {
            let (la, lb) = (self.a.leading(self.w), self.b.leading(self.w));
            assert!(la + lb >= self.e, "Lemma 2 invariant: alpha+beta >= E");
            let a_first = la <= lb;
            let mut need = self.e;
            let (ta, tb) = if a_first {
                let ta = need.min(la);
                need -= ta;
                let tb = need.min(lb);
                need -= tb;
                (ta, tb)
            } else {
                let tb = need.min(lb);
                need -= tb;
                let ta = need.min(la);
                need -= ta;
                (ta, tb)
            };
            assert_eq!(need, 0, "filler thread could not be filled from padding");
            self.a.pos += ta;
            self.b.pos += tb;
            self.threads.push(ThreadAssign {
                a: ta,
                b: tb,
                first: if a_first { ScanFirst::A } else { ScanFirst::B },
            });
            emitted += 1;
        }
        emitted
    }

    /// *Front-to-back* step: clear leading padding, then align the first
    /// available column (preferring the list already at a column start).
    /// Returns `true` if a column was aligned.
    pub fn front_to_back(&mut self) -> bool {
        self.consume_leading();
        let take_a = self.a.leading(self.w) == 0 && self.a.remaining() >= self.e;
        let take_b = self.b.leading(self.w) == 0 && self.b.remaining() >= self.e;
        if take_a {
            self.a.pos += self.e;
            self.threads.push(ThreadAssign { a: self.e, b: 0, first: ScanFirst::A });
            true
        } else if take_b {
            self.b.pos += self.e;
            self.threads.push(ThreadAssign { a: 0, b: self.e, first: ScanFirst::B });
            true
        } else {
            false
        }
    }

    /// Drive *front-to-back* to completion: align as many columns as the
    /// lists hold, then mop up trailing padding with fillers. Returns the
    /// number of aligned columns.
    pub fn run_front_to_back(&mut self) -> usize {
        let mut aligned = 0;
        while self.front_to_back() {
            aligned += 1;
        }
        // Trailing padding (if any list still has elements, they are all
        // padding of consumed columns' tails).
        while self.a.remaining() + self.b.remaining() > 0 {
            let need = self.e;
            let ta = need.min(self.a.remaining());
            let tb = (need - ta).min(self.b.remaining());
            assert_eq!(ta + tb, need, "trailing padding must fill whole threads");
            self.a.pos += ta;
            self.b.pos += tb;
            self.threads.push(ThreadAssign { a: ta, b: tb, first: ScanFirst::A });
        }
        aligned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::WarpAssignment;
    use crate::evaluate::evaluate;

    #[test]
    fn leading_misalignment_arithmetic() {
        let s = ListState { pos: 0, len: 32 };
        assert_eq!(s.leading(16), 0);
        let s = ListState { pos: 7, len: 32 };
        assert_eq!(s.leading(16), 9);
        let s = ListState { pos: 16, len: 32 };
        assert_eq!(s.leading(16), 0);
        // Tail-clamped.
        let s = ListState { pos: 30, len: 32 };
        assert_eq!(s.leading(16), 2);
    }

    #[test]
    fn front_to_back_aligns_all_columns_w16_e7() {
        // The Theorem 3 shares: (E+1)/2 = 4 columns of A, 3 of B.
        let mut st = AlignmentState::new(16, 7, 4, 3);
        let aligned = st.run_front_to_back();
        assert_eq!(aligned, 7, "all E columns must align");
        assert_eq!(st.threads.len(), 16, "exactly w threads");
        let asg = WarpAssignment { w: 16, e: 7, window_start: 0, threads: st.threads };
        asg.validate_paper_shares().unwrap();
        assert_eq!(evaluate(&asg).unwrap().aligned, 49, "E² aligned");
    }

    #[test]
    fn front_to_back_matches_greedy_for_all_small_e() {
        for w in [8usize, 16, 32, 64] {
            for e in crate::small_e::small_e_values(w) {
                let mut st = AlignmentState::new(w, e, e.div_ceil(2), (e - 1) / 2);
                let aligned = st.run_front_to_back();
                assert_eq!(aligned, e, "w={w} E={e}");
                assert_eq!(st.threads.len(), w, "w={w} E={e}");
                let asg = WarpAssignment { w, e, window_start: 0, threads: st.threads };
                assert_eq!(evaluate(&asg).unwrap().aligned, e * e, "w={w} E={e}");
            }
        }
    }

    #[test]
    fn precondition_detects_both_lists_on_boundary() {
        let st = AlignmentState::new(16, 7, 2, 1);
        assert!(st.front_precondition());
    }

    #[test]
    fn consume_leading_stops_on_column_start() {
        let mut st = AlignmentState::new(16, 7, 4, 3);
        assert!(st.front_to_back()); // aligns A col 0; A now mid-padding
        assert!(st.front_to_back()); // aligns B col 0 (B still at start)
                                     // Now both mid-padding: fillers run until one hits a boundary.
        st.consume_leading();
        assert!(st.a.leading(16) == 0 || st.b.leading(16) == 0);
    }
}
