//! The "large" `E` construction (§III-B, Theorem 9): for odd
//! `w/2 < E < w`, align `½(E² + E + 2Er − r² − r)` elements, where
//! `r = w − E`.
//!
//! Elements are aligned to the *last* `E` banks (`s = r`), so each column
//! of a list is `r` padding banks followed by `E` window banks. The tuple
//! sequence `T` ([`crate::sequence::t_sequence`]) assigns each thread its
//! `(a, b)` share: full-column `(E, 0)` / `(0, E)` tuples land exactly on
//! window starts (perfectly aligned columns, `r + 1` of them), while the
//! `S`-pairs burn padding in chunks that sum to `r` — except the
//! `E − r − 1` places where consecutive sums reach `w` and part of a
//! column is unavoidably misaligned (Lemma 8).

use crate::assignment::{ScanFirst, ThreadAssign, WarpAssignment};
use crate::scan_order::optimize_scan_order;
use crate::sequence::t_sequence;

/// Is `(w, E)` a valid "large" configuration? (`w` a power of two ≥ 8,
/// odd `E` with `w/2 < E < w`.)
#[must_use]
pub fn is_large_e(w: usize, e: usize) -> bool {
    w.is_power_of_two() && w >= 8 && e % 2 == 1 && e > w / 2 && e < w
}

/// Build the Theorem 9 worst-case warp assignment for a warp of the `L`
/// set. Use [`WarpAssignment::swapped`] for the `R` set.
///
/// # Panics
///
/// Panics if `(w, E)` is not a valid large configuration
/// (see [`is_large_e`]).
#[must_use]
pub fn construct_large_e(w: usize, e: usize) -> WarpAssignment {
    assert!(is_large_e(w, e), "large-E construction needs odd w/2 < E < w (got w={w}, E={e})");
    let r = w - e;
    let threads: Vec<ThreadAssign> = t_sequence(e, r)
        .into_iter()
        .map(|(a, b)| ThreadAssign { a, b, first: ScanFirst::A })
        .collect();
    debug_assert_eq!(threads.len(), w);
    let mut asg = WarpAssignment { w, e, window_start: r, threads };
    optimize_scan_order(&mut asg);
    asg
}

/// All valid large-`E` values for warp width `w`, in increasing order.
#[must_use]
pub fn large_e_values(w: usize) -> Vec<usize> {
    (w / 2 + 1..w).step_by(2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use crate::theorem_aligned_count;

    /// Theorem 9: the construction aligns exactly
    /// `½(E² + E + 2Er − r² − r)` elements (measured empirically to be an
    /// equality for every configuration up to w = 128), within the `E²`
    /// window capacity.
    #[test]
    fn theorem9_all_large_e_up_to_w128() {
        for w in [8usize, 16, 32, 64, 128] {
            for e in large_e_values(w) {
                let asg = construct_large_e(w, e);
                asg.validate_paper_shares().unwrap_or_else(|err| panic!("w={w} E={e}: {err}"));
                let ev = evaluate(&asg).unwrap();
                let bound = theorem_aligned_count(w, e).unwrap();
                assert_eq!(ev.aligned, bound, "aligned count w={w} E={e}");
                assert!(ev.aligned <= e * e, "w={w} E={e}: aligned beyond window capacity");
                // Θ(E²) loss of parallelism: at least bound cycles.
                assert!(ev.cycles() >= bound, "w={w} E={e}");
            }
        }
    }

    /// The paper's Fig. 3 right example: w = 16, E = 9 (r = 7) —
    /// ½(81 + 9 + 126 − 49 − 7) = 80 aligned elements.
    #[test]
    fn fig3_large_w16_e9() {
        assert_eq!(theorem_aligned_count(16, 9).unwrap(), 80);
        let ev = evaluate(&construct_large_e(16, 9)).unwrap();
        assert!(ev.aligned >= 80, "aligned {}", ev.aligned);
    }

    /// The r + 1 full-column threads are perfectly placed: each
    /// single-list thread starts exactly at a window boundary.
    #[test]
    fn full_column_threads_start_on_window() {
        for (w, e) in [(32usize, 17usize), (32, 31), (64, 33), (16, 9)] {
            let asg = construct_large_e(w, e);
            let r = w - e;
            let offsets = asg.thread_offsets();
            let mut full_cols = 0usize;
            for (t, (pa, pb)) in asg.threads.iter().zip(offsets) {
                if t.a == e && t.b == 0 {
                    assert_eq!(pa % w, r, "w={w} E={e}: A column start");
                    full_cols += 1;
                } else if t.b == e && t.a == 0 {
                    assert_eq!(pb % w, r, "w={w} E={e}: B column start");
                    full_cols += 1;
                }
            }
            assert_eq!(full_cols, r + 1, "w={w} E={e}");
        }
    }

    #[test]
    fn swapped_warp_same_alignment() {
        let asg = construct_large_e(32, 19);
        assert_eq!(evaluate(&asg).unwrap().aligned, evaluate(&asg.swapped()).unwrap().aligned);
    }

    #[test]
    #[should_panic(expected = "large-E construction")]
    fn rejects_small_e() {
        let _ = construct_large_e(32, 7);
    }

    #[test]
    fn is_large_e_boundaries() {
        assert!(is_large_e(32, 17));
        assert!(is_large_e(32, 31));
        assert!(!is_large_e(32, 15));
        assert!(!is_large_e(32, 33));
        assert!(!is_large_e(32, 18));
    }
}
