//! Monte-Carlo estimation of the *expected* merge-stage conflict degree
//! on random inputs — the empirical side of the paper's closing open
//! problem ("can we analyze the expected number of bank conflicts for a
//! given algorithm, for a specific input distribution?").
//!
//! For a uniformly random interleaving of the warp's two lists (the
//! distribution a random input induces at a merge round), we sample warp
//! assignments, evaluate them exactly on the DMM, and report the mean
//! conflict degree with its spread. This is the quantity Karsin et al.
//! measured as `β₂ ≈ 2.2` and the baseline the worst-case construction
//! is compared against.

use wcms_dmm::stats::Summary;
use wcms_error::WcmsError;

use crate::assignment::{ScanFirst, ThreadAssign, WarpAssignment};
use crate::evaluate::evaluate;

/// One sampled random-merge statistic set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedConflicts {
    /// Mean per-step degree over sampled warps (`β₂`-like).
    pub beta2: Summary,
    /// Mean aligned-element count over sampled warps.
    pub aligned: Summary,
    /// The worst degree observed in any sampled step.
    pub max_degree: usize,
}

/// A deterministic SplitMix64 (keeps `rand` out of this crate).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Sample a warp assignment induced by a uniformly random interleaving
/// of `|A| = (E+1)/2·w` and `|B| = (E−1)/2·w` elements: walk the merged
/// sequence drawing A/B with hypergeometric probabilities, cutting it
/// into `E`-element threads.
#[must_use]
pub fn random_interleaving_assignment(w: usize, e: usize, seed: u64) -> WarpAssignment {
    assert!(e % 2 == 1, "paper shares need odd E");
    let mut rng = SplitMix(seed);
    let mut rem_a = e.div_ceil(2) * w;
    let mut rem_b = (e - 1) / 2 * w;
    let mut threads = Vec::with_capacity(w);
    for _ in 0..w {
        let mut a = 0usize;
        let mut b = 0usize;
        let mut first: Option<ScanFirst> = None;
        for _ in 0..e {
            let total = (rem_a + rem_b) as u64;
            let take_a = rng.below(total) < rem_a as u64;
            if take_a {
                a += 1;
                rem_a -= 1;
                first.get_or_insert(ScanFirst::A);
            } else {
                b += 1;
                rem_b -= 1;
                first.get_or_insert(ScanFirst::B);
            }
        }
        // E >= 1 here (the inner loop ran at least once when e > 0); fall
        // back to A for the degenerate e = 0 case instead of panicking.
        // A random interleaving is not two clean chunks; the evaluator's
        // chunked model scans the first-drawn list first, which matches
        // the dominant access order and keeps the estimate comparable.
        threads.push(ThreadAssign { a, b, first: first.unwrap_or(ScanFirst::A) });
    }
    debug_assert_eq!(rem_a + rem_b, 0);
    WarpAssignment { w, e, window_start: 0, threads }
}

/// Estimate expected conflicts over `samples` random interleavings.
///
/// # Errors
///
/// Returns [`WcmsError::ZeroParam`] if `samples == 0` and propagates
/// evaluation failures on malformed sampled assignments.
pub fn estimate_expected_conflicts(
    w: usize,
    e: usize,
    samples: usize,
    seed: u64,
) -> Result<ExpectedConflicts, WcmsError> {
    if samples == 0 {
        return Err(WcmsError::ZeroParam { name: "samples" });
    }
    let mut betas = Vec::with_capacity(samples);
    let mut aligneds = Vec::with_capacity(samples);
    let mut max_degree = 0usize;
    for s in 0..samples {
        let asg = random_interleaving_assignment(
            w,
            e,
            seed ^ (s as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let ev = evaluate(&asg)?;
        betas.push(ev.totals.beta().unwrap_or(1.0));
        aligneds.push(ev.aligned as f64);
        max_degree = max_degree.max(ev.totals.max_degree);
    }
    let zero = || WcmsError::ZeroParam { name: "samples" };
    Ok(ExpectedConflicts {
        beta2: Summary::of(&betas).ok_or_else(zero)?,
        aligned: Summary::of(&aligneds).ok_or_else(zero)?,
        max_degree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{construct, evaluate};

    #[test]
    fn sampled_assignments_are_valid() {
        for seed in 0..20u64 {
            let asg = random_interleaving_assignment(32, 15, seed);
            asg.validate_paper_shares().unwrap();
        }
    }

    #[test]
    fn expected_beta_is_small_and_stable() {
        let est = estimate_expected_conflicts(32, 15, 200, 42).unwrap();
        // Karsin et al. measured β₂ ≈ 2.2 on random inputs; the DMM
        // estimate lands in the same low band, far below E.
        assert!(est.beta2.mean > 1.0, "some conflicts occur: {}", est.beta2.mean);
        assert!(est.beta2.mean < 6.0, "random stays far from E: {}", est.beta2.mean);
        assert!(est.max_degree < 15, "random never reaches the worst case");
    }

    #[test]
    fn worst_case_dominates_every_sample() {
        let worst = evaluate(&construct(32, 15).unwrap()).unwrap().totals.beta().unwrap();
        let est = estimate_expected_conflicts(32, 15, 100, 7).unwrap();
        assert!(worst >= est.beta2.max, "construction must dominate sampling");
        assert!((worst - 15.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let a = estimate_expected_conflicts(16, 7, 50, 1).unwrap();
        let b = estimate_expected_conflicts(16, 7, 50, 1).unwrap();
        assert_eq!(a, b);
        let c = estimate_expected_conflicts(16, 7, 50, 2).unwrap();
        assert_ne!(a.beta2.mean.to_bits(), c.beta2.mean.to_bits());
    }

    #[test]
    fn zero_samples_rejected() {
        let err = estimate_expected_conflicts(16, 7, 0, 0).unwrap_err();
        assert!(matches!(err, WcmsError::ZeroParam { name: "samples" }), "{err}");
    }
}
