//! Per-thread scan-order selection.
//!
//! A thread's `(a, b)` share fixes *where* its elements sit (prefix sums
//! of the warp's shares) but not which chunk it scans first. The paper's
//! constructions ensure that, for every thread, the elements inside the
//! `E` consecutive banks come from a single list, "which makes it clear
//! which list to scan first" (§III). [`optimize_scan_order`] implements
//! that rule constructively: for each thread it picks the order that
//! aligns more of its elements (ties keep `A` first). Since alignment of
//! a thread depends only on its own scan order, the per-thread greedy
//! choice is globally optimal for a fixed set of shares.

use crate::assignment::{ScanFirst, WarpAssignment};

/// Aligned-element count of a single thread under a given scan order.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's per-thread state
fn thread_aligned(
    w: usize,
    window_start: usize,
    b_base: usize,
    pa: usize,
    pb: usize,
    a: usize,
    b: usize,
    first: ScanFirst,
) -> usize {
    let mut aligned = 0usize;
    let mut j = 0usize;
    let mut count_chunk = |base: usize, start: usize, len: usize, j: &mut usize| {
        for k in 0..len {
            let bank = (base + start + k) % w;
            if bank == (window_start + *j) % w {
                aligned += 1;
            }
            *j += 1;
        }
    };
    match first {
        ScanFirst::A => {
            count_chunk(0, pa, a, &mut j);
            count_chunk(b_base, pb, b, &mut j);
        }
        ScanFirst::B => {
            count_chunk(b_base, pb, b, &mut j);
            count_chunk(0, pa, a, &mut j);
        }
    }
    aligned
}

/// Set every thread's scan order to the alignment-maximizing choice.
/// Returns the resulting total aligned count.
pub fn optimize_scan_order(asg: &mut WarpAssignment) -> usize {
    let b_base = asg.share_a().div_ceil(asg.w) * asg.w;
    let offsets = asg.thread_offsets();
    let mut total = 0usize;
    for (t, (pa, pb)) in asg.threads.iter_mut().zip(offsets) {
        let with_a =
            thread_aligned(asg.w, asg.window_start, b_base, pa, pb, t.a, t.b, ScanFirst::A);
        let with_b =
            thread_aligned(asg.w, asg.window_start, b_base, pa, pb, t.a, t.b, ScanFirst::B);
        if with_b > with_a {
            t.first = ScanFirst::B;
            total += with_b;
        } else {
            t.first = ScanFirst::A;
            total += with_a;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::ThreadAssign;
    use crate::evaluate::evaluate;

    #[test]
    fn optimizer_total_matches_evaluator() {
        // Arbitrary shares; whatever the optimizer reports must equal the
        // evaluator's aligned count.
        let mut asg = WarpAssignment {
            w: 8,
            e: 5,
            window_start: 0,
            threads: vec![
                ThreadAssign { a: 5, b: 0, first: ScanFirst::A },
                ThreadAssign { a: 3, b: 2, first: ScanFirst::A },
                ThreadAssign { a: 0, b: 5, first: ScanFirst::A },
                ThreadAssign { a: 2, b: 3, first: ScanFirst::A },
                ThreadAssign { a: 5, b: 0, first: ScanFirst::A },
                ThreadAssign { a: 1, b: 4, first: ScanFirst::A },
                ThreadAssign { a: 4, b: 1, first: ScanFirst::A },
                ThreadAssign { a: 4, b: 1, first: ScanFirst::A },
            ],
        };
        let total = optimize_scan_order(&mut asg);
        assert_eq!(total, evaluate(&asg).unwrap().aligned);
    }

    #[test]
    fn optimizer_never_hurts() {
        let mut asg = WarpAssignment {
            w: 4,
            e: 3,
            window_start: 0,
            threads: vec![
                ThreadAssign { a: 3, b: 0, first: ScanFirst::B },
                ThreadAssign { a: 0, b: 3, first: ScanFirst::A },
                ThreadAssign { a: 2, b: 1, first: ScanFirst::B },
                ThreadAssign { a: 1, b: 2, first: ScanFirst::A },
            ],
        };
        let before = evaluate(&asg).unwrap().aligned;
        let after = optimize_scan_order(&mut asg);
        assert!(after >= before);
        assert_eq!(after, evaluate(&asg).unwrap().aligned);
    }
}
