//! Golden tests: the rendered access matrices of the paper's Figure 3
//! match the published depictions on every *window* bank — the rows that
//! define the construction. The paper marks the remaining (gray/filler)
//! elements as free to "perform an arbitrary scan", so filler banks are
//! checked structurally (all classified filler), not symbol-for-symbol.

use wcms_core::construct;
use wcms_core::evaluate::{access_matrix, evaluate};

/// Extract the thread labels of one bank row, in address order.
fn row_threads(render: &str, bank: usize) -> Vec<usize> {
    let line = render.lines().nth(bank).expect("bank row");
    let (_, cells) = line.split_once(':').expect("bank prefix");
    cells
        .split_whitespace()
        .map(|c| c.trim_end_matches(['=', '!', '.']).parse().expect("thread id"))
        .collect()
}

#[test]
fn fig3_left_w16_e7_window_rows_match_paper() {
    let asg = construct(16, 7).unwrap();
    let render = access_matrix(&asg).render();
    // Paper Fig. 3 left, banks 0–6 (the E window banks; columns are A's
    // four full columns followed by B's three).
    let expected: [&[usize]; 7] = [
        &[0, 4, 8, 13, 1, 6, 11],
        &[0, 4, 8, 13, 1, 6, 11],
        &[0, 4, 8, 13, 1, 6, 11],
        &[0, 4, 8, 13, 1, 6, 11],
        &[0, 4, 8, 13, 1, 6, 11],
        &[0, 4, 8, 13, 1, 6, 11],
        &[0, 4, 8, 13, 1, 6, 11],
    ];
    for (bank, want) in expected.iter().enumerate() {
        assert_eq!(&row_threads(&render, bank), want, "bank {bank}");
    }
    // Every marker in the window rows is `=` (aligned).
    for line in render.lines().take(7) {
        assert!(!line.contains('!') && !line.contains('.'), "{line}");
    }
    assert_eq!(evaluate(&asg).unwrap().aligned, 49);
}

#[test]
fn fig3_right_w16_e9_window_rows_match_paper() {
    let asg = construct(16, 9).unwrap();
    let render = access_matrix(&asg).render();
    // Paper Fig. 3 right, banks 7–15 (the window is the *last* 9 banks).
    let expected: [&[usize]; 9] = [
        &[1, 5, 6, 12, 14, 3, 7, 10, 15],
        &[1, 5, 8, 12, 14, 3, 7, 10, 15],
        &[1, 5, 8, 12, 14, 3, 7, 10, 15],
        &[1, 5, 8, 12, 14, 3, 7, 10, 15],
        &[1, 5, 8, 12, 14, 3, 7, 10, 15],
        &[1, 5, 8, 12, 14, 3, 7, 10, 15],
        &[1, 5, 8, 12, 14, 3, 7, 10, 15],
        &[1, 5, 8, 12, 14, 3, 7, 10, 15],
        &[1, 5, 8, 12, 14, 3, 7, 10, 15],
    ];
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(&row_threads(&render, 7 + i), want, "bank {}", 7 + i);
    }
    assert_eq!(evaluate(&asg).unwrap().aligned, 80);
}

#[test]
fn fig3_right_padding_rows_match_paper() {
    // The first padding rows of the right subfigure are also published
    // (banks 0–6 hold the S-pairs' padding chunks); check bank 0, which
    // the paper prints as A: 0 2 6 9 13, B: 0 4 8 11.
    let render = access_matrix(&construct(16, 9).unwrap()).render();
    assert_eq!(row_threads(&render, 0), vec![0, 2, 6, 9, 13, 0, 4, 8, 11]);
}
