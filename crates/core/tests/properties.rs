//! Property-based tests of the worst-case constructions and the input
//! builder.

use proptest::prelude::*;
use wcms_core::evaluate::{address_sequences, evaluate};
use wcms_core::large_e::large_e_values;
use wcms_core::numtheory::{gcd, mod_inverse};
use wcms_core::small_e::small_e_values;
use wcms_core::{construct, theorem_aligned_count, WorstCaseBuilder};

fn arb_config() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![Just(8usize), Just(16), Just(32), Just(64)].prop_flat_map(|w| {
        let es: Vec<usize> = small_e_values(w).into_iter().chain(large_e_values(w)).collect();
        (Just(w), proptest::sample::select(es))
    })
}

proptest! {
    /// Structure of every construction: w threads, paper shares, and
    /// aligned count exactly the theorem value, within window capacity.
    #[test]
    fn construction_structure((w, e) in arb_config()) {
        let asg = construct(w, e).unwrap();
        prop_assert!(asg.validate_paper_shares().is_ok());
        let ev = evaluate(&asg).unwrap();
        prop_assert_eq!(ev.aligned, theorem_aligned_count(w, e).unwrap());
        prop_assert!(ev.aligned <= e * e);
        // Each step serializes at least ⌈aligned/E⌉-ways on the window bank.
        prop_assert!(ev.totals.max_degree >= ev.aligned / e);
    }

    /// Address sequences are exactly the per-thread scans: each thread
    /// touches E addresses, chunk-contiguous per list, disjoint across
    /// threads.
    #[test]
    fn address_sequences_partition_the_window((w, e) in arb_config()) {
        let asg = construct(w, e).unwrap();
        let seqs = address_sequences(&asg);
        prop_assert_eq!(seqs.len(), w);
        let mut all: Vec<usize> = seqs.iter().flatten().copied().collect();
        prop_assert_eq!(all.len(), w * e);
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), w * e, "threads must touch disjoint addresses");
    }

    /// The builder always emits a permutation, for any valid geometry.
    #[test]
    fn builder_emits_permutations(
        (w, e) in arb_config(),
        warps in 2usize..5,
        doublings in 0u32..4,
        seed in proptest::option::of(0u64..1000),
    ) {
        let b = (warps.next_power_of_two().max(2)) * w;
        let builder = WorstCaseBuilder::new(w, e, b).unwrap();
        let n = builder.block_elems() << doublings;
        let input = match seed {
            None => builder.build(n).unwrap(),
            Some(s) => builder.build_family_member(n, s).unwrap(),
        };
        prop_assert_eq!(input.len(), n);
        let mut sorted = input;
        sorted.sort_unstable();
        prop_assert!(sorted.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    /// build_partial interpolates: k = 0 is sorted, k = rounds equals the
    /// sorted-base build, and every k yields a permutation.
    #[test]
    fn partial_builds_are_permutations((w, e) in arb_config(), k in 0usize..5) {
        let b = 2 * w;
        let builder = WorstCaseBuilder::new(w, e, b).unwrap();
        let n = builder.block_elems() * 8;
        let input = builder.build_partial(n, k).unwrap();
        let mut sorted = input.clone();
        sorted.sort_unstable();
        prop_assert!(sorted.iter().enumerate().all(|(i, &v)| v == i as u32));
        if k == 0 {
            prop_assert!(input.windows(2).all(|w| w[0] < w[1]));
        }
        if k >= 3 {
            prop_assert_eq!(input, builder.build_sorted_base(n).unwrap());
        }
    }

    /// Number theory: modular inverses invert, and Lemma 4's co-primality
    /// holds for every large-E configuration.
    #[test]
    fn numtheory_roundtrips(a in 1u64..500, m in 2u64..500) {
        match mod_inverse(a, m) {
            Some(inv) => {
                prop_assert_eq!(gcd(a, m), 1);
                prop_assert_eq!((a % m) * inv % m, 1);
            }
            None => prop_assert!(gcd(a, m) != 1),
        }
    }
}

proptest! {
    /// No-panic surface: every (w, E, b) combination — co-prime or not,
    /// zero or not, absurd or not — yields a typed verdict from the
    /// builder, never a panic. The error taxonomy's core guarantee.
    #[test]
    fn arbitrary_configs_never_panic(w in 0usize..96, e in 0usize..96, b in 0usize..1024) {
        if let Ok(builder) = WorstCaseBuilder::new(w, e, b) {
            // A config the builder accepts must actually build.
            let n = builder.block_elems() * 2;
            let built = builder.build(n);
            prop_assert!(built.is_ok(), "accepted config (w={w}, E={e}, b={b}) failed: {built:?}");
        }
        // Err is equally fine — the property is the absence of panics.
        let _ = construct(w, e);
        let _ = theorem_aligned_count(w, e);
    }

    /// Invalid lengths get a typed error from an otherwise valid builder.
    #[test]
    fn invalid_lengths_are_typed_errors(extra in 1usize..47) {
        let builder = WorstCaseBuilder::new(8, 3, 16).unwrap();
        let n = builder.block_elems() * 2 + extra; // never bE·2^m
        prop_assert!(builder.build(n).is_err());
    }
}
