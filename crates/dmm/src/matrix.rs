//! The 2-D bank×column matrix view of DMM memory, used to render the
//! paper's Figures 1–3 style depictions (rows = banks, contiguous address
//! space laid out column-major).

use crate::BankModel;
use std::fmt::Write as _;

/// Annotation of one memory cell for rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixCell {
    /// Address not populated.
    #[default]
    Empty,
    /// Element owned (read) by a thread, with an alignment classification.
    Owned {
        /// Thread (lane) that reads this element during the merge scan.
        thread: usize,
        /// Classification mirroring the paper's figure colours.
        class: CellClass,
    },
}

/// The paper's figure colour classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellClass {
    /// Green: aligned — read in step `j` while residing in bank `s + j`.
    Aligned,
    /// Red: misaligned — inside the chosen `E` banks but read off-step.
    Misaligned,
    /// Gray: filler in the other `w − E` banks; never contributes.
    Filler,
}

/// A `w × columns` matrix of annotated cells over a [`BankModel`].
#[derive(Debug, Clone)]
pub struct BankMatrix {
    model: BankModel,
    columns: usize,
    cells: Vec<MatrixCell>, // row-major: bank * columns + column
}

impl BankMatrix {
    /// An empty matrix with `columns` columns.
    #[must_use]
    pub fn new(model: BankModel, columns: usize) -> Self {
        Self { model, columns, cells: vec![MatrixCell::Empty; model.banks() * columns] }
    }

    /// Number of columns.
    #[must_use]
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// The bank model.
    #[must_use]
    pub fn model(&self) -> BankModel {
        self.model
    }

    /// Annotate the cell holding `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` falls outside the matrix.
    pub fn set_addr(&mut self, addr: usize, cell: MatrixCell) {
        let bank = self.model.bank_of(addr);
        let col = self.model.column_of(addr);
        assert!(col < self.columns, "address {addr} beyond column {col} of {}", self.columns);
        self.cells[bank * self.columns + col] = cell;
    }

    /// Cell at `(bank, column)`.
    #[must_use]
    pub fn get(&self, bank: usize, column: usize) -> MatrixCell {
        self.cells[bank * self.columns + column]
    }

    /// Cell holding `addr`.
    #[must_use]
    pub fn get_addr(&self, addr: usize) -> MatrixCell {
        self.get(self.model.bank_of(addr), self.model.column_of(addr))
    }

    /// Count cells in a class.
    #[must_use]
    pub fn count_class(&self, class: CellClass) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, MatrixCell::Owned { class: k, .. } if *k == class))
            .count()
    }

    /// Render as ASCII in the paper's figure style: one row per bank,
    /// each populated cell showing its owning thread, with a class marker
    /// (`=` aligned, `!` misaligned, `.` filler).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .cells
            .iter()
            .filter_map(|c| match c {
                MatrixCell::Owned { thread, .. } => Some(decimal_width(*thread)),
                MatrixCell::Empty => None,
            })
            .max()
            .unwrap_or(1);
        for bank in 0..self.model.banks() {
            let _ = write!(out, "{bank:>3}: ");
            for col in 0..self.columns {
                match self.get(bank, col) {
                    MatrixCell::Empty => {
                        let _ = write!(out, " {:>w$} ", "-", w = width + 1);
                    }
                    MatrixCell::Owned { thread, class } => {
                        let mark = match class {
                            CellClass::Aligned => '=',
                            CellClass::Misaligned => '!',
                            CellClass::Filler => '.',
                        };
                        let _ = write!(out, " {thread:>width$}{mark} ");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

fn decimal_width(mut n: usize) -> usize {
    let mut w = 1;
    while n >= 10 {
        n /= 10;
        w += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut m = BankMatrix::new(BankModel::new(16), 4);
        m.set_addr(17, MatrixCell::Owned { thread: 3, class: CellClass::Aligned });
        // addr 17 → bank 1, column 1.
        assert!(matches!(m.get(1, 1), MatrixCell::Owned { thread: 3, .. }));
        assert!(matches!(m.get_addr(17), MatrixCell::Owned { thread: 3, .. }));
        assert_eq!(m.get(0, 0), MatrixCell::Empty);
    }

    #[test]
    fn class_counting() {
        let mut m = BankMatrix::new(BankModel::new(8), 2);
        m.set_addr(0, MatrixCell::Owned { thread: 0, class: CellClass::Aligned });
        m.set_addr(1, MatrixCell::Owned { thread: 0, class: CellClass::Aligned });
        m.set_addr(2, MatrixCell::Owned { thread: 1, class: CellClass::Filler });
        assert_eq!(m.count_class(CellClass::Aligned), 2);
        assert_eq!(m.count_class(CellClass::Filler), 1);
        assert_eq!(m.count_class(CellClass::Misaligned), 0);
    }

    #[test]
    fn render_contains_all_banks() {
        let mut m = BankMatrix::new(BankModel::new(4), 2);
        m.set_addr(5, MatrixCell::Owned { thread: 12, class: CellClass::Misaligned });
        let r = m.render();
        assert_eq!(r.lines().count(), 4);
        assert!(r.contains("12!"));
    }

    #[test]
    #[should_panic(expected = "beyond column")]
    fn out_of_range_addr_panics() {
        let mut m = BankMatrix::new(BankModel::new(4), 1);
        m.set_addr(4, MatrixCell::Empty);
    }

    #[test]
    fn decimal_width_boundaries() {
        assert_eq!(decimal_width(0), 1);
        assert_eq!(decimal_width(9), 1);
        assert_eq!(decimal_width(10), 2);
        assert_eq!(decimal_width(99), 2);
        assert_eq!(decimal_width(100), 3);
    }
}
