//! Allocation-free conflict accounting for precomputed access schedules.
//!
//! [`crate::ConflictCounter`] analyses an arbitrary [`crate::WarpStep`]:
//! it stages every lane's access, sorts `(bank, addr, kind)` triples and
//! scans for CREW races — exact, but `O(w log w)` per step plus the
//! staging around it. When a kernel's address schedule is already known
//! to be race-free (the analytic sort backend replays schedules whose
//! structure the lockstep simulator validates), the same metrics can be
//! accumulated in `O(active lanes)` per step with generation-stamped
//! per-bank and per-address slots: bumping one counter starts a fresh
//! step without clearing anything.
//!
//! The arithmetic is identical to [`crate::ConflictCounter`] by
//! construction — `degree` is the maximum number of *distinct* addresses
//! any bank receives, `conflicting_accesses` sums the distinct counts of
//! banks with two or more, broadcasts (repeated addresses) dedupe — and
//! the property tests below pin the two engines against each other on
//! arbitrary read steps.

use crate::conflict::{ConflictTotals, StepConflicts};
use crate::BankModel;

/// One bank's state in the current step.
#[derive(Debug, Clone, Copy, Default)]
struct BankSlot {
    /// Step stamp of the last touch; stale if it differs from the
    /// accumulator's.
    stamp: u32,
    /// Distinct addresses received in the stamped step.
    distinct: u32,
}

/// Streaming per-step conflict accumulator over physical addresses.
///
/// Drive it one warp step at a time: [`StepAccumulator::begin_step`],
/// one [`StepAccumulator::access`] per active lane, then
/// [`StepAccumulator::end_step`]. Reads and conflict-free writes share
/// the same serialization arithmetic, so one accumulator serves both;
/// CREW discipline is the *caller's* obligation (the accumulator always
/// reports zero violations) — use [`crate::ConflictCounter`] when the
/// schedule is untrusted.
///
/// ```
/// use wcms_dmm::{BankModel, StepAccumulator};
///
/// let mut acc = StepAccumulator::new(BankModel::gpu32(), 128);
/// acc.begin_step();
/// for addr in [0, 32, 64, 96] {
///     acc.access(addr); // four distinct addresses in bank 0
/// }
/// assert_eq!(acc.end_step().degree, 4);
/// assert_eq!(acc.totals().extra_cycles, 3);
/// ```
#[derive(Debug, Clone)]
pub struct StepAccumulator {
    model: BankModel,
    totals: ConflictTotals,
    /// Generation counter; a slot whose stamp differs is stale. 32 bits
    /// keep the address table at cache-friendly density; `begin_step`
    /// clears the tables on the (essentially unreachable) wrap.
    stamp: u32,
    /// Per-address stamp: deduplicates broadcast accesses within a step.
    addr_stamp: Vec<u32>,
    /// Per-bank slot: the step stamp it was last touched in and the
    /// distinct-address count it accumulated there — one vector, so each
    /// access costs one bounds check and one cache line.
    banks: Vec<BankSlot>,
    /// Maximum `bank_distinct` of the current step, folded per access so
    /// closing a step is O(1).
    step_degree: usize,
    /// Sum of `bank_distinct` over banks with two or more distinct
    /// addresses, folded per access: a bank's second address contributes
    /// both (the first retroactively becomes conflicting), every later
    /// one contributes itself.
    step_conflicting: usize,
    /// Lanes that issued a request this step (broadcasts included).
    active: usize,
}

impl StepAccumulator {
    /// New accumulator for a tile of `words` physical addresses.
    ///
    /// Addresses at or beyond `words` are still accepted (the slot table
    /// grows), so a padded physical layout only needs its nominal length
    /// here.
    #[must_use]
    pub fn new(model: BankModel, words: usize) -> Self {
        let banks = model.banks();
        Self {
            model,
            totals: ConflictTotals::default(),
            stamp: 0,
            addr_stamp: vec![0; words],
            banks: vec![BankSlot::default(); banks],
            step_degree: 0,
            step_conflicting: 0,
            active: 0,
        }
    }

    /// The bank model in use.
    #[must_use]
    pub fn model(&self) -> BankModel {
        self.model
    }

    /// Open a fresh step. Any accesses recorded before the next
    /// [`StepAccumulator::end_step`] belong to it.
    #[inline]
    pub fn begin_step(&mut self) {
        if self.stamp == u32::MAX {
            self.addr_stamp.fill(0);
            self.banks.fill(BankSlot::default());
            self.stamp = 0;
        }
        self.stamp += 1;
        self.step_degree = 0;
        self.step_conflicting = 0;
        self.active = 0;
    }

    /// One lane's request of physical address `addr` in the current step.
    #[inline]
    pub fn access(&mut self, addr: usize) {
        self.active += 1;
        if addr >= self.addr_stamp.len() {
            self.addr_stamp.resize(addr + 1, 0);
        }
        if self.addr_stamp[addr] == self.stamp {
            return; // broadcast: the address already counted this step
        }
        self.addr_stamp[addr] = self.stamp;
        self.count_distinct_in_bank(self.model.bank_of(addr));
    }

    /// Fold one distinct address landing in `bank` into the step metrics.
    #[inline]
    fn count_distinct_in_bank(&mut self, bank: usize) {
        let slot = &mut self.banks[bank];
        if slot.stamp != self.stamp {
            *slot = BankSlot { stamp: self.stamp, distinct: 0 };
        }
        slot.distinct += 1;
        let d = slot.distinct as usize;
        self.step_degree = self.step_degree.max(d);
        if d == 2 {
            self.step_conflicting += 2;
        } else if d > 2 {
            self.step_conflicting += 1;
        }
    }

    /// One lane's request of `addr` when the caller guarantees `addr` is
    /// distinct from every other address issued this step — merge-sort
    /// write staging, strided register traffic and coalesced fills all
    /// have this property by construction (their windows are disjoint).
    /// Skips the broadcast-dedupe table, which is the accumulator's only
    /// memory traffic proportional to the tile; the counted result is
    /// identical to [`StepAccumulator::access`] whenever the guarantee
    /// holds, and debug builds assert it per address.
    #[inline]
    pub fn access_distinct(&mut self, addr: usize) {
        self.active += 1;
        #[cfg(debug_assertions)]
        {
            if addr >= self.addr_stamp.len() {
                self.addr_stamp.resize(addr + 1, 0);
            }
            debug_assert_ne!(
                self.addr_stamp[addr], self.stamp,
                "access_distinct on an address repeated within the step"
            );
            self.addr_stamp[addr] = self.stamp;
        }
        self.count_distinct_in_bank(self.model.bank_of(addr));
    }

    /// Close the current step, fold it into the totals and return its
    /// metrics. An idle step (no accesses) records nothing, matching
    /// [`ConflictTotals::record`]. O(1): the per-bank fold happened
    /// access by access.
    #[inline]
    pub fn end_step(&mut self) -> StepConflicts {
        let s = StepConflicts {
            degree: self.step_degree,
            conflicting_accesses: self.step_conflicting,
            crew_violations: 0,
            active_lanes: self.active,
        };
        self.totals.record(s);
        s
    }

    /// Fold `times` further steps with metrics identical to `s` into the
    /// totals, in O(1) — `record` is linear in the step, so this equals
    /// calling it `times` more times. For callers whose schedule makes
    /// consecutive steps provably identical: a set of contiguous windows
    /// advancing by one address per step shifts every address by +1,
    /// which rotates the bank assignment bijectively (`x mod w` →
    /// `x+1 mod w`) and therefore preserves every per-bank multiplicity —
    /// degree, conflicting accesses and active lanes cannot change.
    /// (Only on an *unpadded* layout: padding displaces addresses by
    /// `addr/w`, which is not a uniform shift across lanes.)
    #[inline]
    pub fn repeat_step(&mut self, s: StepConflicts, times: usize) {
        if s.active_lanes == 0 || times == 0 {
            return;
        }
        self.totals.steps += times;
        self.totals.cycles += times * s.degree;
        self.totals.conflicting_accesses += times * s.conflicting_accesses;
        self.totals.extra_cycles += times * s.extra_cycles();
        self.totals.max_degree = self.totals.max_degree.max(s.degree);
        self.totals.crew_violations += times * s.crew_violations;
        self.totals.accesses += times * s.active_lanes;
    }

    /// Record one whole step from an address iterator (convenience).
    pub fn step<I: IntoIterator<Item = usize>>(&mut self, addrs: I) -> StepConflicts {
        self.begin_step();
        for a in addrs {
            self.access(a);
        }
        self.end_step()
    }

    /// Running totals.
    #[must_use]
    pub fn totals(&self) -> ConflictTotals {
        self.totals
    }

    /// Return the running totals and reset them (mirrors
    /// `SharedMemory::drain_totals`, so phase attribution works the same
    /// way on both backends).
    pub fn drain_totals(&mut self) -> ConflictTotals {
        let t = self.totals;
        self.totals = ConflictTotals::default();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::WarpStep;
    use crate::conflict::ConflictCounter;
    use proptest::prelude::*;

    #[test]
    fn matches_counter_on_canonical_steps() {
        let cases: &[&[usize]] = &[
            &(0..32).collect::<Vec<_>>(), // conflict-free
            &[0, 32, 64, 96],             // 4-way in bank 0
            &[5; 32],                     // broadcast
            &[0, 16, 32, 1, 17, 2],       // mixed degrees (w = 16 below)
        ];
        for w in [16usize, 32] {
            for addrs in cases {
                let mut fast = StepAccumulator::new(BankModel::new(w), 128);
                let mut slow = ConflictCounter::new(BankModel::new(w));
                let f = fast.step(addrs.iter().copied());
                let s = slow.count(&WarpStep::all_read(addrs));
                assert_eq!(f, s, "w={w} addrs={addrs:?}");
            }
        }
    }

    #[test]
    fn idle_step_records_nothing() {
        let mut acc = StepAccumulator::new(BankModel::gpu32(), 8);
        acc.begin_step();
        let s = acc.end_step();
        assert_eq!(s.degree, 0);
        assert_eq!(acc.totals(), ConflictTotals::default());
    }

    #[test]
    fn totals_drain_like_shared_memory() {
        let mut acc = StepAccumulator::new(BankModel::new(4), 32);
        acc.step([0usize, 4]);
        let t = acc.drain_totals();
        assert_eq!(t.steps, 1);
        assert_eq!(t.cycles, 2);
        assert_eq!(acc.totals(), ConflictTotals::default());
    }

    #[test]
    fn repeat_step_equals_repeated_records() {
        let addrs = [0usize, 8, 16, 3]; // two 2-way conflicts under w=8… degree 3 in bank 0
        let mut looped = StepAccumulator::new(BankModel::new(8), 32);
        for _ in 0..5 {
            looped.step(addrs.iter().copied());
        }
        let mut folded = StepAccumulator::new(BankModel::new(8), 32);
        let s = folded.step(addrs.iter().copied());
        folded.repeat_step(s, 4);
        assert_eq!(folded.totals(), looped.totals());
        // Idle steps fold to nothing, like `record`.
        folded.repeat_step(
            StepConflicts {
                degree: 0,
                conflicting_accesses: 0,
                crew_violations: 0,
                active_lanes: 0,
            },
            3,
        );
        assert_eq!(folded.totals(), looped.totals());
    }

    #[test]
    fn grows_past_nominal_words() {
        let mut acc = StepAccumulator::new(BankModel::new(8), 4);
        let s = acc.step([100usize, 108]); // both bank 4, beyond nominal len
        assert_eq!(s.degree, 2);
    }

    proptest! {
        /// The stamp engine and the sort-and-scan engine agree on every
        /// metric for arbitrary multi-step read schedules.
        #[test]
        fn agrees_with_conflict_counter(
            w in 1usize..40,
            steps in proptest::collection::vec(
                proptest::collection::vec(0usize..256, 0..40), 1..12),
        ) {
            let mut fast = StepAccumulator::new(BankModel::new(w), 256);
            let mut slow = ConflictCounter::new(BankModel::new(w));
            for addrs in &steps {
                let f = fast.step(addrs.iter().copied());
                let s = slow.count(&WarpStep::all_read(addrs));
                prop_assert_eq!(f, s);
            }
            prop_assert_eq!(fast.totals(), slow.totals());
        }
    }
}
