//! # `wcms-dmm` — the Distributed Memory Machine model
//!
//! The Distributed Memory Machine (DMM) of Mehlhorn & Vishkin (1984) is the
//! model in which Berney & Sitchinava (IPDPS 2020) analyse bank conflicts of
//! the GPU pairwise merge sort. It consists of `w` synchronous processors
//! (the lanes of a warp) and `w` memory modules (the banks of GPU shared
//! memory). Address `x` lives in bank `x mod w`, so memory can be viewed as
//! a 2-D matrix of `w` rows (banks) with contiguous addresses laid out in
//! column-major order.
//!
//! In every time step each processor may issue one memory request; a bank
//! serves one *distinct address* per step, so `m` distinct addresses landing
//! in the same bank serialize into `m` cycles — a *bank conflict*. Multiple
//! processors reading the **same** address broadcast in a single cycle (the
//! paper's footnote 1: on modern GPUs a concurrent read of one location is
//! not a contention). The model is CREW: concurrent writes to one address
//! are forbidden and reported as violations.
//!
//! This crate provides:
//!
//! * [`BankModel`] — the bank mapping and matrix view ([`matrix`]);
//! * [`access`] — per-step warp access descriptions;
//! * [`conflict`] — the conflict accounting engine and its three metrics
//!   (per-step *degree*, the paper's *conflicting accesses* count, and
//!   hardware-style *extra cycles*);
//! * [`fastcount`] — the stamp-based accumulator computing the same
//!   metrics in `O(active lanes)` per step for trusted (race-free)
//!   schedules — the engine behind the analytic sort backend;
//! * [`layout`] — the Dotsenko-style padding that defeats bank conflicts
//!   at the price of `1/w` extra shared memory;
//! * [`trace`] — optional step-by-step access traces for rendering figures;
//! * [`stats`] — small summary-statistics helpers shared by the harnesses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
pub mod conflict;
pub mod fastcount;
pub mod layout;
pub mod matrix;
pub mod stats;
pub mod trace;

pub use access::{Access, AccessKind, WarpStep};
pub use conflict::{ConflictCounter, ConflictTotals, StepConflicts};
pub use fastcount::StepAccumulator;
pub use layout::{pad_address, padded_len};
pub use matrix::{BankMatrix, CellClass, MatrixCell};
pub use trace::{StepRecord, Trace};

/// The bank mapping of a DMM / GPU shared memory: `w` banks, address `x`
/// residing in bank `x mod w`.
///
/// `w` is the warp width and bank count; on all Nvidia GPUs the paper
/// considers, `w = 32`. The model itself allows any positive `w` and the
/// paper's illustrations use `w = 16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BankModel {
    banks: usize,
}

impl BankModel {
    /// Create a bank model with `banks` memory modules.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        assert!(banks > 0, "a DMM needs at least one memory bank");
        Self { banks }
    }

    /// The standard 32-bank model of every GPU in the paper's evaluation.
    #[must_use]
    pub fn gpu32() -> Self {
        Self::new(32)
    }

    /// Number of banks `w`.
    #[must_use]
    #[inline]
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Bank holding address `addr` (`addr mod w`).
    #[must_use]
    #[inline]
    pub fn bank_of(&self, addr: usize) -> usize {
        // Hot path of every conflict engine; every real GPU has a
        // power-of-two bank count, where the modulo is a mask instead of
        // a hardware divide.
        if self.banks.is_power_of_two() {
            addr & (self.banks - 1)
        } else {
            addr % self.banks
        }
    }

    /// Column (row index within the bank) of `addr` in the matrix view.
    #[must_use]
    #[inline]
    pub fn column_of(&self, addr: usize) -> usize {
        addr / self.banks
    }

    /// The address at `(bank, column)` in the matrix view.
    #[must_use]
    #[inline]
    pub fn address_at(&self, bank: usize, column: usize) -> usize {
        column * self.banks + bank
    }

    /// True if `w` is a power of two (always the case on real hardware;
    /// some constructions in the paper rely on it).
    #[must_use]
    pub fn is_power_of_two(&self) -> bool {
        self.banks.is_power_of_two()
    }
}

impl Default for BankModel {
    fn default() -> Self {
        Self::gpu32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_mapping_is_modular() {
        let m = BankModel::new(16);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(15), 15);
        assert_eq!(m.bank_of(16), 0);
        assert_eq!(m.bank_of(33), 1);
    }

    #[test]
    fn column_major_roundtrip() {
        let m = BankModel::new(32);
        for addr in 0..4096 {
            assert_eq!(m.address_at(m.bank_of(addr), m.column_of(addr)), addr);
        }
    }

    #[test]
    fn gpu32_is_32_banks() {
        assert_eq!(BankModel::gpu32().banks(), 32);
        assert!(BankModel::gpu32().is_power_of_two());
    }

    #[test]
    #[should_panic(expected = "at least one memory bank")]
    fn zero_banks_rejected() {
        let _ = BankModel::new(0);
    }

    #[test]
    fn default_is_gpu32() {
        assert_eq!(BankModel::default(), BankModel::gpu32());
    }
}
