//! Small summary-statistics helpers shared by the experiment harnesses.
//!
//! The paper reports 10-run averages (and we additionally report spread,
//! answering its complaint that GPU papers rarely report variance).

/// Summary of a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for n < 2).
    pub stddev: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    #[must_use]
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        let stddev = if n < 2 {
            0.0
        } else {
            let var = xs.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Some(Self { n, mean, min, max, stddev })
    }

    /// Coefficient of variation (stddev / mean); `None` if the mean is 0.
    #[must_use]
    pub fn cv(&self) -> Option<f64> {
        (self.mean != 0.0).then(|| self.stddev / self.mean)
    }
}

/// Relative slowdown of the worst-case input vs. the random input, in
/// percent, computed from *throughputs*: `(thr_base − thr_other) / thr_other` is
/// ambiguous, so this helper takes *throughputs* and computes
/// `(thr_random / thr_worst − 1) · 100`, i.e. how much longer the
/// worst-case input takes relative to the random input. This equals the
/// time-based convention `(t_worst − t_random) / t_random · 100` since
/// throughput = N / time.
#[must_use]
pub fn slowdown_percent(throughput_random: f64, throughput_worst: f64) -> f64 {
    (throughput_random / throughput_worst - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn summary_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // Sample stddev of this classic sample is ~2.138.
        assert!((s.stddev - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn cv_none_on_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert!(s.cv().is_none());
    }

    #[test]
    fn slowdown_percent_matches_paper_convention() {
        // Random throughput 2.0 GE/s, worst-case 1.0 GE/s → the worst-case
        // run takes 2× the time → 100% slowdown.
        assert!((slowdown_percent(2.0, 1.0) - 100.0).abs() < 1e-12);
        // Equal throughput → 0%.
        assert!(slowdown_percent(1.5, 1.5).abs() < 1e-12);
        // ~50% peak of Fig. 4: worst takes 1.5× the time.
        assert!((slowdown_percent(1.5, 1.0) - 50.0).abs() < 1e-12);
    }
}
