//! Optional step-by-step access traces.
//!
//! A [`Trace`] records every [`crate::WarpStep`] a warp issued,
//! together with the conflict metrics of each step. Traces power the
//! figure renderings and the fine-grained assertions in the test suite;
//! they are disabled in large sweeps (recording is opt-in) so the hot path
//! stays allocation-light.

use crate::access::{Access, WarpStep};
use crate::conflict::StepConflicts;

/// One recorded step.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// The per-lane requests of the step.
    pub lanes: Vec<Option<Access>>,
    /// Conflict metrics computed when the step was issued.
    pub conflicts: StepConflicts,
}

/// A sequence of recorded steps.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    steps: Vec<StepRecord>,
    enabled: bool,
}

impl Trace {
    /// A recording trace.
    #[must_use]
    pub fn enabled() -> Self {
        Self { steps: Vec::new(), enabled: true }
    }

    /// A disabled trace: [`Trace::record`] is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self { steps: Vec::new(), enabled: false }
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a step (no-op when disabled).
    pub fn record(&mut self, step: &WarpStep, conflicts: StepConflicts) {
        if self.enabled {
            self.steps.push(StepRecord { lanes: step.lanes().to_vec(), conflicts });
        }
    }

    /// Recorded steps.
    #[must_use]
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Number of recorded steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Degrees of all recorded steps, in order.
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.conflicts.degree).collect()
    }

    /// Drop all recorded steps, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.steps.clear();
    }

    /// Histogram of step degrees: entry `d` counts steps that serialized
    /// into exactly `d` cycles (entry 0 unused; the vector is as long as
    /// the largest degree observed).
    #[must_use]
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max = self.steps.iter().map(|s| s.conflicts.degree).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for s in &self.steps {
            hist[s.conflicts.degree] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::ConflictCounter;
    use crate::BankModel;

    #[test]
    fn enabled_trace_records() {
        let mut c = ConflictCounter::new(BankModel::new(8));
        let mut t = Trace::enabled();
        let step = WarpStep::all_read(&[0, 8, 1]);
        let s = c.count(&step);
        t.record(&step, s);
        assert_eq!(t.len(), 1);
        assert_eq!(t.degrees(), vec![2]);
        assert_eq!(t.steps()[0].lanes.len(), 3);
    }

    #[test]
    fn disabled_trace_is_noop() {
        let mut t = Trace::disabled();
        let step = WarpStep::all_read(&[0]);
        t.record(
            &step,
            StepConflicts {
                degree: 1,
                conflicting_accesses: 0,
                crew_violations: 0,
                active_lanes: 1,
            },
        );
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn degree_histogram_counts_steps() {
        let mut c = ConflictCounter::new(BankModel::new(8));
        let mut t = Trace::enabled();
        for addrs in [vec![0usize, 8], vec![1, 2], vec![3, 11]] {
            let step = WarpStep::all_read(&addrs);
            let s = c.count(&step);
            t.record(&step, s);
        }
        // Two 2-way-conflict steps, one conflict-free step.
        assert_eq!(t.degree_histogram(), vec![0, 1, 2]);
        assert_eq!(Trace::enabled().degree_histogram(), vec![0]);
    }

    #[test]
    fn clear_keeps_enabled() {
        let mut t = Trace::enabled();
        let step = WarpStep::all_read(&[0]);
        t.record(
            &step,
            StepConflicts {
                degree: 1,
                conflicting_accesses: 0,
                crew_violations: 0,
                active_lanes: 1,
            },
        );
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }
}
