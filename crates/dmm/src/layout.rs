//! Padded shared-memory layouts — the classic bank-conflict mitigation
//! the paper's introduction attributes to Dotsenko et al.: insert one pad
//! word after every `w` logical words, so that logical column `c` of the
//! bank matrix lands on bank `(c + bank) mod w` instead of `bank`. A
//! warp scanning one logical bank column then spreads across all banks —
//! the constructed worst case degenerates to conflict-free accesses, at
//! the price of `1/w` extra shared memory.

/// Physical address of logical `addr` under one-pad-per-`w`-words.
#[must_use]
#[inline]
pub fn pad_address(addr: usize, w: usize) -> usize {
    addr + addr / w
}

/// Physical words needed to hold `len` logical words.
#[must_use]
#[inline]
pub fn padded_len(len: usize, w: usize) -> usize {
    if len == 0 {
        0
    } else {
        pad_address(len - 1, w) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BankModel;

    #[test]
    fn padding_injects_one_word_per_row() {
        assert_eq!(pad_address(0, 32), 0);
        assert_eq!(pad_address(31, 32), 31);
        assert_eq!(pad_address(32, 32), 33);
        assert_eq!(pad_address(64, 32), 66);
        assert_eq!(padded_len(0, 32), 0);
        assert_eq!(padded_len(32, 32), 32);
        assert_eq!(padded_len(33, 32), 34);
    }

    #[test]
    fn padding_is_injective_and_monotone() {
        let mut last = None;
        for a in 0..10_000usize {
            let p = pad_address(a, 32);
            if let Some(prev) = last {
                assert!(p > prev, "addr {a}");
            }
            last = Some(p);
        }
    }

    /// The defining property: a logical bank column (addresses ≡ k mod w)
    /// maps to *distinct physical banks* across w consecutive rows — the
    /// access pattern the worst-case construction relies on is destroyed.
    #[test]
    fn logical_column_spreads_over_all_banks() {
        let w = 32;
        let m = BankModel::new(w);
        for k in 0..w {
            let mut banks: Vec<usize> =
                (0..w).map(|row| m.bank_of(pad_address(row * w + k, w))).collect();
            banks.sort_unstable();
            banks.dedup();
            assert_eq!(banks.len(), w, "column {k} must hit all {w} banks");
        }
    }
}
