//! Bank-conflict accounting.
//!
//! Three metrics are maintained, because the literature uses all three:
//!
//! * **degree** — the number of cycles a step serializes into: the maximum
//!   over banks of the number of *distinct addresses* requested in that
//!   bank (minimum 1 for a non-idle step). This is the unit of the paper's
//!   Lemma 1 (`min{⌈k/w⌉, w}` bank conflicts) and of Karsin et al.'s
//!   `β₁ = 3.1`, `β₂ = 2.2` averages: a conflict-free access has degree 1.
//! * **conflicting accesses** — `Σ_b m_b` over banks with `m_b ≥ 2` distinct
//!   addresses. The paper's "`E²` total bank conflicts" (Theorem 3) counts
//!   in this unit: `E` threads in one bank in each of `E` steps.
//! * **extra cycles** — `degree − 1` per step: the replays real hardware
//!   spends beyond an ideal conflict-free access.
//!
//! Reads of the *same* address broadcast: they contribute one distinct
//! address regardless of how many lanes issue them. Concurrent writes to
//! one address (or a read and a write racing on one address) are CREW
//! violations and are tallied separately — the merge sort never produces
//! them, and a nonzero count in a test means the kernel under simulation
//! is broken.

use crate::access::{AccessKind, WarpStep};
use crate::BankModel;

/// Conflict metrics of a single step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StepConflicts {
    /// Cycles the step serializes into (max distinct addresses per bank;
    /// 0 for an idle step, otherwise ≥ 1).
    pub degree: usize,
    /// Σ over banks with ≥ 2 distinct addresses of the distinct-address
    /// count (the paper's counting unit).
    pub conflicting_accesses: usize,
    /// CREW violations: address pairs written concurrently (or read+write).
    pub crew_violations: usize,
    /// Lanes that issued a request.
    pub active_lanes: usize,
}

impl StepConflicts {
    /// Replay cycles beyond the first (`max(degree, 1) − 1`).
    #[must_use]
    pub fn extra_cycles(&self) -> usize {
        self.degree.saturating_sub(1)
    }

    /// True if the step was conflict-free (degree ≤ 1).
    #[must_use]
    pub fn is_conflict_free(&self) -> bool {
        self.degree <= 1
    }
}

/// Running totals over many steps (one warp, one kernel, or a whole sort —
/// totals from independent warps add).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ConflictTotals {
    /// Non-idle steps observed.
    pub steps: usize,
    /// Σ degree over non-idle steps (serialized cycles spent on shared
    /// memory).
    pub cycles: usize,
    /// Σ conflicting accesses (paper unit).
    pub conflicting_accesses: usize,
    /// Σ (degree − 1).
    pub extra_cycles: usize,
    /// Largest degree seen in any step.
    pub max_degree: usize,
    /// Total CREW violations.
    pub crew_violations: usize,
    /// Total lane-requests observed.
    pub accesses: usize,
}

impl ConflictTotals {
    /// Fold one step's metrics into the totals.
    pub fn record(&mut self, s: StepConflicts) {
        if s.active_lanes == 0 {
            return;
        }
        self.steps += 1;
        self.cycles += s.degree;
        self.conflicting_accesses += s.conflicting_accesses;
        self.extra_cycles += s.extra_cycles();
        self.max_degree = self.max_degree.max(s.degree);
        self.crew_violations += s.crew_violations;
        self.accesses += s.active_lanes;
    }

    /// Merge totals from an independent warp/kernel (associative,
    /// commutative — safe to reduce in parallel).
    pub fn merge(&mut self, other: &ConflictTotals) {
        self.steps += other.steps;
        self.cycles += other.cycles;
        self.conflicting_accesses += other.conflicting_accesses;
        self.extra_cycles += other.extra_cycles;
        self.max_degree = self.max_degree.max(other.max_degree);
        self.crew_violations += other.crew_violations;
        self.accesses += other.accesses;
    }

    /// Average degree per step — the β of Karsin et al. (1.0 = conflict
    /// free). Returns `None` before any step was recorded.
    #[must_use]
    pub fn beta(&self) -> Option<f64> {
        (self.steps > 0).then(|| self.cycles as f64 / self.steps as f64)
    }

    /// Conflicting accesses per element touched.
    #[must_use]
    pub fn conflicts_per_access(&self) -> Option<f64> {
        (self.accesses > 0).then(|| self.conflicting_accesses as f64 / self.accesses as f64)
    }
}

/// The accounting engine. Holds reusable scratch so that counting a step is
/// allocation-free in steady state (per the perf-book guidance on workhorse
/// collections).
///
/// ```
/// use wcms_dmm::{BankModel, ConflictCounter, WarpStep};
///
/// let mut counter = ConflictCounter::new(BankModel::gpu32());
/// // Four lanes hitting bank 0 at distinct addresses: a 4-way conflict.
/// let step = WarpStep::all_read(&[0, 32, 64, 96]);
/// assert_eq!(counter.count(&step).degree, 4);
/// ```
#[derive(Debug, Clone)]
pub struct ConflictCounter {
    model: BankModel,
    totals: ConflictTotals,
    // Scratch: (bank, addr, kind-bit) triples of the current step.
    scratch: Vec<(usize, usize, u8)>,
}

impl ConflictCounter {
    /// New counter over the given bank model.
    #[must_use]
    pub fn new(model: BankModel) -> Self {
        Self { model, totals: ConflictTotals::default(), scratch: Vec::with_capacity(64) }
    }

    /// The bank model in use.
    #[must_use]
    pub fn model(&self) -> BankModel {
        self.model
    }

    /// Analyse one step, record it into the running totals, and return its
    /// metrics.
    pub fn count(&mut self, step: &WarpStep) -> StepConflicts {
        let s = self.analyze(step);
        self.totals.record(s);
        s
    }

    /// Analyse a step without recording it.
    #[must_use]
    pub fn analyze(&mut self, step: &WarpStep) -> StepConflicts {
        self.scratch.clear();
        for access in step.lanes().iter().flatten() {
            let kind = match access.kind {
                AccessKind::Read => 0u8,
                AccessKind::Write => 1u8,
            };
            self.scratch.push((self.model.bank_of(access.addr), access.addr, kind));
        }
        let active_lanes = self.scratch.len();
        if active_lanes == 0 {
            return StepConflicts {
                degree: 0,
                conflicting_accesses: 0,
                crew_violations: 0,
                active_lanes: 0,
            };
        }
        // Sort by (bank, addr) so that same-bank requests are contiguous
        // and same-address requests adjacent within a bank.
        self.scratch.sort_unstable();

        let mut degree = 0usize;
        let mut conflicting = 0usize;
        let mut crew = 0usize;

        let mut i = 0;
        while i < self.scratch.len() {
            let bank = self.scratch[i].0;
            // Walk one bank's requests.
            let mut distinct = 0usize;
            while i < self.scratch.len() && self.scratch[i].0 == bank {
                let addr = self.scratch[i].1;
                distinct += 1;
                let mut writes = 0usize;
                let mut reads = 0usize;
                while i < self.scratch.len()
                    && self.scratch[i].0 == bank
                    && self.scratch[i].1 == addr
                {
                    match self.scratch[i].2 {
                        0 => reads += 1,
                        _ => writes += 1,
                    }
                    i += 1;
                }
                // CREW: at most one writer, and a writer excludes readers.
                if writes > 1 {
                    crew += writes - 1;
                }
                if writes >= 1 && reads >= 1 {
                    crew += 1;
                }
            }
            degree = degree.max(distinct);
            if distinct >= 2 {
                conflicting += distinct;
            }
        }
        StepConflicts {
            degree,
            conflicting_accesses: conflicting,
            crew_violations: crew,
            active_lanes,
        }
    }

    /// Running totals.
    #[must_use]
    pub fn totals(&self) -> ConflictTotals {
        self.totals
    }

    /// Reset totals, keeping the model and scratch capacity.
    pub fn reset(&mut self) {
        self.totals = ConflictTotals::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;

    fn counter(w: usize) -> ConflictCounter {
        ConflictCounter::new(BankModel::new(w))
    }

    #[test]
    fn distinct_banks_are_conflict_free() {
        let mut c = counter(32);
        let s = c.count(&WarpStep::all_read(&(0..32).collect::<Vec<_>>()));
        assert_eq!(s.degree, 1);
        assert_eq!(s.conflicting_accesses, 0);
        assert!(s.is_conflict_free());
        assert_eq!(s.extra_cycles(), 0);
    }

    #[test]
    fn same_bank_distinct_addresses_conflict() {
        let mut c = counter(32);
        // Addresses 0, 32, 64, 96 all live in bank 0.
        let s = c.count(&WarpStep::all_read(&[0, 32, 64, 96]));
        assert_eq!(s.degree, 4);
        assert_eq!(s.conflicting_accesses, 4);
        assert_eq!(s.extra_cycles(), 3);
        assert_eq!(s.crew_violations, 0);
    }

    #[test]
    fn broadcast_reads_do_not_conflict() {
        let mut c = counter(32);
        let s = c.count(&WarpStep::all_read(&[5; 32]));
        assert_eq!(s.degree, 1);
        assert_eq!(s.conflicting_accesses, 0);
        assert_eq!(s.crew_violations, 0);
    }

    #[test]
    fn concurrent_writes_violate_crew() {
        let mut c = counter(32);
        let s = c.count(&WarpStep::all_write(&[5, 5, 5]));
        assert_eq!(s.crew_violations, 2);
        // Still one distinct address → degree 1.
        assert_eq!(s.degree, 1);
    }

    #[test]
    fn read_write_race_violates_crew() {
        let mut c = counter(32);
        let step = WarpStep::from_lanes(vec![Some(Access::read(9)), Some(Access::write(9))]);
        let s = c.count(&step);
        assert_eq!(s.crew_violations, 1);
    }

    #[test]
    fn mixed_step_degree_is_max_over_banks() {
        let mut c = counter(16);
        // Bank 0: addrs 0,16,32 (3 distinct). Bank 1: addrs 1,17 (2). Bank 2: addr 2.
        let s = c.count(&WarpStep::all_read(&[0, 16, 32, 1, 17, 2]));
        assert_eq!(s.degree, 3);
        assert_eq!(s.conflicting_accesses, 3 + 2);
    }

    #[test]
    fn idle_step_not_counted() {
        let mut c = counter(32);
        let s = c.count(&WarpStep::idle(32));
        assert_eq!(s.degree, 0);
        assert_eq!(c.totals().steps, 0);
    }

    #[test]
    fn totals_accumulate_and_merge() {
        let mut a = counter(32);
        a.count(&WarpStep::all_read(&[0, 32]));
        a.count(&WarpStep::all_read(&[1, 2]));
        let mut b = counter(32);
        b.count(&WarpStep::all_read(&[0, 32, 64]));

        let mut t = a.totals();
        t.merge(&b.totals());
        assert_eq!(t.steps, 3);
        assert_eq!(t.cycles, 2 + 1 + 3);
        assert_eq!(t.max_degree, 3);
        assert_eq!(t.accesses, 2 + 2 + 3);
        assert_eq!(t.conflicting_accesses, 2 + 3);
        let beta = t.beta().unwrap();
        assert!((beta - 2.0).abs() < 1e-12);
    }

    #[test]
    fn beta_none_when_empty() {
        assert_eq!(ConflictTotals::default().beta(), None);
        assert_eq!(ConflictTotals::default().conflicts_per_access(), None);
    }

    #[test]
    fn reset_clears_totals_only() {
        let mut c = counter(8);
        c.count(&WarpStep::all_read(&[0, 8]));
        c.reset();
        assert_eq!(c.totals(), ConflictTotals::default());
        assert_eq!(c.model().banks(), 8);
    }

    #[test]
    fn lemma1_style_adversarial_step() {
        // Lemma 1: w accesses into k = w*E consecutive addresses can reach
        // degree min(⌈k/w⌉, w) = E. Pick all addresses ≡ 0 (mod w).
        let w = 32;
        let e = 5;
        let addrs: Vec<usize> = (0..w).map(|i| (i % e) * w).collect();
        let mut c = counter(w);
        let s = c.count(&WarpStep::all_read(&addrs));
        assert_eq!(s.degree, e);
    }
}
