//! Per-step warp access descriptions.
//!
//! A [`WarpStep`] is one synchronous time step of the DMM: at most one
//! memory request per lane. Inactive lanes (threads that have exhausted
//! their work or are masked off by divergence) simply issue no request.

/// Whether a request reads or writes its address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AccessKind {
    /// A load. Concurrent loads of the same address broadcast (1 cycle).
    Read,
    /// A store. Concurrent stores to the same address violate CREW.
    Write,
}

/// One lane's memory request in a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Access {
    /// Word address within the shared-memory tile.
    pub addr: usize,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// A read of `addr`.
    #[must_use]
    #[inline]
    pub fn read(addr: usize) -> Self {
        Self { addr, kind: AccessKind::Read }
    }

    /// A write of `addr`.
    #[must_use]
    #[inline]
    pub fn write(addr: usize) -> Self {
        Self { addr, kind: AccessKind::Write }
    }
}

/// One synchronous step of a warp: an optional request per lane.
///
/// The lane index is the position in [`WarpStep::lanes`]. The number of
/// lanes need not equal the number of banks (the paper's illustrations use
/// `w = 16` lanes on 16 banks; sub-warp merges use fewer active lanes).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WarpStep {
    lanes: Vec<Option<Access>>,
}

impl WarpStep {
    /// An all-idle step with `width` lanes.
    #[must_use]
    pub fn idle(width: usize) -> Self {
        Self { lanes: vec![None; width] }
    }

    /// Build a step from explicit per-lane requests.
    #[must_use]
    pub fn from_lanes(lanes: Vec<Option<Access>>) -> Self {
        Self { lanes }
    }

    /// A step in which every lane reads, lane `i` reading `addrs[i]`.
    #[must_use]
    pub fn all_read(addrs: &[usize]) -> Self {
        Self { lanes: addrs.iter().map(|&a| Some(Access::read(a))).collect() }
    }

    /// A step in which every lane writes, lane `i` writing `addrs[i]`.
    #[must_use]
    pub fn all_write(addrs: &[usize]) -> Self {
        Self { lanes: addrs.iter().map(|&a| Some(Access::write(a))).collect() }
    }

    /// Set lane `lane`'s request (enlarging the step if needed).
    pub fn set(&mut self, lane: usize, access: Access) {
        if lane >= self.lanes.len() {
            self.lanes.resize(lane + 1, None);
        }
        self.lanes[lane] = Some(access);
    }

    /// Clear all requests, keeping the lane count. Reuse one `WarpStep`
    /// across a hot loop to avoid reallocating.
    pub fn clear(&mut self) {
        self.lanes.iter_mut().for_each(|l| *l = None);
    }

    /// Per-lane requests.
    #[must_use]
    pub fn lanes(&self) -> &[Option<Access>] {
        &self.lanes
    }

    /// Number of lanes (active or not).
    #[must_use]
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Number of lanes issuing a request this step.
    #[must_use]
    pub fn active(&self) -> usize {
        self.lanes.iter().filter(|l| l.is_some()).count()
    }

    /// True if no lane issues a request.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.lanes.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_step_has_no_active_lanes() {
        let s = WarpStep::idle(32);
        assert_eq!(s.width(), 32);
        assert_eq!(s.active(), 0);
        assert!(s.is_idle());
    }

    #[test]
    fn all_read_marks_every_lane_active() {
        let s = WarpStep::all_read(&[0, 1, 2, 3]);
        assert_eq!(s.width(), 4);
        assert_eq!(s.active(), 4);
        assert_eq!(s.lanes()[2], Some(Access::read(2)));
    }

    #[test]
    fn set_extends_width() {
        let mut s = WarpStep::idle(2);
        s.set(5, Access::write(40));
        assert_eq!(s.width(), 6);
        assert_eq!(s.active(), 1);
        assert_eq!(s.lanes()[5], Some(Access::write(40)));
    }

    #[test]
    fn clear_keeps_width() {
        let mut s = WarpStep::all_read(&[7, 8]);
        s.clear();
        assert_eq!(s.width(), 2);
        assert!(s.is_idle());
    }

    #[test]
    fn read_write_constructors() {
        assert_eq!(Access::read(3).kind, AccessKind::Read);
        assert_eq!(Access::write(3).kind, AccessKind::Write);
        assert_eq!(Access::read(3).addr, 3);
    }
}
