//! Property-based tests of the DMM conflict accounting.

use proptest::prelude::*;
use wcms_dmm::{BankModel, ConflictCounter, ConflictTotals, WarpStep};

fn arb_addrs() -> impl Strategy<Value = (usize, Vec<usize>)> {
    // (bank count, addresses)
    (prop_oneof![Just(8usize), Just(16), Just(32)], proptest::collection::vec(0usize..4096, 1..64))
        .prop_map(|(w, addrs)| (w, addrs))
}

proptest! {
    /// degree is bounded by the number of distinct addresses and by the
    /// active lane count, and is at least ⌈distinct/w⌉ (pigeonhole).
    #[test]
    fn degree_bounds((w, addrs) in arb_addrs()) {
        let mut c = ConflictCounter::new(BankModel::new(w));
        let s = c.count(&WarpStep::all_read(&addrs));
        let mut distinct = addrs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(s.degree >= 1);
        prop_assert!(s.degree <= distinct.len());
        prop_assert!(s.degree <= addrs.len());
        prop_assert!(s.degree >= distinct.len().div_ceil(w));
        prop_assert_eq!(s.active_lanes, addrs.len());
        prop_assert_eq!(s.crew_violations, 0, "reads never violate CREW");
    }

    /// Reads are broadcast: duplicating lanes never changes the degree.
    #[test]
    fn broadcast_invariance((w, addrs) in arb_addrs()) {
        let mut c = ConflictCounter::new(BankModel::new(w));
        let base = c.analyze(&WarpStep::all_read(&addrs));
        let doubled: Vec<usize> = addrs.iter().chain(addrs.iter()).copied().collect();
        let dup = c.analyze(&WarpStep::all_read(&doubled));
        prop_assert_eq!(base.degree, dup.degree);
        prop_assert_eq!(base.conflicting_accesses, dup.conflicting_accesses);
    }

    /// A uniform shift by a multiple of w maps every address to the same
    /// bank: conflict metrics are invariant.
    #[test]
    fn shift_by_w_invariance((w, addrs) in arb_addrs(), k in 0usize..8) {
        let mut c = ConflictCounter::new(BankModel::new(w));
        let base = c.analyze(&WarpStep::all_read(&addrs));
        let shifted: Vec<usize> = addrs.iter().map(|a| a + k * w).collect();
        let s = c.analyze(&WarpStep::all_read(&shifted));
        prop_assert_eq!(base.degree, s.degree);
        prop_assert_eq!(base.conflicting_accesses, s.conflicting_accesses);
    }

    /// Totals reduce associatively: counting steps in one counter equals
    /// merging two counters that split the steps.
    #[test]
    fn totals_merge_is_concat((w, addrs) in arb_addrs(), split in 0usize..64) {
        let steps: Vec<WarpStep> =
            addrs.chunks(4).map(WarpStep::all_read).collect();
        let split = split % (steps.len() + 1);

        let mut all = ConflictCounter::new(BankModel::new(w));
        for s in &steps {
            all.count(s);
        }
        let mut left = ConflictCounter::new(BankModel::new(w));
        let mut right = ConflictCounter::new(BankModel::new(w));
        for (i, s) in steps.iter().enumerate() {
            if i < split { left.count(s); } else { right.count(s); }
        }
        let mut merged: ConflictTotals = left.totals();
        merged.merge(&right.totals());
        prop_assert_eq!(merged, all.totals());
    }

    /// conflicting_accesses is consistent with degree: zero iff degree
    /// ≤ 1, and at least degree when ≥ 2.
    #[test]
    fn conflicting_accesses_consistency((w, addrs) in arb_addrs()) {
        let mut c = ConflictCounter::new(BankModel::new(w));
        let s = c.analyze(&WarpStep::all_read(&addrs));
        if s.degree <= 1 {
            prop_assert_eq!(s.conflicting_accesses, 0);
        } else {
            prop_assert!(s.conflicting_accesses >= s.degree);
        }
    }
}
