//! The cycle cost model: measured counters → estimated runtime.
//!
//! The paper's own result (Fig. 6) is that runtime *tracks* the
//! bank-conflict count; this model encodes the simplest mechanism with
//! that property, and is used only to reproduce the figures' shapes:
//!
//! * **Shared memory.** A warp's shared access serializes into `degree`
//!   cycles (measured, never assumed — it is [`ConflictTotals::cycles`]
//!   from the simulation). Each SM's load/store pipe retires one shared
//!   warp-access per clock, so the device drains `sm_count` cycles of
//!   shared work per clock — scaled by a latency-hiding factor that grows
//!   with resident warps (thread oversubscription, §I of the paper).
//! * **Global memory.** Sector traffic is drained at the device
//!   bandwidth, scaled by an occupancy-dependent hiding factor (full
//!   bandwidth only at full residency). This makes low occupancy hurt
//!   the global term — the effect behind the paper's E=17/b=256 (75%)
//!   vs. E=15/b=512 (100%) comparison on the 2080 Ti.
//! * **Overlap.** The merge loop is a dependent load–compare chain, so
//!   the two streams barely overlap: the total is the larger stream plus
//!   an `overlap` fraction (default 1 = fully additive) of the smaller,
//!   plus a fixed per-block launch overhead.
//!
//! Calibration constants are documented in EXPERIMENTS.md; all tests here
//! assert *relational* properties (monotonicity), not absolute times.
//!
//! [`ConflictTotals::cycles`]: wcms_dmm::ConflictTotals::cycles

use crate::counters::KernelCounters;
use crate::device::DeviceSpec;
use crate::occupancy::Occupancy;

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// Fraction of the smaller (shared vs. global) stream that is *not*
    /// hidden behind the larger one, in `[0, 1]`. 1 = fully additive
    /// (dependent-chain, latency-bound — the default), 0 = perfect
    /// overlap.
    pub overlap: f64,
    /// Resident warps per SM needed to fully hide shared-memory issue
    /// latency.
    pub warps_to_hide_shared: f64,
    /// Occupancy fraction at which global-memory latency is fully hidden
    /// (1.0: full bandwidth needs full residency).
    pub occupancy_knee: f64,
    /// Per-thread-block fixed overhead, microseconds (launch + partition
    /// searches not otherwise modelled).
    pub block_overhead_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            overlap: 1.0,
            warps_to_hide_shared: 16.0,
            occupancy_knee: 1.0,
            block_overhead_us: 0.06,
        }
    }
}

/// Estimated time, split by resource.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeBreakdown {
    /// Seconds spent draining serialized shared-memory cycles.
    pub shared_s: f64,
    /// Seconds spent draining global-memory sectors.
    pub global_s: f64,
    /// Fixed overhead seconds.
    pub overhead_s: f64,
    /// Modelled total.
    pub total_s: f64,
}

impl TimeBreakdown {
    /// Throughput in elements/second for an `n`-element workload.
    #[must_use]
    pub fn throughput(&self, n: usize) -> f64 {
        n as f64 / self.total_s
    }

    /// Milliseconds per element (the left y-axis of Fig. 6).
    #[must_use]
    pub fn ms_per_element(&self, n: usize) -> f64 {
        self.total_s * 1e3 / n as f64
    }
}

impl CostModel {
    /// Estimate the runtime of work described by `counters`, launched as
    /// `blocks_launched` thread blocks with per-block occupancy `occ` on
    /// `device`.
    #[must_use]
    pub fn estimate(
        &self,
        device: &DeviceSpec,
        occ: &Occupancy,
        counters: &KernelCounters,
        blocks_launched: usize,
    ) -> TimeBreakdown {
        let clock_hz = device.clock_ghz * 1e9;

        // Shared stream: measured serialized cycles drained at one warp
        // access per SM per clock, derated when too few warps are
        // resident to hide issue latency.
        let warps = occ.warps_per_sm(device.warp_size) as f64;
        let hide_shared = (warps / self.warps_to_hide_shared).clamp(0.05, 1.0);
        let shared_s =
            counters.shared.cycles as f64 / (device.sm_count as f64 * clock_hz * hide_shared);

        // Global stream: sector bytes at bandwidth, derated below the
        // occupancy knee.
        let hide_global = (occ.fraction / self.occupancy_knee).clamp(0.05, 1.0);
        let global_s =
            counters.global.bytes() as f64 / (device.mem_bandwidth_gbs * 1e9 * hide_global);

        // Device-wide block-launch overhead, spread across the SMs.
        let waves = blocks_launched as f64 / device.sm_count as f64;
        let overhead_s = waves.max(1.0) * self.block_overhead_us * 1e-6;

        let (hi, lo) =
            if shared_s >= global_s { (shared_s, global_s) } else { (global_s, shared_s) };
        let total_s = hi + self.overlap * lo + overhead_s;
        TimeBreakdown { shared_s, global_s, overhead_s, total_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmem::GlobalTotals;
    use wcms_dmm::ConflictTotals;
    use wcms_error::WcmsError;

    fn counters(shared_cycles: usize, sectors: usize) -> KernelCounters {
        KernelCounters {
            shared: ConflictTotals {
                steps: shared_cycles,
                cycles: shared_cycles,
                ..Default::default()
            },
            global: GlobalTotals { requests: sectors / 4, sectors, accesses: sectors * 8 },
        }
    }

    fn occ_full(device: &DeviceSpec) -> Result<Occupancy, WcmsError> {
        Occupancy::compute(device, 512, Occupancy::mergesort_shared_bytes(512, 15))
    }

    #[test]
    fn more_shared_cycles_cost_more_time() -> Result<(), WcmsError> {
        let d = DeviceSpec::rtx_2080_ti();
        let o = occ_full(&d)?;
        let m = CostModel::default();
        let t1 = m.estimate(&d, &o, &counters(1_000_000, 1000), 100);
        let t2 = m.estimate(&d, &o, &counters(2_000_000, 1000), 100);
        assert!(t2.total_s > t1.total_s);
        assert!(t2.shared_s > t1.shared_s);
        Ok(())
    }

    #[test]
    fn more_sectors_cost_more_time() -> Result<(), WcmsError> {
        let d = DeviceSpec::rtx_2080_ti();
        let o = occ_full(&d)?;
        let m = CostModel::default();
        let t1 = m.estimate(&d, &o, &counters(1000, 1_000_000), 100);
        let t2 = m.estimate(&d, &o, &counters(1000, 4_000_000), 100);
        assert!(t2.total_s > t1.total_s);
        Ok(())
    }

    #[test]
    fn higher_occupancy_is_never_slower() -> Result<(), WcmsError> {
        let d = DeviceSpec::rtx_2080_ti();
        let full = Occupancy::compute(&d, 512, 30720)?; // 100%
        let partial = Occupancy::compute(&d, 256, 17408)?; // 75%
        let m = CostModel::default();
        let c = counters(10_000_000, 10_000_000);
        let t_full = m.estimate(&d, &full, &c, 1000);
        let t_partial = m.estimate(&d, &partial, &c, 1000);
        assert!(t_full.total_s <= t_partial.total_s);
        Ok(())
    }

    #[test]
    fn faster_device_is_faster() -> Result<(), WcmsError> {
        let m4000 = DeviceSpec::quadro_m4000();
        let rtx = DeviceSpec::rtx_2080_ti();
        let m = CostModel::default();
        let c = counters(50_000_000, 20_000_000);
        let o_m = Occupancy::compute(&m4000, 512, 30720)?;
        let o_r = Occupancy::compute(&rtx, 512, 30720)?;
        let t_m = m.estimate(&m4000, &o_m, &c, 1000).total_s;
        let t_r = m.estimate(&rtx, &o_r, &c, 1000).total_s;
        assert!(t_r < t_m, "2080 Ti should beat M4000 on equal work");
        Ok(())
    }

    #[test]
    fn throughput_and_ms_per_element_are_consistent() {
        let t = TimeBreakdown { shared_s: 0.0, global_s: 0.0, overhead_s: 0.0, total_s: 0.5 };
        let n = 1_000_000;
        assert!((t.throughput(n) - 2e6).abs() < 1e-6);
        assert!((t.ms_per_element(n) - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_to_total_when_one_stream_dominates() -> Result<(), WcmsError> {
        let d = DeviceSpec::rtx_2080_ti();
        let o = occ_full(&d)?;
        let m = CostModel { overlap: 0.0, block_overhead_us: 0.0, ..CostModel::default() };
        let t = m.estimate(&d, &o, &counters(10_000_000, 4), 1);
        assert!((t.total_s - t.shared_s).abs() / t.total_s < 1e-9);
        Ok(())
    }
}
