//! Occupancy calculation (§IV-A of the paper).
//!
//! The number of thread blocks resident on one SM is limited by three
//! resources: shared memory, the resident-thread ceiling and the
//! resident-block ceiling. The paper works this out by hand for the
//! RTX 2080 Ti: with `E = 17, b = 256` each block needs 17 KiB of shared
//! memory, so 3 blocks (768 threads) fit — 75% occupancy; with
//! `E = 15, b = 512` each block needs 30 KiB, so 2 blocks (1024 threads)
//! fit — 100% occupancy. [`Occupancy::compute`] reproduces exactly that
//! arithmetic for any device.

use crate::device::DeviceSpec;
use wcms_error::WcmsError;

/// Resident-block and occupancy figures for one kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Occupancy {
    /// Thread blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Resident threads per SM (`blocks_per_sm · block_threads`).
    pub threads_per_sm: usize,
    /// Fraction of the device's resident-thread ceiling in `[0, 1]`.
    pub fraction: f64,
    /// Which resource bound: `"shared-memory"`, `"threads"`, or `"blocks"`.
    pub limiter: &'static str,
}

impl Occupancy {
    /// Occupancy of a kernel using `block_threads` threads and
    /// `shared_bytes` of shared memory per block on `device`.
    ///
    /// ```
    /// use wcms_gpu_sim::{DeviceSpec, Occupancy};
    ///
    /// // The paper's §IV-A arithmetic: E=17, b=256 on the RTX 2080 Ti
    /// // needs 17 KiB per block → 3 resident blocks → 75% occupancy.
    /// let device = DeviceSpec::rtx_2080_ti();
    /// let occ = Occupancy::compute(&device, 256, 17 * 1024)?;
    /// assert_eq!(occ.blocks_per_sm, 3);
    /// assert_eq!(occ.fraction, 0.75);
    /// # Ok::<(), wcms_error::WcmsError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::SharedMemOverflow`] if one block's tile
    /// alone exceeds the SM's shared memory, and
    /// [`WcmsError::OccupancyMisfit`] (naming the device and the
    /// `(block_threads, shared_bytes)` request) if even a single block
    /// cannot be resident for any other reason.
    pub fn compute(
        device: &DeviceSpec,
        block_threads: usize,
        shared_bytes: usize,
    ) -> Result<Self, WcmsError> {
        let misfit = |reason: &str| WcmsError::OccupancyMisfit {
            device: device.name.to_string(),
            block_threads,
            shared_bytes,
            reason: reason.to_string(),
        };
        if block_threads == 0 {
            return Err(misfit("block must have at least one thread"));
        }
        if shared_bytes > device.shared_mem_per_sm {
            return Err(WcmsError::SharedMemOverflow {
                required: shared_bytes,
                available: device.shared_mem_per_sm,
                device: device.name.to_string(),
            });
        }
        let by_threads = device.max_threads_per_sm / block_threads;
        let by_smem = device.shared_mem_per_sm.checked_div(shared_bytes).unwrap_or(usize::MAX);
        let by_blocks = device.max_blocks_per_sm;
        let blocks = by_threads.min(by_smem).min(by_blocks);
        if blocks == 0 {
            return Err(misfit("block exceeds the resident-thread ceiling"));
        }
        let limiter = if blocks == by_smem && by_smem <= by_threads && by_smem <= by_blocks {
            "shared-memory"
        } else if blocks == by_threads && by_threads <= by_blocks {
            "threads"
        } else {
            "blocks"
        };
        let threads = blocks * block_threads;
        Ok(Self {
            blocks_per_sm: blocks,
            threads_per_sm: threads,
            fraction: threads as f64 / device.max_threads_per_sm as f64,
            limiter,
        })
    }

    /// Shared memory, in bytes, used by one merge-sort block sorting
    /// `block_threads · elems_per_thread` 4-byte keys in its tile.
    #[must_use]
    pub fn mergesort_shared_bytes(block_threads: usize, elems_per_thread: usize) -> usize {
        block_threads * elems_per_thread * 4
    }

    /// Resident warps per SM.
    #[must_use]
    pub fn warps_per_sm(&self, warp_size: usize) -> usize {
        self.threads_per_sm / warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §IV-A: "each thread block requires 17 KiB of shared memory space,
    /// thus, 3 thread blocks (768 total threads) … can be resident on each
    /// SM" — 75% theoretical occupancy.
    #[test]
    fn occupancy_rtx_e17_b256_is_75_percent() -> Result<(), WcmsError> {
        let d = DeviceSpec::rtx_2080_ti();
        let smem = Occupancy::mergesort_shared_bytes(256, 17);
        assert_eq!(smem, 17408); // 17 KiB
        let o = Occupancy::compute(&d, 256, smem)?;
        assert_eq!(o.blocks_per_sm, 3);
        assert_eq!(o.threads_per_sm, 768);
        assert!((o.fraction - 0.75).abs() < 1e-12);
        assert_eq!(o.limiter, "shared-memory");
        Ok(())
    }

    /// §IV-A: "Compared to E = 15 and b = 512, each thread block uses
    /// 30 KiB … 2 resident thread blocks (1024 total threads)" — 100%.
    #[test]
    fn occupancy_rtx_e15_b512_is_100_percent() -> Result<(), WcmsError> {
        let d = DeviceSpec::rtx_2080_ti();
        let smem = Occupancy::mergesort_shared_bytes(512, 15);
        assert_eq!(smem, 30720); // 30 KiB
        let o = Occupancy::compute(&d, 512, smem)?;
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.threads_per_sm, 1024);
        assert!((o.fraction - 1.0).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn occupancy_m4000_thrust_params() -> Result<(), WcmsError> {
        let d = DeviceSpec::quadro_m4000();
        let o = Occupancy::compute(&d, 512, Occupancy::mergesort_shared_bytes(512, 15))?;
        // 96 KiB / 30 KiB = 3 blocks = 1536 of 2048 threads = 75%.
        assert_eq!(o.blocks_per_sm, 3);
        assert!((o.fraction - 0.75).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn thread_limited_when_no_shared_memory() -> Result<(), WcmsError> {
        let d = DeviceSpec::rtx_2080_ti();
        let o = Occupancy::compute(&d, 256, 0)?;
        assert_eq!(o.blocks_per_sm, 4); // 1024 / 256
        assert_eq!(o.limiter, "threads");
        Ok(())
    }

    #[test]
    fn block_limited_with_tiny_blocks() -> Result<(), WcmsError> {
        let d = DeviceSpec::rtx_2080_ti();
        let o = Occupancy::compute(&d, 32, 0)?;
        assert_eq!(o.blocks_per_sm, d.max_blocks_per_sm);
        assert_eq!(o.limiter, "blocks");
        Ok(())
    }

    #[test]
    fn oversize_block_does_not_fit() {
        let d = DeviceSpec::rtx_2080_ti();
        let err = Occupancy::compute(&d, 2048, 0).unwrap_err();
        assert!(matches!(err, WcmsError::OccupancyMisfit { block_threads: 2048, .. }), "{err}");
        assert!(err.to_string().contains(d.name), "{err}");
        let err = Occupancy::compute(&d, 256, 128 * 1024).unwrap_err();
        assert!(matches!(err, WcmsError::SharedMemOverflow { .. }), "{err}");
        assert!(Occupancy::compute(&d, 0, 0).is_err());
    }

    #[test]
    fn warps_per_sm() -> Result<(), WcmsError> {
        let d = DeviceSpec::rtx_2080_ti();
        let o = Occupancy::compute(&d, 512, Occupancy::mergesort_shared_bytes(512, 15))?;
        assert_eq!(o.warps_per_sm(32), 32);
        Ok(())
    }
}
