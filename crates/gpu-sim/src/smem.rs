//! Banked shared memory with per-step conflict accounting.
//!
//! A [`SharedMemory`] models one thread block's shared-memory tile: a flat
//! array of words whose bank layout follows the DMM mapping (`addr mod w`).
//! Kernels drive it one warp step at a time; each step is analysed by a
//! [`wcms_dmm::ConflictCounter`] and optionally recorded
//! into a [`wcms_dmm::Trace`].
//!
//! Warps of one block are independent in the merge sort (each works on its
//! own `wE`-element slice), so the block simulation issues their steps
//! sequentially into the same tile; totals are additive.

use wcms_dmm::{
    pad_address, Access, BankModel, ConflictCounter, ConflictTotals, StepConflicts, Trace, WarpStep,
};
use wcms_error::WcmsError;

/// A shared-memory tile with conflict accounting.
///
/// With [`SharedMemory::new_padded`], addresses presented to the tile
/// stay *logical* (contiguous), but the conflict counter sees the
/// physical addresses of the Dotsenko padding layout — the standard
/// mitigation that trades `1/w` extra shared memory for conflict
/// freedom on columnar access patterns.
#[derive(Debug, Clone)]
pub struct SharedMemory<T> {
    data: Vec<T>,
    counter: ConflictCounter,
    trace: Trace,
    step: WarpStep,
    padded: bool,
}

impl<T: Copy + Default> SharedMemory<T> {
    /// A zeroed tile of `words` words on the given bank model.
    #[must_use]
    pub fn new(model: BankModel, words: usize) -> Self {
        Self {
            data: vec![T::default(); words],
            counter: ConflictCounter::new(model),
            trace: Trace::disabled(),
            step: WarpStep::idle(model.banks()),
            padded: false,
        }
    }

    /// A tile whose *physical* layout pads one word per `w` logical
    /// words. Callers keep using logical addresses.
    #[must_use]
    pub fn new_padded(model: BankModel, words: usize) -> Self {
        Self { padded: true, ..Self::new(model, words) }
    }

    /// True if the tile uses the padded layout.
    #[must_use]
    pub fn is_padded(&self) -> bool {
        self.padded
    }

    #[inline]
    fn physical(&self, addr: usize) -> usize {
        if self.padded {
            pad_address(addr, self.counter.model().banks())
        } else {
            addr
        }
    }

    /// Enable step tracing (for figure rendering / fine-grained tests).
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// The recorded trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Size of the tile in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tile has zero words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bank model.
    #[must_use]
    pub fn model(&self) -> BankModel {
        self.counter.model()
    }

    /// Uncounted bulk initialisation (simulator setup, not kernel work).
    pub fn fill_from(&mut self, src: &[T]) {
        self.data[..src.len()].copy_from_slice(src);
    }

    /// Uncounted read-only view (simulator introspection).
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// One warp read step: lane `i` reads `addrs[i]` (or idles on `None`);
    /// values are written into `out[i]`. Returns the step's metrics.
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::SmemOutOfBounds`] if any lane addresses past
    /// the tile (a corrupted co-rank or offset), or
    /// [`WcmsError::BufferMismatch`] if `out` is shorter than `addrs`.
    pub fn read_step(
        &mut self,
        addrs: &[Option<usize>],
        out: &mut [Option<T>],
    ) -> Result<StepConflicts, WcmsError> {
        if out.len() < addrs.len() {
            return Err(WcmsError::BufferMismatch {
                what: "read_step output",
                need: addrs.len(),
                got: out.len(),
            });
        }
        self.step.clear();
        if self.step.width() < addrs.len() {
            self.step = WarpStep::idle(addrs.len());
        }
        for (lane, addr) in addrs.iter().enumerate() {
            out[lane] = None;
            if let Some(a) = *addr {
                let Some(&v) = self.data.get(a) else {
                    return Err(WcmsError::SmemOutOfBounds { address: a, words: self.data.len() });
                };
                self.step.set(lane, Access::read(self.physical(a)));
                out[lane] = Some(v);
            }
        }
        let s = self.counter.count(&self.step);
        self.trace.record(&self.step, s);
        Ok(s)
    }

    /// One warp write step: lane `i` writes `writes[i] = (addr, value)`.
    /// Returns the step's metrics.
    ///
    /// The tile enforces the DMM's CREW discipline: the machine is
    /// concurrent-read, *exclusive*-write, and the merge kernels never
    /// legitimately double-write an address within one step, so a
    /// collision is always corruption (e.g. an injected co-rank fault).
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::CrewViolation`] if two lanes write the same
    /// address in this step (nothing is stored), or
    /// [`WcmsError::SmemOutOfBounds`] if a lane addresses past the tile.
    pub fn write_step(
        &mut self,
        writes: &[Option<(usize, T)>],
    ) -> Result<StepConflicts, WcmsError> {
        let step_index = self.counter.totals().steps;
        for (i, w) in writes.iter().enumerate() {
            if let Some((a, _)) = *w {
                if a >= self.data.len() {
                    return Err(WcmsError::SmemOutOfBounds { address: a, words: self.data.len() });
                }
                if writes[..i].iter().flatten().any(|&(prev, _)| prev == a) {
                    return Err(WcmsError::CrewViolation { step: step_index, address: a });
                }
            }
        }
        self.step.clear();
        if self.step.width() < writes.len() {
            self.step = WarpStep::idle(writes.len());
        }
        for (lane, w) in writes.iter().enumerate() {
            if let Some((a, v)) = *w {
                self.step.set(lane, Access::write(self.physical(a)));
                self.data[a] = v;
            }
        }
        let s = self.counter.count(&self.step);
        self.trace.record(&self.step, s);
        Ok(s)
    }

    /// Running conflict totals of this tile.
    #[must_use]
    pub fn totals(&self) -> ConflictTotals {
        self.counter.totals()
    }

    /// Return the running totals and reset them (the trace is kept).
    /// Lets a kernel attribute each phase's accesses to its own bucket.
    pub fn drain_totals(&mut self) -> ConflictTotals {
        let t = self.counter.totals();
        self.counter.reset();
        t
    }

    /// Reset counters and trace, keeping the data.
    pub fn reset_counters(&mut self) {
        self.counter.reset();
        self.trace.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smem(words: usize) -> SharedMemory<u32> {
        SharedMemory::new(BankModel::gpu32(), words)
    }

    #[test]
    fn read_step_returns_values_and_counts() -> Result<(), WcmsError> {
        let mut m = smem(64);
        m.fill_from(&(0..64).map(|x| x * 10).collect::<Vec<u32>>());
        let addrs: Vec<Option<usize>> = vec![Some(0), Some(32), None, Some(3)];
        let mut out = vec![None; 4];
        let s = m.read_step(&addrs, &mut out)?;
        assert_eq!(out, vec![Some(0), Some(320), None, Some(30)]);
        // 0 and 32 share bank 0 → 2-way conflict.
        assert_eq!(s.degree, 2);
        assert_eq!(s.active_lanes, 3);
        assert_eq!(m.totals().steps, 1);
        Ok(())
    }

    #[test]
    fn short_output_buffer_is_typed() {
        let mut m = smem(8);
        let mut out = vec![None; 1];
        let err = m.read_step(&[Some(0), Some(1)], &mut out).unwrap_err();
        assert!(matches!(err, WcmsError::BufferMismatch { need: 2, got: 1, .. }), "{err}");
    }

    #[test]
    fn write_step_stores_values() -> Result<(), WcmsError> {
        let mut m = smem(64);
        let s = m.write_step(&[Some((5, 7u32)), Some((6, 8)), None])?;
        assert_eq!(m.as_slice()[5], 7);
        assert_eq!(m.as_slice()[6], 8);
        assert_eq!(s.degree, 1);
        assert_eq!(s.crew_violations, 0);
        Ok(())
    }

    #[test]
    fn crew_violation_detected_on_write_race() {
        let mut m = smem(8);
        let err = m.write_step(&[Some((3, 1u32)), Some((3, 2))]).unwrap_err();
        assert!(matches!(err, WcmsError::CrewViolation { address: 3, .. }), "{err}");
        // Nothing was stored: the tile is untouched.
        assert_eq!(m.as_slice()[3], 0);
    }

    #[test]
    fn trace_records_when_enabled() -> Result<(), WcmsError> {
        let mut m = smem(64);
        m.enable_trace();
        let mut out = vec![None; 2];
        m.read_step(&[Some(0), Some(1)], &mut out)?;
        m.read_step(&[Some(2), None], &mut out)?;
        assert_eq!(m.trace().len(), 2);
        assert_eq!(m.trace().degrees(), vec![1, 1]);
        Ok(())
    }

    #[test]
    fn reset_counters_keeps_data() -> Result<(), WcmsError> {
        let mut m = smem(8);
        m.fill_from(&[9u32; 8]);
        let mut out = vec![None; 1];
        m.read_step(&[Some(0)], &mut out)?;
        m.reset_counters();
        assert_eq!(m.totals(), ConflictTotals::default());
        assert_eq!(m.as_slice()[0], 9);
        Ok(())
    }

    #[test]
    fn padded_tile_defeats_columnar_conflicts() -> Result<(), WcmsError> {
        // Four lanes reading one logical bank column: flat layout → 4-way
        // conflict; padded layout → conflict-free.
        let addrs: Vec<Option<usize>> = (0..4).map(|i| Some(i * 32)).collect();
        let mut out = vec![None; 4];

        let mut flat = smem(256);
        assert_eq!(flat.read_step(&addrs, &mut out)?.degree, 4);

        let mut padded = SharedMemory::<u32>::new_padded(BankModel::gpu32(), 256);
        assert!(padded.is_padded());
        assert_eq!(padded.read_step(&addrs, &mut out)?.degree, 1);
        Ok(())
    }

    #[test]
    fn padded_tile_keeps_logical_data() -> Result<(), WcmsError> {
        let mut m = SharedMemory::<u32>::new_padded(BankModel::gpu32(), 64);
        m.write_step(&[Some((33, 7u32))])?;
        let mut out = vec![None; 1];
        m.read_step(&[Some(33)], &mut out)?;
        assert_eq!(out[0], Some(7));
        assert_eq!(m.as_slice()[33], 7);
        Ok(())
    }

    #[test]
    fn out_of_bounds_read_is_typed() {
        let mut m = smem(4);
        let mut out = vec![None; 1];
        let err = m.read_step(&[Some(4)], &mut out).unwrap_err();
        assert!(matches!(err, WcmsError::SmemOutOfBounds { address: 4, words: 4 }), "{err}");
        let err = m.write_step(&[Some((9, 1u32))]).unwrap_err();
        assert!(matches!(err, WcmsError::SmemOutOfBounds { address: 9, .. }), "{err}");
    }
}
