//! Key types the simulated sort can handle.
//!
//! The paper's experiments use 4-byte integers; real Thrust sorts any
//! comparable type. [`GpuKey`] captures what the simulator needs: a
//! total order, a word width for traffic accounting, and a monotone
//! embedding of the adversary's `u32` ranks so that worst-case
//! permutations carry over to every key type unchanged (the construction
//! only constrains the *order* of elements, never their values).
//!
//! Bank model for wide keys: an 8-byte key occupies one *logical* bank
//! slot (addr mod w), matching Kepler's 8-byte bank mode; on newer
//! architectures a 64-bit access is two 32-bit phases with the same
//! per-phase conflict structure, so the degree accounting is identical
//! up to a constant factor of 2 that the cost model absorbs in
//! `WORD_BYTES`.

/// A sortable key the simulator can move through its memory system.
pub trait GpuKey: Copy + Ord + Default + Send + Sync + 'static {
    /// Bytes per key in device memory (drives sector accounting).
    const WORD_BYTES: usize;

    /// Monotone embedding of a rank `0 ≤ r < 2³²` into the key space:
    /// `r < s` must imply `from_rank(r) < from_rank(s)`.
    fn from_rank(rank: u32) -> Self;

    /// The largest key value (the padding sentinel for ragged sizes).
    fn max_value() -> Self;

    /// The key's raw bit pattern, right-aligned in a `u64` (only the low
    /// `8 · WORD_BYTES` bits are meaningful). Used for order-independent
    /// fingerprints and single-event-upset simulation — it carries *no*
    /// ordering semantics.
    fn to_bits(self) -> u64;

    /// Inverse of [`GpuKey::to_bits`]: `from_bits(k.to_bits()) == k` for
    /// every key `k` (bits above `8 · WORD_BYTES` are ignored).
    fn from_bits(bits: u64) -> Self;
}

impl GpuKey for u32 {
    #[inline]
    fn max_value() -> Self {
        u32::MAX
    }

    const WORD_BYTES: usize = 4;

    #[inline]
    fn from_rank(rank: u32) -> Self {
        rank
    }

    #[inline]
    fn to_bits(self) -> u64 {
        u64::from(self)
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as u32
    }
}

impl GpuKey for u64 {
    #[inline]
    fn max_value() -> Self {
        u64::MAX
    }

    const WORD_BYTES: usize = 8;

    #[inline]
    fn from_rank(rank: u32) -> Self {
        // Spread ranks across the full 64-bit range (order-preserving).
        u64::from(rank) << 20
    }

    #[inline]
    fn to_bits(self) -> u64 {
        self
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl GpuKey for i32 {
    #[inline]
    fn max_value() -> Self {
        i32::MAX
    }

    const WORD_BYTES: usize = 4;

    #[inline]
    fn from_rank(rank: u32) -> Self {
        // Map 0..2³² monotonically onto i32::MIN..=i32::MAX.
        (rank ^ 0x8000_0000) as i32
    }

    #[inline]
    fn to_bits(self) -> u64 {
        u64::from(self as u32)
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as u32 as i32
    }
}

impl GpuKey for i64 {
    #[inline]
    fn max_value() -> Self {
        i64::MAX
    }

    const WORD_BYTES: usize = 8;

    #[inline]
    fn from_rank(rank: u32) -> Self {
        i64::from(rank) - (1i64 << 31)
    }

    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_monotone<K: GpuKey>() {
        let samples = [0u32, 1, 2, 100, 65_535, 1 << 20, u32::MAX / 2, u32::MAX - 1, u32::MAX];
        for w in samples.windows(2) {
            assert!(K::from_rank(w[0]) < K::from_rank(w[1]), "ranks {} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn embeddings_are_monotone() {
        check_monotone::<u32>();
        check_monotone::<u64>();
        check_monotone::<i32>();
        check_monotone::<i64>();
    }

    #[test]
    fn signed_embedding_covers_negative_half() {
        assert_eq!(<i32 as GpuKey>::from_rank(0), i32::MIN);
        assert_eq!(<i32 as GpuKey>::from_rank(u32::MAX), i32::MAX);
        assert!(<i64 as GpuKey>::from_rank(0) < 0);
    }

    #[test]
    fn word_bytes() {
        assert_eq!(<u32 as GpuKey>::WORD_BYTES, 4);
        assert_eq!(<u64 as GpuKey>::WORD_BYTES, 8);
    }
}
