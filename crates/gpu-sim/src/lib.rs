//! # `wcms-gpu-sim` — a warp-lockstep GPU memory simulator
//!
//! The paper's experiments ran on physical Nvidia GPUs (a Quadro M4000 and
//! an RTX 2080 Ti) with bank conflicts measured by Nvidia's profilers.
//! This crate is the software substitute: a deterministic simulator of the
//! two memory systems that the pairwise merge sort exercises, built on the
//! CREW DMM model from [`wcms_dmm`] (the exact model the paper's analysis
//! uses):
//!
//! * [`smem::SharedMemory`] — a banked shared-memory tile. Every warp
//!   step is charged its serialization cost (*degree* = max distinct
//!   addresses per bank), matching the profiler metric the paper records
//!   (`l1tex__data_bank_conflicts`).
//! * [`gmem::GlobalMemory`] — device memory with a 32-byte-sector
//!   coalescing model; counts sectors/transactions per warp access, the
//!   quantity behind the `A_g` term of Karsin et al.'s analysis.
//! * [`device`] — parameter presets for the paper's GPUs (plus the
//!   GTX 770 of the prior work) and a generic device.
//! * [`occupancy`] — the resident-block/occupancy calculation the paper
//!   performs in §IV-A (75% vs. 100% occupancy of the two Thrust tunings).
//! * [`cost`] — a documented cycle cost model translating measured
//!   counters into estimated runtime; used only for figure *shapes*,
//!   never for the conflict counts themselves.
//! * [`counters`] — per-kernel and per-sort counter bundles.
//! * [`fault`] — deterministic (seeded) fault injection: tile bit-flips,
//!   co-rank corruption and dataset truncation for resilience testing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod counters;
pub mod device;
pub mod fault;
pub mod gmem;
pub mod key;
pub mod occupancy;
pub mod smem;

pub use cost::{CostModel, TimeBreakdown};
pub use counters::{FaultCounters, KernelCounters, SortCounters};
pub use device::DeviceSpec;
pub use fault::{FaultConfig, FaultInjector};
pub use gmem::{scalar_traffic, tile_traffic, tile_traffic_words, GlobalMemory, GlobalTotals};
pub use key::GpuKey;
pub use occupancy::Occupancy;
pub use smem::SharedMemory;
