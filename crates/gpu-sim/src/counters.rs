//! Counter bundles aggregated across kernels and merge rounds.

use wcms_dmm::ConflictTotals;

use crate::gmem::GlobalTotals;

/// All traffic of one kernel launch (or any additive unit of work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct KernelCounters {
    /// Shared-memory conflict totals.
    pub shared: ConflictTotals,
    /// Global-memory traffic totals.
    pub global: GlobalTotals,
}

impl KernelCounters {
    /// Merge counters from an independent kernel (parallel-reducible).
    pub fn merge(&mut self, other: &KernelCounters) {
        self.shared.merge(&other.shared);
        self.global.merge(&other.global);
    }

    /// Add this bundle to `metrics` under `{prefix}_…` counter names —
    /// the bridge from per-kernel counts to the session-wide metrics
    /// registry (`{prefix}_conflict_extra_cycles_total` is the number
    /// the paper's figures plot).
    pub fn observe(&self, metrics: &wcms_obs::MetricsRegistry, prefix: &str) {
        metrics.counter(format!("{prefix}_shared_steps_total")).add(self.shared.steps as u64);
        metrics.counter(format!("{prefix}_shared_cycles_total")).add(self.shared.cycles as u64);
        metrics
            .counter(format!("{prefix}_conflict_extra_cycles_total"))
            .add(self.shared.extra_cycles as u64);
        metrics.counter(format!("{prefix}_gmem_requests_total")).add(self.global.requests as u64);
        metrics.counter(format!("{prefix}_gmem_sectors_total")).add(self.global.sectors as u64);
    }
}

/// Counters of a full sort: the base-case kernel plus each global merge
/// round.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SortCounters {
    /// The base-case (block sort) kernel.
    pub base: KernelCounters,
    /// One entry per global merge round, in execution order.
    pub rounds: Vec<KernelCounters>,
}

impl SortCounters {
    /// Sum of the base case and all rounds.
    #[must_use]
    pub fn aggregate(&self) -> KernelCounters {
        let mut total = self.base;
        for r in &self.rounds {
            total.merge(r);
        }
        total
    }

    /// Number of global merge rounds performed.
    #[must_use]
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total bank-conflict *cycles* per element for an `n`-element sort
    /// (the y-axis of the paper's Fig. 6, up to the profiler's unit).
    #[must_use]
    pub fn conflict_cycles_per_element(&self, n: usize) -> f64 {
        assert!(n > 0);
        self.aggregate().shared.extra_cycles as f64 / n as f64
    }
}

/// Bookkeeping of injected faults and the recovery work they triggered.
///
/// Maintained by whichever driver wires a
/// [`crate::fault::FaultInjector`] through a kernel pipeline (the
/// resilient sort driver in `wcms-mergesort`); parallel-reducible like
/// every other counter bundle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultCounters {
    /// Tile bit-flip faults that fired.
    pub tile_faults: usize,
    /// Individual bits flipped across all tile faults.
    pub bits_flipped: usize,
    /// Co-rank corruption faults that fired.
    pub corank_faults: usize,
    /// Faults *detected* — by a typed kernel error or a failed
    /// round-level sortedness/permutation check. Can be lower than the
    /// injected total: a flip in data no block reads is harmless.
    pub detected: usize,
    /// Retries performed after a detection.
    pub retries: usize,
    /// Work units degraded to the CPU reference path after the retry
    /// budget ran out.
    pub cpu_fallbacks: usize,
}

impl FaultCounters {
    /// Fold in the counters of an independent work unit.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.tile_faults += other.tile_faults;
        self.bits_flipped += other.bits_flipped;
        self.corank_faults += other.corank_faults;
        self.detected += other.detected;
        self.retries += other.retries;
        self.cpu_fallbacks += other.cpu_fallbacks;
    }

    /// True if any fault fired (whether or not it was detected).
    #[must_use]
    pub fn any_injected(&self) -> bool {
        self.tile_faults > 0 || self.corank_faults > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(cycles: usize, steps: usize) -> ConflictTotals {
        ConflictTotals { steps, cycles, extra_cycles: cycles - steps, ..Default::default() }
    }

    #[test]
    fn kernel_merge_adds_fields() {
        let mut a = KernelCounters {
            shared: shared(10, 5),
            global: GlobalTotals { requests: 1, sectors: 4, accesses: 32 },
        };
        let b = KernelCounters {
            shared: shared(4, 4),
            global: GlobalTotals { requests: 2, sectors: 8, accesses: 64 },
        };
        a.merge(&b);
        assert_eq!(a.shared.cycles, 14);
        assert_eq!(a.shared.steps, 9);
        assert_eq!(a.global.sectors, 12);
    }

    #[test]
    fn sort_aggregate_includes_base_and_rounds() {
        let k = |c| KernelCounters { shared: shared(c, 1), ..Default::default() };
        let s = SortCounters { base: k(3), rounds: vec![k(5), k(7)] };
        assert_eq!(s.aggregate().shared.cycles, 15);
        assert_eq!(s.num_rounds(), 2);
    }

    #[test]
    fn observe_exports_every_counter_under_the_prefix() {
        let k = KernelCounters {
            shared: shared(14, 9),
            global: GlobalTotals { requests: 2, sectors: 12, accesses: 64 },
        };
        let metrics = wcms_obs::MetricsRegistry::new();
        k.observe(&metrics, "sort");
        k.observe(&metrics, "sort"); // counters accumulate
        assert_eq!(metrics.counter("sort_shared_steps_total").get(), 18);
        assert_eq!(metrics.counter("sort_shared_cycles_total").get(), 28);
        assert_eq!(metrics.counter("sort_conflict_extra_cycles_total").get(), 10);
        assert_eq!(metrics.counter("sort_gmem_requests_total").get(), 4);
        assert_eq!(metrics.counter("sort_gmem_sectors_total").get(), 24);
    }

    #[test]
    fn conflicts_per_element() {
        let s = SortCounters {
            base: KernelCounters { shared: shared(300, 100), ..Default::default() },
            rounds: vec![],
        };
        assert!((s.conflict_cycles_per_element(100) - 2.0).abs() < 1e-12);
    }
}
