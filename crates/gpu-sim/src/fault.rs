//! Deterministic fault injection for resilience testing.
//!
//! Real GPU runs fail in ways the paper's experiments silently retried
//! around: single-event upsets in shared-memory tiles, torn reads of the
//! Merge Path partition array, truncated dataset files. This module
//! simulates those failures *reproducibly*: every fault decision is a
//! pure function of the injector's seed and the coordinates of the work
//! unit (`round`, `block`, `attempt`), so a failing run replays
//! bit-identically under the same seed — the property that makes fault
//! bugs debuggable at all.
//!
//! The injector is stateless (all methods take `&self`); recovery
//! bookkeeping lives in [`crate::counters::FaultCounters`], maintained by
//! whoever drives the injector (the resilient sort driver in
//! `wcms-mergesort`).
//!
//! Keying faults by `attempt` is what makes *retry* a meaningful
//! recovery strategy: a fault that fires at attempt 0 usually does not
//! fire at attempt 1, exactly like a transient hardware upset. Setting a
//! rate to `1.0` models a *hard* fault that retries cannot clear — the
//! path that exercises CPU degradation.

use crate::key::GpuKey;

/// SplitMix64's finalizer: a high-quality 64-bit mixing permutation
/// (public-domain reference constants). All fault decisions and the
/// workspace's order-independent fingerprints are built on it.
#[must_use]
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The three places a simulated fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Bit-flips in the keys a block loads into its shared-memory tile.
    SharedTile,
    /// Corruption of a block's Merge Path co-rank pair (a faulty
    /// partition kernel, or a torn read of the partition array).
    Corank,
    /// Truncation of an on-disk dataset (a torn write / partial copy).
    Dataset,
}

impl FaultSite {
    /// Domain-separation salt so the same coordinates never correlate
    /// across sites.
    fn salt(self) -> u64 {
        match self {
            FaultSite::SharedTile => 0x7411_E000,
            FaultSite::Corank => 0xC0_4A4C,
            FaultSite::Dataset => 0xDA_7A5E,
        }
    }
}

/// Fault rates and the seed that makes them reproducible.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per
/// (site, round, block, attempt); `0.0` disables a site entirely and
/// `1.0` makes it fire on every attempt (a hard fault).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault stream. Two injectors with the same config make
    /// identical decisions everywhere.
    pub seed: u64,
    /// Probability that a block's tile load suffers bit-flips.
    pub tile_bitflip_rate: f64,
    /// Probability that a block's co-rank pair is corrupted.
    pub corank_rate: f64,
    /// Probability that a dataset read sees a truncated file.
    pub truncate_rate: f64,
    /// Bits flipped per fired tile fault (≥ 1; default 1, the classic
    /// single-event upset).
    pub flips_per_fault: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            tile_bitflip_rate: 0.0,
            corank_rate: 0.0,
            truncate_rate: 0.0,
            flips_per_fault: 1,
        }
    }
}

/// A seeded, stateless fault oracle.
///
/// ```
/// use wcms_gpu_sim::fault::{FaultConfig, FaultInjector};
///
/// let inj = FaultInjector::new(FaultConfig {
///     seed: 42,
///     tile_bitflip_rate: 0.5,
///     ..FaultConfig::default()
/// });
/// // Decisions are reproducible:
/// assert_eq!(inj.tile_fault_at(1, 3, 0), inj.tile_fault_at(1, 3, 0));
/// // A disabled injector never fires:
/// assert!(!FaultInjector::disabled().tile_fault_at(1, 3, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

impl FaultInjector {
    /// An injector with the given rates and seed.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector { cfg }
    }

    /// The no-fault injector: every rate zero, nothing ever fires.
    /// Driving the resilient sort with it is bit-identical to the plain
    /// driver (the acceptance property of the fault subsystem).
    #[must_use]
    pub fn disabled() -> Self {
        FaultInjector { cfg: FaultConfig::default() }
    }

    /// The configuration this injector was built with.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True if any site has a non-zero rate.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.cfg.tile_bitflip_rate > 0.0
            || self.cfg.corank_rate > 0.0
            || self.cfg.truncate_rate > 0.0
    }

    /// The deterministic word stream for one work unit: `lane` indexes
    /// independent draws within the same (site, round, block, attempt).
    fn word(&self, site: FaultSite, round: usize, block: usize, attempt: usize, lane: u64) -> u64 {
        let mut h = splitmix64(self.cfg.seed ^ site.salt());
        h = splitmix64(h ^ round as u64);
        h = splitmix64(h ^ block as u64);
        h = splitmix64(h ^ attempt as u64);
        splitmix64(h ^ lane)
    }

    /// Bernoulli draw at `rate` from lane 0 of the unit's word stream.
    fn fires(
        &self,
        rate: f64,
        site: FaultSite,
        round: usize,
        block: usize,
        attempt: usize,
    ) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits → a double in [0, 1).
        let u = (self.word(site, round, block, attempt, 0) >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    /// Does this (round, block, attempt) suffer a tile bit-flip fault?
    /// Round 0 is the base-case kernel, rounds ≥ 1 the global merges.
    #[must_use]
    pub fn tile_fault_at(&self, round: usize, block: usize, attempt: usize) -> bool {
        self.fires(self.cfg.tile_bitflip_rate, FaultSite::SharedTile, round, block, attempt)
    }

    /// Does this (round, block, attempt) suffer co-rank corruption?
    #[must_use]
    pub fn corank_fault_at(&self, round: usize, block: usize, attempt: usize) -> bool {
        self.fires(self.cfg.corank_rate, FaultSite::Corank, round, block, attempt)
    }

    /// Flip `flips_per_fault` deterministic bits in `keys` (positions and
    /// bit indices drawn from the unit's word stream). Call only after
    /// [`FaultInjector::tile_fault_at`] said the fault fires; returns the
    /// number of bits flipped (0 for an empty slice).
    pub fn flip_tile_bits<K: GpuKey>(
        &self,
        keys: &mut [K],
        round: usize,
        block: usize,
        attempt: usize,
    ) -> usize {
        if keys.is_empty() {
            return 0;
        }
        let flips = self.cfg.flips_per_fault.max(1);
        let key_bits = (8 * K::WORD_BYTES) as u64;
        for f in 0..flips {
            let idx = self.word(FaultSite::SharedTile, round, block, attempt, 1 + 2 * f as u64)
                as usize
                % keys.len();
            let bit = self.word(FaultSite::SharedTile, round, block, attempt, 2 + 2 * f as u64)
                % key_bits;
            keys[idx] = K::from_bits(keys[idx].to_bits() ^ (1 << bit));
        }
        flips
    }

    /// Deterministically perturb a correct co-rank pair. The perturbation
    /// is small (±1..=4 on one endpoint) so it sometimes survives the
    /// kernel's structural validation and must be caught by the
    /// round-level sortedness/permutation checks instead — the harder
    /// detection path.
    #[must_use]
    pub fn corrupt_corank(
        &self,
        corank: (usize, usize),
        round: usize,
        block: usize,
        attempt: usize,
    ) -> (usize, usize) {
        let w = self.word(FaultSite::Corank, round, block, attempt, 1);
        let delta = 1 + (w & 3) as usize;
        let (start, end) = corank;
        match (w >> 2) & 3 {
            0 => (start.saturating_sub(delta), end),
            1 => (start + delta, end),
            2 => (start, end.saturating_sub(delta)),
            _ => (start, end + delta),
        }
    }

    /// If the dataset fault fires for `tag` (e.g. a hash of the file
    /// name), return the byte length the reader will actually see — a
    /// uniformly chosen truncation point in `[0, len)`. `None` means the
    /// read goes through intact.
    #[must_use]
    pub fn truncate_dataset(&self, len: usize, tag: u64) -> Option<usize> {
        if len == 0 || !self.fires(self.cfg.truncate_rate, FaultSite::Dataset, 0, 0, tag as usize) {
            return None;
        }
        Some(self.word(FaultSite::Dataset, 0, 0, tag as usize, 1) as usize % len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(seed: u64, tile: f64, corank: f64, trunc: f64) -> FaultInjector {
        FaultInjector::new(FaultConfig {
            seed,
            tile_bitflip_rate: tile,
            corank_rate: corank,
            truncate_rate: trunc,
            flips_per_fault: 1,
        })
    }

    #[test]
    fn disabled_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for round in 0..4 {
            for block in 0..64 {
                assert!(!inj.tile_fault_at(round, block, 0));
                assert!(!inj.corank_fault_at(round, block, 0));
            }
        }
        assert_eq!(inj.truncate_dataset(1024, 7), None);
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = injector(1, 0.5, 0.5, 0.5);
        let b = injector(1, 0.5, 0.5, 0.5);
        let c = injector(2, 0.5, 0.5, 0.5);
        let mut diverged = false;
        for block in 0..256 {
            assert_eq!(a.tile_fault_at(1, block, 0), b.tile_fault_at(1, block, 0));
            diverged |= a.tile_fault_at(1, block, 0) != c.tile_fault_at(1, block, 0);
        }
        assert!(diverged, "different seeds must give different fault patterns");
    }

    #[test]
    fn rate_one_is_a_hard_fault_and_rates_are_roughly_honoured() {
        let hard = injector(9, 1.0, 0.0, 0.0);
        for attempt in 0..8 {
            assert!(hard.tile_fault_at(1, 0, attempt));
        }
        let soft = injector(9, 0.25, 0.0, 0.0);
        let fired = (0..4000).filter(|&b| soft.tile_fault_at(1, b, 0)).count();
        assert!((800..1200).contains(&fired), "~25% of 4000 expected, got {fired}");
    }

    #[test]
    fn attempts_decorrelate_faults() {
        // At rate 0.5 some block that faults at attempt 0 must clear at
        // attempt 1 — the property that makes retry a recovery strategy.
        let inj = injector(3, 0.5, 0.0, 0.0);
        let cleared =
            (0..64).any(|block| inj.tile_fault_at(1, block, 0) && !inj.tile_fault_at(1, block, 1));
        assert!(cleared);
    }

    #[test]
    fn flip_changes_exactly_the_configured_bits() {
        let inj = injector(11, 1.0, 0.0, 0.0);
        let orig: Vec<u32> = (0..48).collect();
        let mut keys = orig.clone();
        let flipped = inj.flip_tile_bits(&mut keys, 0, 0, 0);
        assert_eq!(flipped, 1);
        let differing: Vec<usize> = (0..48).filter(|&i| keys[i] != orig[i]).collect();
        assert_eq!(differing.len(), 1);
        let i = differing[0];
        assert_eq!((keys[i] ^ orig[i]).count_ones(), 1);
        // Replay is bit-identical.
        let mut again = orig.clone();
        inj.flip_tile_bits(&mut again, 0, 0, 0);
        assert_eq!(again, keys);
    }

    #[test]
    fn corank_perturbation_changes_the_pair() {
        let inj = injector(5, 0.0, 1.0, 0.0);
        let mut changed = 0;
        for block in 0..32 {
            let c = inj.corrupt_corank((100, 120), 2, block, 0);
            assert_ne!(c, (100, 120));
            assert_eq!(c, inj.corrupt_corank((100, 120), 2, block, 0));
            changed += 1;
        }
        assert_eq!(changed, 32);
        // Saturation keeps the pair in usize range at the origin.
        let _ = inj.corrupt_corank((0, 0), 2, 0, 0);
    }

    #[test]
    fn truncation_point_is_in_range() {
        let inj = injector(7, 0.0, 0.0, 1.0);
        for tag in 0..32u64 {
            let cut = inj.truncate_dataset(1000, tag).expect("rate 1.0 always fires");
            assert!(cut < 1000);
        }
        assert_eq!(inj.truncate_dataset(0, 1), None, "empty files cannot be truncated");
    }
}
