//! Global (device) memory with a sector-based coalescing model.
//!
//! Since compute capability 5.x, an Nvidia L1TEX global access is broken
//! into 32-byte *sectors*; a warp's 32 requests cost as many transactions
//! as distinct sectors they touch. Fully coalesced word accesses by a warp
//! (lane `i` → word `base + i`) touch `32·4 / 32 = 4` sectors; a strided or
//! scattered pattern touches up to 32.
//!
//! The counter tracks *requests* (warp-level instructions), *sectors*
//! (transactions — the `A_g` unit of Karsin et al. up to a constant), and
//! raw *word accesses*. Word size is taken as 4 bytes (the paper sorts
//! 4-byte integers).

use wcms_error::WcmsError;

/// Running totals of global-memory traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GlobalTotals {
    /// Warp-level access instructions issued.
    pub requests: usize,
    /// 32-byte sectors transferred.
    pub sectors: usize,
    /// Individual word accesses.
    pub accesses: usize,
}

impl GlobalTotals {
    /// Merge totals from an independent kernel (associative/commutative).
    pub fn merge(&mut self, other: &GlobalTotals) {
        self.requests += other.requests;
        self.sectors += other.sectors;
        self.accesses += other.accesses;
    }

    /// Bytes transferred (sectors × 32).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.sectors * 32
    }

    /// Average sectors per request (4 = perfectly coalesced 4-byte words,
    /// 32 = fully scattered). `None` before any request.
    #[must_use]
    pub fn sectors_per_request(&self) -> Option<f64> {
        (self.requests > 0).then(|| self.sectors as f64 / self.requests as f64)
    }
}

/// Traffic of a warp-granular coalesced transfer of `count` contiguous
/// 4-byte words starting at word `offset`, issued by lanes of width
/// `warp`. Standalone so that parallel per-block simulations can account
/// traffic without sharing a [`GlobalMemory`].
#[must_use]
pub fn tile_traffic(offset: usize, count: usize, warp: usize) -> GlobalTotals {
    tile_traffic_words(offset, count, warp, 4)
}

/// As [`tile_traffic`] for keys of `word_bytes` bytes (8-byte keys touch
/// twice the sectors of 4-byte keys).
///
/// # Panics
///
/// Panics if `word_bytes` is 0 or exceeds the 32-byte sector.
#[must_use]
pub fn tile_traffic_words(
    offset: usize,
    count: usize,
    warp: usize,
    word_bytes: usize,
) -> GlobalTotals {
    assert!((1..=32).contains(&word_bytes), "word must fit a sector");
    let words_per_sector = 32 / word_bytes;
    let mut totals = GlobalTotals { requests: 0, sectors: 0, accesses: count };
    let mut pos = 0usize;
    while pos < count {
        let lanes = (count - pos).min(warp);
        let first = (offset + pos) / words_per_sector;
        let last = (offset + pos + lanes - 1) / words_per_sector;
        totals.requests += 1;
        totals.sectors += last - first + 1;
        pos += lanes;
    }
    totals
}

/// Traffic of one scalar (single-lane) word access.
#[must_use]
pub fn scalar_traffic() -> GlobalTotals {
    GlobalTotals { requests: 1, sectors: 1, accesses: 1 }
}

/// Device memory with coalescing-aware accounting.
#[derive(Debug, Clone)]
pub struct GlobalMemory<T> {
    data: Vec<T>,
    totals: GlobalTotals,
    word_bytes: usize,
    sector_bytes: usize,
    scratch: Vec<usize>,
}

impl<T: Copy> GlobalMemory<T> {
    /// Wrap `data` as device memory (4-byte words, 32-byte sectors).
    #[must_use]
    pub fn new(data: Vec<T>) -> Self {
        Self {
            data,
            totals: GlobalTotals::default(),
            word_bytes: 4,
            sector_bytes: 32,
            scratch: Vec::with_capacity(64),
        }
    }

    /// Number of words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Uncounted view (verification / host side).
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consume, returning the underlying buffer.
    #[must_use]
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }

    fn charge(&mut self, addrs: impl Iterator<Item = usize>) {
        self.scratch.clear();
        let words_per_sector = self.sector_bytes / self.word_bytes;
        self.scratch.extend(addrs.map(|a| a / words_per_sector));
        if self.scratch.is_empty() {
            return;
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        self.totals.requests += 1;
        self.totals.sectors += self.scratch.len();
    }

    /// One warp read: lane `i` reads word `addrs[i]` into `out[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`WcmsError::BufferMismatch`] if `out` is shorter than
    /// `addrs`; nothing is read or charged in that case.
    pub fn read_warp(
        &mut self,
        addrs: &[Option<usize>],
        out: &mut [Option<T>],
    ) -> Result<(), WcmsError> {
        if out.len() < addrs.len() {
            return Err(WcmsError::BufferMismatch {
                what: "read_warp output",
                need: addrs.len(),
                got: out.len(),
            });
        }
        let mut n = 0usize;
        for (lane, addr) in addrs.iter().enumerate() {
            out[lane] = addr.map(|a| self.data[a]);
            n += usize::from(addr.is_some());
        }
        self.totals.accesses += n;
        self.charge(addrs.iter().flatten().copied());
        Ok(())
    }

    /// One warp write: lane `i` writes `writes[i] = (addr, value)`.
    pub fn write_warp(&mut self, writes: &[Option<(usize, T)>]) {
        let mut n = 0usize;
        for w in writes.iter().flatten() {
            self.data[w.0] = w.1;
            n += 1;
        }
        self.totals.accesses += n;
        self.charge(writes.iter().flatten().map(|w| w.0));
    }

    /// Coalesced tile load: a block of `threads` lanes reads
    /// `src[offset .. offset + count]` with the canonical round-robin
    /// pattern (lane `i` of pass `k` reads word `offset + k·threads + i`),
    /// charging one request per warp pass. Returns the words read.
    pub fn read_tile(
        &mut self,
        offset: usize,
        count: usize,
        threads: usize,
        warp: usize,
    ) -> Vec<T> {
        let out = self.data[offset..offset + count].to_vec();
        self.totals.accesses += count;
        // Charge warp-granular requests without materialising lane vectors.
        let mut pos = 0usize;
        while pos < count {
            let lanes = (count - pos).min(warp.min(threads));
            self.charge(offset + pos..offset + pos + lanes);
            pos += lanes;
        }
        out
    }

    /// Coalesced tile store: inverse of [`GlobalMemory::read_tile`].
    pub fn write_tile(&mut self, offset: usize, values: &[T], threads: usize, warp: usize) {
        self.data[offset..offset + values.len()].copy_from_slice(values);
        self.totals.accesses += values.len();
        let count = values.len();
        let mut pos = 0usize;
        while pos < count {
            let lanes = (count - pos).min(warp.min(threads));
            self.charge(offset + pos..offset + pos + lanes);
            pos += lanes;
        }
    }

    /// A single-thread scalar read (binary-search probes during the
    /// block-partitioning stage): one request, one sector.
    #[must_use]
    pub fn read_scalar(&mut self, addr: usize) -> T {
        self.totals.accesses += 1;
        self.charge(std::iter::once(addr));
        self.data[addr]
    }

    /// Traffic totals.
    #[must_use]
    pub fn totals(&self) -> GlobalTotals {
        self.totals
    }

    /// Reset counters, keeping the data.
    pub fn reset_counters(&mut self) {
        self.totals = GlobalTotals::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_warp_read_is_four_sectors() -> Result<(), WcmsError> {
        let mut g = GlobalMemory::new((0u32..1024).collect());
        let addrs: Vec<Option<usize>> = (0..32).map(Some).collect();
        let mut out = vec![None; 32];
        g.read_warp(&addrs, &mut out)?;
        assert_eq!(g.totals().requests, 1);
        // 32 contiguous 4-byte words = 128 bytes = 4 sectors.
        assert_eq!(g.totals().sectors, 4);
        assert_eq!(out[31], Some(31));
        Ok(())
    }

    #[test]
    fn strided_warp_read_is_32_sectors() -> Result<(), WcmsError> {
        let mut g = GlobalMemory::new(vec![0u32; 32 * 64]);
        let addrs: Vec<Option<usize>> = (0..32).map(|i| Some(i * 64)).collect();
        let mut out = vec![None; 32];
        g.read_warp(&addrs, &mut out)?;
        assert_eq!(g.totals().sectors, 32);
        assert_eq!(g.totals().sectors_per_request(), Some(32.0));
        Ok(())
    }

    #[test]
    fn broadcast_read_is_one_sector() -> Result<(), WcmsError> {
        let mut g = GlobalMemory::new(vec![7u32; 64]);
        let addrs: Vec<Option<usize>> = (0..32).map(|_| Some(5)).collect();
        let mut out = vec![None; 32];
        g.read_warp(&addrs, &mut out)?;
        assert_eq!(g.totals().sectors, 1);
        Ok(())
    }

    #[test]
    fn short_output_buffer_is_typed() {
        let mut g = GlobalMemory::new(vec![0u32; 8]);
        let mut out = vec![None; 1];
        let err = g.read_warp(&[Some(0), Some(1)], &mut out).unwrap_err();
        assert!(matches!(err, WcmsError::BufferMismatch { need: 2, got: 1, .. }), "{err}");
        assert_eq!(g.totals(), GlobalTotals::default());
    }

    #[test]
    fn write_warp_updates_data() {
        let mut g = GlobalMemory::new(vec![0u32; 64]);
        g.write_warp(&[Some((0, 1u32)), Some((1, 2)), None]);
        assert_eq!(g.as_slice()[..2], [1, 2]);
        assert_eq!(g.totals().accesses, 2);
    }

    #[test]
    fn tile_roundtrip_counts_warp_requests() {
        let mut g = GlobalMemory::new((0u32..256).collect());
        let tile = g.read_tile(64, 128, 128, 32);
        assert_eq!(tile.len(), 128);
        assert_eq!(tile[0], 64);
        // 128 words in 32-lane passes = 4 requests, each 4 sectors.
        assert_eq!(g.totals().requests, 4);
        assert_eq!(g.totals().sectors, 16);

        g.write_tile(0, &tile, 128, 32);
        assert_eq!(g.as_slice()[0], 64);
        assert_eq!(g.totals().requests, 8);
    }

    #[test]
    fn scalar_read_is_one_sector() {
        let mut g = GlobalMemory::new((0u32..64).collect());
        assert_eq!(g.read_scalar(10), 10);
        assert_eq!(g.totals().requests, 1);
        assert_eq!(g.totals().sectors, 1);
    }

    #[test]
    fn tile_traffic_matches_global_memory() {
        let mut g = GlobalMemory::new((0u32..4096).collect());
        for (offset, count) in [(0usize, 128usize), (64, 128), (5, 100), (7, 31), (0, 1)] {
            g.reset_counters();
            let _ = g.read_tile(offset, count, 256, 32);
            assert_eq!(
                g.totals(),
                tile_traffic(offset, count, 32),
                "offset={offset} count={count}"
            );
        }
    }

    #[test]
    fn scalar_traffic_is_one_sector() {
        assert_eq!(scalar_traffic(), GlobalTotals { requests: 1, sectors: 1, accesses: 1 });
    }

    #[test]
    fn totals_merge() {
        let mut a = GlobalTotals { requests: 1, sectors: 4, accesses: 32 };
        a.merge(&GlobalTotals { requests: 2, sectors: 8, accesses: 64 });
        assert_eq!(a, GlobalTotals { requests: 3, sectors: 12, accesses: 96 });
        assert_eq!(a.bytes(), 12 * 32);
    }

    #[test]
    fn reset_keeps_data() {
        let mut g = GlobalMemory::new(vec![3u32; 8]);
        let _ = g.read_scalar(0);
        g.reset_counters();
        assert_eq!(g.totals(), GlobalTotals::default());
        assert_eq!(g.as_slice()[0], 3);
    }
}
