//! Device parameter presets.
//!
//! The figures in the paper are produced on a Quadro M4000 (compute
//! capability 5.2) and an RTX 2080 Ti (7.5); the conflict-heavy prior work
//! (Karsin et al.) used a GTX 770 (3.0). The numbers below are the
//! published hardware parameters; the two timing constants
//! (`clock_ghz`, `mem_bandwidth_gbs`) feed only the cost model.

/// Static description of a GPU.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Compute capability, e.g. `(7, 5)`.
    pub compute_capability: (u8, u8),
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// CUDA cores per SM (`P = sm_count · cores_per_sm`).
    pub cores_per_sm: usize,
    /// Warp width and shared-memory bank count (32 on all real devices).
    pub warp_size: usize,
    /// Warp schedulers per SM (hardware datum; the cost model drains
    /// shared accesses at one warp access per SM per clock regardless).
    pub schedulers_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Shared memory usable by resident blocks, bytes per SM.
    pub shared_mem_per_sm: usize,
    /// Core clock, GHz (cost model only).
    pub clock_ghz: f64,
    /// Global-memory bandwidth, GB/s (cost model only).
    pub mem_bandwidth_gbs: f64,
    /// Global-memory minimum transaction (sector) size in bytes.
    pub sector_bytes: usize,
}

impl DeviceSpec {
    /// Total physical cores `P`.
    #[must_use]
    pub fn total_cores(&self) -> usize {
        self.sm_count * self.cores_per_sm
    }

    /// Quadro M4000 (Maxwell, cc 5.2): 13 SMs × 128 cores = 1664 cores,
    /// 96 KiB shared memory per SM — the paper's first test GPU.
    #[must_use]
    pub fn quadro_m4000() -> Self {
        Self {
            name: "Quadro M4000",
            compute_capability: (5, 2),
            sm_count: 13,
            cores_per_sm: 128,
            warp_size: 32,
            schedulers_per_sm: 4,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 * 1024,
            clock_ghz: 0.773,
            mem_bandwidth_gbs: 192.0,
            sector_bytes: 32,
        }
    }

    /// RTX 2080 Ti (Turing, cc 7.5): 68 SMs × 64 cores = 4352 cores.
    /// The unified 96 KiB L1/shared is configured as 64 KiB shared +
    /// 32 KiB L1 (the configuration the paper's occupancy arithmetic in
    /// §IV-A uses: 3 × 17 KiB = 51 KiB resident). Turing allows at most
    /// 1024 resident threads per SM.
    #[must_use]
    pub fn rtx_2080_ti() -> Self {
        Self {
            name: "RTX 2080 Ti",
            compute_capability: (7, 5),
            sm_count: 68,
            cores_per_sm: 64,
            warp_size: 32,
            schedulers_per_sm: 4,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 64 * 1024,
            clock_ghz: 1.545,
            mem_bandwidth_gbs: 616.0,
            sector_bytes: 32,
        }
    }

    /// GTX 770 (Kepler, cc 3.0): the GPU of Karsin et al.'s conflict-heavy
    /// experiments, included for the prior-work comparison.
    #[must_use]
    pub fn gtx_770() -> Self {
        Self {
            name: "GTX 770",
            compute_capability: (3, 0),
            sm_count: 8,
            cores_per_sm: 192,
            warp_size: 32,
            schedulers_per_sm: 4,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 48 * 1024,
            clock_ghz: 1.046,
            mem_bandwidth_gbs: 224.0,
            sector_bytes: 32,
        }
    }

    /// A deliberately small synthetic device for fast tests: `w = 32`,
    /// 2 SMs, tiny shared memory.
    #[must_use]
    pub fn test_device() -> Self {
        Self {
            name: "test-device",
            compute_capability: (0, 0),
            sm_count: 2,
            cores_per_sm: 64,
            warp_size: 32,
            schedulers_per_sm: 2,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 4,
            shared_mem_per_sm: 16 * 1024,
            clock_ghz: 1.0,
            mem_bandwidth_gbs: 100.0,
            sector_bytes: 32,
        }
    }

    /// All real presets (for sweeps).
    #[must_use]
    pub fn presets() -> Vec<Self> {
        vec![Self::quadro_m4000(), Self::rtx_2080_ti(), Self::gtx_770()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m4000_matches_paper_description() {
        let d = DeviceSpec::quadro_m4000();
        // "1664 physical processors across 13 SM's … 96 KiB of shared
        // memory per SM" (§IV-A).
        assert_eq!(d.total_cores(), 1664);
        assert_eq!(d.sm_count, 13);
        assert_eq!(d.shared_mem_per_sm, 98304);
        assert_eq!(d.compute_capability, (5, 2));
    }

    #[test]
    fn rtx_matches_paper_description() {
        let d = DeviceSpec::rtx_2080_ti();
        // "4352 physical processors across 68 SM's" (§IV-A); 64 KiB shared
        // config; 1024 resident threads per SM.
        assert_eq!(d.total_cores(), 4352);
        assert_eq!(d.sm_count, 68);
        assert_eq!(d.shared_mem_per_sm, 65536);
        assert_eq!(d.max_threads_per_sm, 1024);
        assert_eq!(d.compute_capability, (7, 5));
    }

    #[test]
    fn gtx770_compute_capability() {
        assert_eq!(DeviceSpec::gtx_770().compute_capability, (3, 0));
    }

    #[test]
    fn all_presets_have_32_wide_warps() {
        for d in DeviceSpec::presets() {
            assert_eq!(d.warp_size, 32, "{}", d.name);
            assert_eq!(d.sector_bytes, 32, "{}", d.name);
        }
    }
}
