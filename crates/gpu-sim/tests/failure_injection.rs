//! Failure injection: deliberately broken kernels must be caught by the
//! simulator's accounting, not silently mis-measured. A kernel that
//! races writes, reads out of bounds, or exceeds occupancy is a bug in
//! the *sort*, and the substrate's job is to surface it.

use wcms_dmm::BankModel;
use wcms_gpu_sim::{DeviceSpec, Occupancy, SharedMemory};

/// Two lanes writing one address in one step is a CREW violation and
/// must be tallied — this is how the test suite proves the merge sort
/// never races (its reports assert `crew_violations == 0`).
#[test]
fn racing_writes_are_tallied_not_ignored() {
    let mut smem = SharedMemory::<u32>::new(BankModel::gpu32(), 64);
    let s = smem.write_step(&[Some((10, 1)), Some((10, 2)), Some((11, 3))]);
    assert_eq!(s.crew_violations, 1);
    assert_eq!(smem.totals().crew_violations, 1);
    // The data ends with one of the written values (arbitrary winner,
    // like real hardware).
    assert!(smem.as_slice()[10] == 1 || smem.as_slice()[10] == 2);
}

/// A read-write race on one address in one step is also a violation.
#[test]
fn read_write_race_is_tallied() {
    let mut smem = SharedMemory::<u32>::new(BankModel::gpu32(), 64);
    let mut out = vec![None; 2];
    let _ = smem.read_step(&[Some(5), None], &mut out);
    let s = smem.write_step(&[None, Some((5, 9))]);
    // Different steps: fine.
    assert_eq!(s.crew_violations, 0);
    // Same step: violation.
    let mut both = SharedMemory::<u32>::new(BankModel::gpu32(), 64);
    both.fill_from(&[0; 64]);
    let step = both.write_step(&[Some((5, 1)), Some((5, 2))]);
    assert_eq!(step.crew_violations, 1);
}

/// Out-of-tile accesses panic loudly (a real kernel would corrupt a
/// neighbouring tile; the simulator refuses).
#[test]
#[should_panic]
fn out_of_bounds_read_panics() {
    let mut smem = SharedMemory::<u32>::new(BankModel::gpu32(), 16);
    let mut out = vec![None; 1];
    let _ = smem.read_step(&[Some(16)], &mut out);
}

/// A kernel whose tile exceeds the device's shared memory cannot launch:
/// occupancy reports it as unschedulable instead of under-counting.
#[test]
fn oversubscribed_tile_is_unschedulable() {
    let device = DeviceSpec::test_device(); // 16 KiB shared per SM
    assert!(Occupancy::compute(&device, 64, 32 * 1024).is_none());
    // …while a fitting tile schedules.
    assert!(Occupancy::compute(&device, 64, 8 * 1024).is_some());
}
