//! Failure injection: deliberately broken kernels must be caught by the
//! simulator's accounting, not silently mis-measured. A kernel that
//! races writes, reads out of bounds, or exceeds occupancy is a bug in
//! the *sort*, and the substrate's job is to surface it.

use wcms_dmm::BankModel;
use wcms_error::WcmsError;
use wcms_gpu_sim::{DeviceSpec, Occupancy, SharedMemory};

/// Two lanes writing one address in one step is a CREW violation and
/// must be refused with a typed error — this is how the driver detects
/// corrupted co-ranks (the merge sort never legitimately double-writes).
#[test]
fn racing_writes_are_refused_not_ignored() {
    let mut smem = SharedMemory::<u32>::new(BankModel::gpu32(), 64);
    let err = smem.write_step(&[Some((10, 1)), Some((10, 2)), Some((11, 3))]).unwrap_err();
    assert!(matches!(err, WcmsError::CrewViolation { address: 10, .. }), "{err}");
    // The step was rejected wholesale: no partial write happened.
    assert_eq!(smem.as_slice()[10], 0);
    assert_eq!(smem.as_slice()[11], 0);
    assert_eq!(smem.totals().steps, 0);
}

/// Reading then writing one address across *different* steps is fine;
/// only same-step write collisions are violations.
#[test]
fn read_then_write_across_steps_is_fine() {
    let mut smem = SharedMemory::<u32>::new(BankModel::gpu32(), 64);
    let mut out = vec![None; 2];
    let _ = smem.read_step(&[Some(5), None], &mut out).unwrap();
    let s = smem.write_step(&[None, Some((5, 9))]).unwrap();
    assert_eq!(s.crew_violations, 0);
    // Same step: refused.
    let mut both = SharedMemory::<u32>::new(BankModel::gpu32(), 64);
    both.fill_from(&[0; 64]);
    assert!(both.write_step(&[Some((5, 1)), Some((5, 2))]).is_err());
}

/// Out-of-tile accesses are refused with a typed error (a real kernel
/// would corrupt a neighbouring tile; the simulator refuses).
#[test]
fn out_of_bounds_read_is_refused() {
    let mut smem = SharedMemory::<u32>::new(BankModel::gpu32(), 16);
    let mut out = vec![None; 1];
    let err = smem.read_step(&[Some(16)], &mut out).unwrap_err();
    assert!(matches!(err, WcmsError::SmemOutOfBounds { address: 16, words: 16 }), "{err}");
}

/// A kernel whose tile exceeds the device's shared memory cannot launch:
/// occupancy reports it as unschedulable instead of under-counting.
#[test]
fn oversubscribed_tile_is_unschedulable() {
    let device = DeviceSpec::test_device(); // 16 KiB shared per SM
    assert!(Occupancy::compute(&device, 64, 32 * 1024).is_err());
    // …while a fitting tile schedules.
    assert!(Occupancy::compute(&device, 64, 8 * 1024).is_ok());
}
