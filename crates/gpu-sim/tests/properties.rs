//! Property-based tests of the simulator substrate: coalescing
//! arithmetic, occupancy monotonicity and cost-model sanity.

use proptest::prelude::*;
use wcms_dmm::ConflictTotals;
use wcms_gpu_sim::{
    tile_traffic, CostModel, DeviceSpec, GlobalMemory, GlobalTotals, KernelCounters, Occupancy,
};

proptest! {
    /// Sector counts of a contiguous transfer are within one sector of
    /// the ideal `count/8` per warp pass, and grow monotonically in
    /// count.
    #[test]
    fn tile_traffic_bounds(offset in 0usize..512, count in 1usize..4096) {
        let t = tile_traffic(offset, count, 32);
        let ideal = count.div_ceil(8);
        prop_assert!(t.sectors >= ideal);
        prop_assert!(t.sectors <= ideal + t.requests, "one extra sector per misaligned request");
        prop_assert_eq!(t.accesses, count);
        prop_assert_eq!(t.requests, count.div_ceil(32));

        let bigger = tile_traffic(offset, count + 32, 32);
        prop_assert!(bigger.sectors >= t.sectors);
    }

    /// tile_traffic agrees with a live GlobalMemory read of the same
    /// shape.
    #[test]
    fn tile_traffic_matches_memory(offset in 0usize..128, count in 1usize..512) {
        let mut g = GlobalMemory::new(vec![0u32; offset + count]);
        let _ = g.read_tile(offset, count, 1024, 32);
        prop_assert_eq!(g.totals(), tile_traffic(offset, count, 32));
    }

    /// Scattered reads cost at least as many sectors as coalesced reads
    /// of the same count.
    #[test]
    fn scatter_never_cheaper(addrs in proptest::collection::vec(0usize..2048, 1..32)) {
        let mut g = GlobalMemory::new(vec![0u32; 2048]);
        let lanes: Vec<Option<usize>> = addrs.iter().copied().map(Some).collect();
        let mut out = vec![None; lanes.len()];
        g.read_warp(&lanes, &mut out).unwrap();
        let scattered = g.totals().sectors;
        let coalesced = tile_traffic(0, addrs.len(), 32).sectors;
        prop_assert!(scattered + 1 >= coalesced);
    }

    /// Occupancy is monotone: more shared memory per block never
    /// increases resident blocks.
    #[test]
    fn occupancy_monotone_in_shared(bytes in 1usize..65536, extra in 0usize..32768) {
        let d = DeviceSpec::rtx_2080_ti();
        let small = Occupancy::compute(&d, 256, bytes);
        let large = Occupancy::compute(&d, 256, bytes + extra);
        match (small, large) {
            (Ok(s), Ok(l)) => prop_assert!(l.blocks_per_sm <= s.blocks_per_sm),
            (Err(_), Ok(_)) => prop_assert!(false, "larger footprint fits but smaller does not"),
            _ => {}
        }
    }

    /// Cost model is monotone in both counter dimensions and never
    /// returns a non-positive time.
    #[test]
    fn cost_monotone(cycles in 1usize..10_000_000, sectors in 1usize..10_000_000) {
        let d = DeviceSpec::quadro_m4000();
        let occ = Occupancy::compute(&d, 512, 30720).unwrap();
        let m = CostModel::default();
        let counters = |c: usize, s: usize| KernelCounters {
            shared: ConflictTotals { steps: c, cycles: c, ..Default::default() },
            global: GlobalTotals { requests: s.div_ceil(4), sectors: s, accesses: s * 8 },
        };
        let base = m.estimate(&d, &occ, &counters(cycles, sectors), 10);
        prop_assert!(base.total_s > 0.0);
        let more_shared = m.estimate(&d, &occ, &counters(cycles * 2, sectors), 10);
        let more_global = m.estimate(&d, &occ, &counters(cycles, sectors * 2), 10);
        prop_assert!(more_shared.total_s >= base.total_s);
        prop_assert!(more_global.total_s >= base.total_s);
    }
}
