//! Property tests pinning the static verifier to the measured backend.
//!
//! The symbolic pass ([`wcms_analyzer::bounds`]) never executes a sort;
//! these tests assert that its verdicts nevertheless match the
//! `AnalyticBackend`'s conflict counters for every parameterisation the
//! paper's constructions cover: all co-prime and power-of-two
//! `E ∈ 2..32`, under both library variants (Thrust and Modern GPU).

use proptest::prelude::*;
use wcms_analyzer::bounds::{classify, verify_bound, BoundCase};
use wcms_analyzer::crosscheck::crosscheck_cell;
use wcms_error::WcmsError;
use wcms_mergesort::params::SortVariant;
use wcms_mergesort::SortParams;

const W: usize = 32;
const B: usize = 64; // smallest admissible block (power of two ≥ 2w)

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn params(e: usize, variant: SortVariant) -> Result<SortParams, WcmsError> {
    Ok(SortParams::new(W, e, B)?.with_variant(variant))
}

fn variant_name(variant: SortVariant) -> &'static str {
    match variant {
        SortVariant::Thrust => "thrust",
        SortVariant::ModernGpu => "mgpu",
    }
}

/// Exhaustive sweep: every co-prime and power-of-two `E ∈ 2..32`, both
/// variants. The symbolic verdict must hold on its own (closed forms)
/// AND the measured merge counters must equal the scaled prediction.
#[test]
fn verdicts_match_backend_for_all_coprime_and_pow2_e() -> Result<(), WcmsError> {
    let mut cells = 0usize;
    for e in 2..W {
        let coprime = gcd(W, e) == 1;
        let pow2 = e.is_power_of_two();
        if !(coprime || pow2) {
            continue;
        }
        let verdict = verify_bound(W, e)?;
        assert!(verdict.holds(), "E={e}: symbolic verdict failed: {:?}", verdict.failures);
        for variant in [SortVariant::Thrust, SortVariant::ModernGpu] {
            let label = format!("{}/E={e}", variant_name(variant));
            let cell = crosscheck_cell(&label, &params(e, variant)?, 1)?;
            assert!(cell.holds(), "{label}: {:?}", cell.failures);
            assert_eq!(
                cell.merge_cycles,
                vec![cell.predicted_cycles],
                "{label}: measured merge cycles must equal the symbolic prediction"
            );
            cells += 1;
        }
    }
    // 15 co-prime odds (3..=31 minus 1) plus {2, 4, 8, 16}, two variants.
    assert_eq!(cells, 38, "sweep must cover every co-prime and power-of-two E twice");
    Ok(())
}

/// The classifier is total and consistent with the arithmetic facts it
/// claims: co-prime odds split by `2E` vs `w`, powers of two get the
/// sorted-equivalent regime, everything else degrades by the shared
/// factor.
#[test]
fn classification_matches_number_theory() {
    for e in 1..W {
        match classify(W, e) {
            BoundCase::SmallOdd => assert!(e % 2 == 1 && e > 1 && 2 * e < W, "E={e}"),
            BoundCase::LargeOdd { r } => {
                assert!(e % 2 == 1 && 2 * e > W, "E={e}");
                assert_eq!(r, W - e, "E={e}");
            }
            BoundCase::PowerOfTwo => assert!(e.is_power_of_two() && e > 1, "E={e}"),
            BoundCase::Sorted { d } => {
                assert!(e == 1 || (e % 2 == 0 && !e.is_power_of_two()), "E={e}");
                assert_eq!(d, gcd(W, e), "E={e}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised spot-checks over the admissible grid: any co-prime or
    /// power-of-two E, either variant, one or two global rounds — the
    /// measured counters always equal the scaled symbolic prediction.
    fn backend_counters_never_drift_from_verdict(
        e in (2usize..32)
            .prop_filter("co-prime or power of two", |&e| gcd(W, e) == 1 || e.is_power_of_two()),
        mgpu in proptest::bool::ANY,
        doublings in 1usize..=2,
    ) {
        let variant = if mgpu { SortVariant::ModernGpu } else { SortVariant::Thrust };
        let label = format!("prop/{}/E={e}", variant_name(variant));
        let p = params(e, variant).unwrap_or_else(|err| panic!("{label}: {err}"));
        let cell = crosscheck_cell(&label, &p, doublings)
            .unwrap_or_else(|err| panic!("{label}: {err}"));
        prop_assert!(cell.holds(), "{}: {:?}", label, cell.failures);
        prop_assert_eq!(cell.rounds, doublings);
        prop_assert_eq!(&cell.merge_cycles, &vec![cell.predicted_cycles; doublings]);
    }
}
