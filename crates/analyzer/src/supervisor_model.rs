//! Pass 2 (model) — the sweep supervisor's concurrency protocol.
//!
//! Models the protocol of `wcms-bench`'s `run_with_budget` /
//! `supervise_cell` / `parallel_map` (PR 3) at the granularity of its
//! real atomic operations: per cell, a worker thread polls a
//! [`wcms_error::CancelToken`], computes, and sends its result over a
//! channel; the supervisor waits with a budget, fires the token on
//! expiry, gives one grace period, drops any late result, and commits
//! exactly one durable outcome per cell (possibly after respawning a
//! fresh attempt with a **fresh** token). The checked properties:
//!
//! * **no double-commit** — each cell's durable record is written once;
//! * **no lost result** — every cell commits, an `Ok` that arrives
//!   before the deadline is committed as `Done`, and a `Timeout` commit
//!   only ever happens after the deadline actually fired;
//! * **no hung join** — every schedule terminates (the explorer reports
//!   any state where no process can step as a deadlock);
//! * **token hygiene** — a worker never observes a cancelled token
//!   unless *its own attempt's* deadline fired (fresh token per
//!   attempt), and late results after the deadline are dropped, never
//!   committed.
//!
//! Every complete schedule's token operations are additionally
//! **replayed against the real `CancelToken`** (via the `model-check`
//! instrumentation in `wcms-error`), proving the model's token
//! semantics and the implementation's observable behaviour agree on
//! every explored interleaving.
//!
//! Deliberately broken protocol variants ([`ProtocolVariant`]) exist so
//! tests can demonstrate the checker detects the bug classes it claims
//! to: committing a late result, and reusing a fired token across
//! attempts.

use crate::interleave::{explore, ExploreConfig, ExploreReport, Model};
use wcms_error::{mc, CancelToken};

/// What a worker sends back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// A measurement.
    Ok,
    /// The worker observed its token and bailed out cooperatively.
    Cancelled,
}

/// The durable per-cell outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Commit {
    /// A result arrived within budget.
    Done,
    /// Replayed from a valid checkpoint.
    FromCheckpoint,
    /// The budget (and any respawns) ran out.
    Timeout,
    /// A cancellation error surfaced as the cell's result.
    Failed,
}

/// Worker behaviours (each step is one atomic action).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerKind {
    /// Polls the token before and after computing, sends `Ok` or
    /// `Cancelled` — the contract `run_with_budget` documents.
    Cooperative,
    /// Never polls; computes and sends `Ok` whenever it gets there.
    /// The supervisor must terminate regardless (abandoning it).
    Uncooperative,
    /// Computes and exits without ever sending (a forced-timeout
    /// attempt used to drive the respawn path).
    Silent,
}

impl WorkerKind {
    /// Script length in atomic steps (the maximum pc).
    fn len(self) -> u8 {
        match self {
            WorkerKind::Cooperative => 4,   // poll, compute, poll, send
            WorkerKind::Uncooperative => 3, // compute, compute, send
            WorkerKind::Silent => 2,        // compute, compute
        }
    }
}

/// The cell's checkpoint situation at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Checkpoint {
    /// No checkpoint: spawn the first attempt immediately.
    None,
    /// A valid record: replay it, never spawn a worker.
    Valid,
    /// A corrupt record: quarantine it, then run the cell fresh.
    Corrupt,
}

/// Correct protocol or a deliberately seeded bug (for checker tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolVariant {
    /// The protocol as implemented in `wcms-bench`.
    Correct,
    /// Bug: a late `Ok` draining during the grace period is committed
    /// as `Done` (violates the budget contract; double-commits when a
    /// timeout was already recorded downstream).
    BuggyLateCommit,
    /// Bug: a respawned attempt reuses the previous attempt's fired
    /// token instead of a fresh one.
    BuggyTokenReuse,
}

/// One cell of a scenario.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Checkpoint situation.
    pub checkpoint: Checkpoint,
    /// Worker kind per attempt (respawn walks this list).
    pub attempts: Vec<WorkerKind>,
}

/// A named protocol configuration to explore exhaustively.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (`cell/cooperative`, `pair/mixed`, …).
    pub name: &'static str,
    /// The cells running concurrently (as under `parallel_map`).
    pub cells: Vec<CellSpec>,
    /// Protocol variant under test.
    pub variant: ProtocolVariant,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SupPc {
    Load,
    Waiting,
    Grace,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Cancel,
    Poll(bool),
}

#[derive(Debug, Clone, Copy)]
struct TraceOp {
    cell: u8,
    attempt: u8,
    op: Op,
}

#[derive(Debug, Clone, Copy)]
struct WorkerState {
    spawned: bool,
    pc: u8,
}

#[derive(Debug, Clone)]
struct CellState {
    token: bool,
    timeout_fired: bool,
    channel: Option<Msg>,
    current_attempt: u8,
    workers: Vec<WorkerState>,
    sup: SupPc,
    commit: Option<Commit>,
    commit_writes: u8,
    leaked: bool,
    quarantined: bool,
}

/// Explorer state for [`SupervisorModel`].
#[derive(Debug, Clone)]
pub struct SupState {
    cells: Vec<CellState>,
    trace: Vec<TraceOp>,
    violation: Option<String>,
}

/// The supervisor protocol as an explorable [`Model`].
///
/// Process ids: cell `i` owns `i·(1 + A)` (its supervisor) and
/// `i·(1 + A) + 1 + k` (its attempt-`k` worker), `A` = max attempts.
#[derive(Debug, Clone)]
pub struct SupervisorModel {
    scenario: Scenario,
    slots: usize, // 1 + max attempts, the per-cell pid stride
}

impl SupervisorModel {
    /// Build the model for one scenario.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        let slots = 1 + scenario.cells.iter().map(|c| c.attempts.len()).max().unwrap_or(1);
        Self { scenario, slots }
    }

    fn kind(&self, cell: usize, attempt: usize) -> WorkerKind {
        self.scenario.cells[cell].attempts[attempt]
    }

    fn commit(s: &mut SupState, cell: usize, kind: Commit) {
        let c = &mut s.cells[cell];
        c.commit_writes += 1;
        if c.commit_writes > 1 {
            s.violation =
                Some(format!("cell {cell}: double commit ({:?} over {:?})", kind, c.commit));
        } else {
            c.commit = Some(kind);
        }
    }

    /// After a timed-out attempt finished its grace handling: respawn
    /// the next attempt or commit the timeout.
    fn after_timeout(&self, s: &mut SupState, cell: usize) {
        let attempts = self.scenario.cells[cell].attempts.len();
        let c = &mut s.cells[cell];
        if usize::from(c.current_attempt) + 1 < attempts {
            c.current_attempt += 1;
            // A fresh attempt gets a fresh token and a fresh channel —
            // unless the token-reuse bug variant is active.
            if self.scenario.variant != ProtocolVariant::BuggyTokenReuse {
                c.token = false;
            }
            c.timeout_fired = false;
            c.channel = None;
            c.workers[usize::from(c.current_attempt)].spawned = true;
            c.sup = SupPc::Waiting;
        } else {
            c.sup = SupPc::Done;
            Self::commit(s, cell, Commit::Timeout);
        }
    }

    fn step_supervisor(&self, s: &mut SupState, cell: usize) {
        match s.cells[cell].sup {
            SupPc::Load => match self.scenario.cells[cell].checkpoint {
                Checkpoint::None => unreachable!("Load pc only with a checkpoint"),
                Checkpoint::Valid => {
                    s.cells[cell].sup = SupPc::Done;
                    Self::commit(s, cell, Commit::FromCheckpoint);
                }
                Checkpoint::Corrupt => {
                    let c = &mut s.cells[cell];
                    c.quarantined = true;
                    c.workers[0].spawned = true;
                    c.sup = SupPc::Waiting;
                }
            },
            SupPc::Waiting => {
                if let Some(msg) = s.cells[cell].channel.take() {
                    // recv within budget: commit the result.
                    if msg == Msg::Cancelled && !s.cells[cell].timeout_fired {
                        s.violation = Some(format!(
                            "cell {cell}: worker reported cancellation but this attempt's \
                             deadline never fired (stale token leaked across attempts)"
                        ));
                    }
                    s.cells[cell].sup = SupPc::Done;
                    Self::commit(
                        s,
                        cell,
                        if msg == Msg::Ok { Commit::Done } else { Commit::Failed },
                    );
                } else {
                    // Budget expiry: fire the token, enter grace.
                    let c = &mut s.cells[cell];
                    c.token = true;
                    c.timeout_fired = true;
                    c.sup = SupPc::Grace;
                    s.trace.push(TraceOp {
                        cell: cell as u8,
                        attempt: s.cells[cell].current_attempt,
                        op: Op::Cancel,
                    });
                }
            }
            SupPc::Grace => {
                if let Some(msg) = s.cells[cell].channel.take() {
                    // A late result during grace: dropped — the budget
                    // is the budget (except under the seeded bug).
                    if self.scenario.variant == ProtocolVariant::BuggyLateCommit && msg == Msg::Ok {
                        s.cells[cell].sup = SupPc::Done;
                        Self::commit(s, cell, Commit::Done);
                        return;
                    }
                    self.after_timeout(s, cell);
                } else {
                    // Grace expired without a word: abandon the worker.
                    s.cells[cell].leaked = true;
                    self.after_timeout(s, cell);
                }
            }
            SupPc::Done => unreachable!("done supervisor is never enabled"),
        }
    }

    fn step_worker(&self, s: &mut SupState, cell: usize, attempt: usize) {
        let kind = self.kind(cell, attempt);
        let pc = s.cells[cell].workers[attempt].pc;
        let mut next = pc + 1;
        match (kind, pc) {
            (WorkerKind::Cooperative, 0 | 2) => {
                let observed = s.cells[cell].token;
                s.trace.push(TraceOp {
                    cell: cell as u8,
                    attempt: attempt as u8,
                    op: Op::Poll(observed),
                });
                if observed {
                    if !s.cells[cell].timeout_fired
                        || usize::from(s.cells[cell].current_attempt) != attempt
                    {
                        s.violation = Some(format!(
                            "cell {cell} attempt {attempt}: observed a cancelled token its \
                             own deadline never fired"
                        ));
                    }
                    // Bail out: jump to the send step with a Cancelled
                    // message (modelled as finishing the script there).
                    if usize::from(s.cells[cell].current_attempt) == attempt {
                        s.cells[cell].channel = Some(Msg::Cancelled);
                    }
                    next = kind.len(); // done
                }
            }
            (WorkerKind::Cooperative, 3) | (WorkerKind::Uncooperative, 2) => {
                // Send Ok — to a receiver that may be long gone; a stale
                // attempt's channel no longer exists, so the send is
                // discarded exactly like mpsc's `let _ = tx.send(..)`.
                if usize::from(s.cells[cell].current_attempt) == attempt {
                    s.cells[cell].channel = Some(Msg::Ok);
                }
            }
            // Compute steps touch nothing shared.
            (WorkerKind::Cooperative, 1)
            | (WorkerKind::Uncooperative, 0 | 1)
            | (WorkerKind::Silent, 0 | 1) => {}
            (k, pc) => unreachable!("worker kind {k:?} has no step {pc}"),
        }
        s.cells[cell].workers[attempt].pc = next;
    }
}

impl Model for SupervisorModel {
    type State = SupState;

    fn initial(&self) -> SupState {
        let cells = self
            .scenario
            .cells
            .iter()
            .map(|spec| {
                let workers = spec
                    .attempts
                    .iter()
                    .map(|_| WorkerState { spawned: false, pc: 0 })
                    .collect::<Vec<_>>();
                let mut c = CellState {
                    token: false,
                    timeout_fired: false,
                    channel: None,
                    current_attempt: 0,
                    workers,
                    sup: if spec.checkpoint == Checkpoint::None {
                        SupPc::Waiting
                    } else {
                        SupPc::Load
                    },
                    commit: None,
                    commit_writes: 0,
                    leaked: false,
                    quarantined: false,
                };
                if spec.checkpoint == Checkpoint::None {
                    c.workers[0].spawned = true;
                }
                c
            })
            .collect();
        SupState { cells, trace: Vec::new(), violation: None }
    }

    fn enabled(&self, s: &SupState) -> Vec<usize> {
        let mut pids = Vec::new();
        for (i, c) in s.cells.iter().enumerate() {
            let base = i * self.slots;
            if c.sup != SupPc::Done {
                pids.push(base);
            }
            for (k, w) in c.workers.iter().enumerate() {
                if w.spawned && w.pc < self.kind(i, k).len() {
                    pids.push(base + 1 + k);
                }
            }
        }
        pids
    }

    fn step(&self, s: &mut SupState, pid: usize) {
        let (cell, slot) = (pid / self.slots, pid % self.slots);
        if slot == 0 {
            self.step_supervisor(s, cell);
        } else {
            self.step_worker(s, cell, slot - 1);
        }
    }

    fn is_terminal(&self, s: &SupState) -> bool {
        s.cells.iter().enumerate().all(|(i, c)| {
            c.sup == SupPc::Done
                && c.workers
                    .iter()
                    .enumerate()
                    .all(|(k, w)| !w.spawned || w.pc >= self.kind(i, k).len())
        })
    }

    fn invariant(&self, s: &SupState) -> Result<(), String> {
        if let Some(v) = &s.violation {
            return Err(v.clone());
        }
        for (i, c) in s.cells.iter().enumerate() {
            if c.commit == Some(Commit::Done) && c.timeout_fired {
                return Err(format!(
                    "cell {i}: a result was committed as Done after its deadline fired \
                     (late results must be dropped)"
                ));
            }
        }
        Ok(())
    }

    fn terminal_check(&self, s: &SupState) -> Result<(), String> {
        for (i, c) in s.cells.iter().enumerate() {
            match (c.commit_writes, c.commit) {
                (1, Some(_)) => {}
                (0, _) => return Err(format!("cell {i}: lost result — nothing was committed")),
                _ => return Err(format!("cell {i}: committed {} times", c.commit_writes)),
            }
            if c.commit == Some(Commit::Timeout) && !c.timeout_fired && c.workers.len() == 1 {
                return Err(format!("cell {i}: Timeout committed but no deadline fired"));
            }
        }
        replay_token_trace(&s.trace)
    }
}

/// Replay a schedule's token operations against the **real**
/// [`CancelToken`], one fresh token per `(cell, attempt)`, and check
/// both the observed values and the `model-check` instrumentation log
/// match the model's trace.
fn replay_token_trace(trace: &[TraceOp]) -> Result<(), String> {
    let mut keys: Vec<(u8, u8)> = Vec::new();
    for t in trace {
        if !keys.contains(&(t.cell, t.attempt)) {
            keys.push((t.cell, t.attempt));
        }
    }
    for (cell, attempt) in keys {
        let label = format!("cell-{cell}/attempt-{attempt}");
        let token = CancelToken::new(&label);
        let mut expected = Vec::new();
        mc::arm();
        for t in trace.iter().filter(|t| t.cell == cell && t.attempt == attempt) {
            match t.op {
                Op::Cancel => {
                    token.cancel();
                    expected.push(mc::TokenOp::Cancel { label: label.clone() });
                }
                Op::Poll(observed) => {
                    let got = token.is_cancelled();
                    expected.push(mc::TokenOp::Poll { label: label.clone(), observed: got });
                    if got != observed {
                        let _ = mc::disarm();
                        return Err(format!(
                            "{label}: real CancelToken observed {got}, model predicted {observed}"
                        ));
                    }
                }
            }
        }
        let logged = mc::disarm();
        if logged != expected {
            return Err(format!(
                "{label}: instrumentation log {logged:?} diverges from replayed ops"
            ));
        }
    }
    Ok(())
}

fn cell(checkpoint: Checkpoint, attempts: &[WorkerKind]) -> CellSpec {
    CellSpec { checkpoint, attempts: attempts.to_vec() }
}

/// The standard scenario suite the `--model-check` pass explores.
#[must_use]
pub fn standard_scenarios() -> Vec<Scenario> {
    use WorkerKind::{Cooperative, Silent, Uncooperative};
    vec![
        Scenario {
            name: "cell/cooperative",
            cells: vec![cell(Checkpoint::None, &[Cooperative])],
            variant: ProtocolVariant::Correct,
        },
        Scenario {
            name: "cell/uncooperative",
            cells: vec![cell(Checkpoint::None, &[Uncooperative])],
            variant: ProtocolVariant::Correct,
        },
        Scenario {
            name: "cell/checkpoint-valid",
            cells: vec![cell(Checkpoint::Valid, &[Cooperative])],
            variant: ProtocolVariant::Correct,
        },
        Scenario {
            name: "cell/checkpoint-corrupt",
            cells: vec![cell(Checkpoint::Corrupt, &[Cooperative])],
            variant: ProtocolVariant::Correct,
        },
        Scenario {
            name: "cell/retry-fresh-token",
            cells: vec![cell(Checkpoint::None, &[Silent, Cooperative])],
            variant: ProtocolVariant::Correct,
        },
        Scenario {
            name: "pair/cooperative",
            cells: vec![
                cell(Checkpoint::None, &[Cooperative]),
                cell(Checkpoint::None, &[Cooperative]),
            ],
            variant: ProtocolVariant::Correct,
        },
        Scenario {
            name: "pair/mixed",
            cells: vec![
                cell(Checkpoint::None, &[Cooperative]),
                cell(Checkpoint::None, &[Uncooperative]),
            ],
            variant: ProtocolVariant::Correct,
        },
        // Quarantine concurrent with an abandoned (leaking) cell. The
        // retry ladder is exhaustively covered single-cell above; pairing
        // it with another cell multiplies the schedule space past any
        // useful bound, so the paired scenarios keep to single attempts.
        Scenario {
            name: "pair/corrupt+silent",
            cells: vec![
                cell(Checkpoint::Corrupt, &[Cooperative]),
                cell(Checkpoint::None, &[Silent]),
            ],
            variant: ProtocolVariant::Correct,
        },
    ]
}

/// One scenario's exploration outcome.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// The exploration result.
    pub report: ExploreReport,
}

/// Explore every standard scenario exhaustively; returns per-scenario
/// reports (sum the schedule counts for the grand total).
#[must_use]
pub fn check_supervisor_protocol(cfg: &ExploreConfig) -> Vec<ScenarioReport> {
    standard_scenarios()
        .into_iter()
        .map(|sc| {
            let name = sc.name;
            let report = explore(&SupervisorModel::new(sc), cfg);
            ScenarioReport { name, report }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sc: Scenario) -> ExploreReport {
        explore(&SupervisorModel::new(sc), &ExploreConfig::default())
    }

    #[test]
    fn every_standard_scenario_is_clean() {
        let mut total = 0usize;
        for r in check_supervisor_protocol(&ExploreConfig::default()) {
            assert!(r.report.clean(), "{}: {:?}", r.name, r.report.violations.first());
            assert!(r.report.schedules > 0, "{}", r.name);
            total += r.report.schedules;
        }
        assert!(total >= 10_000, "only {total} schedules explored");
    }

    #[test]
    fn late_commit_bug_is_caught() {
        let r = run(Scenario {
            name: "bug/late-commit",
            cells: vec![cell(Checkpoint::None, &[WorkerKind::Uncooperative])],
            variant: ProtocolVariant::BuggyLateCommit,
        });
        assert!(
            r.violations.iter().any(|v| v.message.contains("after its deadline fired")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn token_reuse_bug_is_caught() {
        let r = run(Scenario {
            name: "bug/token-reuse",
            cells: vec![cell(Checkpoint::None, &[WorkerKind::Silent, WorkerKind::Cooperative])],
            variant: ProtocolVariant::BuggyTokenReuse,
        });
        assert!(
            r.violations.iter().any(|v| v.message.contains("never fired")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn counterexample_schedules_replay() {
        let r = run(Scenario {
            name: "bug/late-commit",
            cells: vec![cell(Checkpoint::None, &[WorkerKind::Uncooperative])],
            variant: ProtocolVariant::BuggyLateCommit,
        });
        let v = r.violations.first().expect("bug variant must produce a violation");
        let m = SupervisorModel::new(Scenario {
            name: "bug/late-commit",
            cells: vec![cell(Checkpoint::None, &[WorkerKind::Uncooperative])],
            variant: ProtocolVariant::BuggyLateCommit,
        });
        let s = crate::interleave::replay(&m, &v.schedule);
        assert!(m.invariant(&s).is_err(), "replayed schedule must reproduce the violation");
    }
}
