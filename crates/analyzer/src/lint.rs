//! Pass 3 — the token-level workspace lint engine.
//!
//! No `rustc` plugin, no syntax tree, no network: the scanner masks
//! comments, strings and character literals out of each source file
//! (preserving byte offsets and newlines), tracks `#[cfg(test)] mod`
//! regions by brace depth, and then matches *whole identifiers* — so
//! `.unwrap_or(..)` is never confused with `.unwrap()` the way a naive
//! regex would. Eight rules:
//!
//! * `panic-path` — `.unwrap()` / `.expect()` (and the `_err` duals) and
//!   the `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros
//!   on non-test code paths. Production code returns
//!   [`wcms_error::WcmsError`]; reaching a panic on caller input is a
//!   bug (PR 1's contract).
//! * `thread-spawn` — raw `thread::spawn` outside the sweep supervisor.
//!   Unsupervised threads escape the cancel/deadline/commit protocol
//!   the interleaving checker proves correct; scoped `s.spawn` and the
//!   supervisor's own budget worker are the sanctioned forms.
//! * `wall-clock` — `SystemTime::now` in deterministic code. Sweeps are
//!   resumable and replayable; wall-clock reads belong in the reporting
//!   layer only (`Instant` for durations is fine and not flagged).
//! * `eprintln-outside-obs` — raw `eprintln!` in library code. Warnings
//!   routed through `wcms_obs::Obs::warn` survive into trace journals;
//!   a bare `eprintln!` scrolls away. The obs crate itself (it
//!   implements `warn`) and `bin/` entry points (their stderr *is* the
//!   user interface) are exempt by path.
//! * `socket-without-deadline` — a file that names `TcpStream` or
//!   `TcpListener` outside tests but never arms a timeout
//!   (`set_read_timeout` / `set_write_timeout`, or the serve crate's
//!   `apply_deadlines` helper which wraps both). A socket without
//!   deadlines lets one stalled peer pin a blocking worker forever —
//!   the failure mode `wcms-serve` is built to exclude. File-scoped:
//!   the first socket token is flagged once per file.
//! * `wall-clock-in-protocol` — `Instant::now` *or* `SystemTime::now`
//!   inside the scale-out protocol files ([`PROTOCOL_PATHS`]). Lease
//!   expiry is a cross-process contract whose decisions the model
//!   checker explores under virtual time; a raw clock read at a
//!   protocol decision site is a state the checker cannot reach. Time
//!   enters the protocol through an injected `wcms_obs::Clock` only.
//! * `rename-without-fsync` — a file that calls `fs::rename` outside
//!   tests but never forces data (`sync_all` / `sync_data`).
//!   Publishing a name whose bytes were never fsynced is exactly the
//!   torn-commit window the `ModelFs` crash explorer demonstrates;
//!   like the socket rule this is file-scoped (the satisfier may live
//!   in a helper) and the first rename is flagged once per file.
//! * `span-without-context` — a fleet-observed file (the serve crate's
//!   library plus the scale-out [`PROTOCOL_PATHS`]) that opens spans
//!   (`span!` or `.span(`) outside tests but never touches the trace
//!   context machinery (`TraceContext` / `stamp` / `with_context`).
//!   Spans in those paths cross process boundaries; one emitted
//!   without a propagated context becomes an orphan in every joined
//!   fleet trace. File-scoped like the socket rule. `bin/` entry
//!   points are exempt by path — their spans are UI-local by design.
//!
//! Findings can be allowed by an explicit allowlist file: one entry per
//! line, `rule path reason…`, the reason mandatory. Malformed entries
//! fail the gate, and so do **stale** entries (matching nothing): an
//! allowlist row that outlives its finding is a lie about the codebase
//! and rots into cover for a future regression — deleting it is the
//! fix.
//! Diagnostics render as text or machine-readable JSON (hand-rolled —
//! the workspace has no JSON dependency).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use wcms_error::WcmsError;

/// The method names whose calls are panic paths.
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
/// The macro names that are panic paths.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// The scale-out protocol files: every clock read in these must go
/// through an injected `wcms_obs::Clock` (see `wall-clock-in-protocol`
/// in the module docs).
pub const PROTOCOL_PATHS: [&str; 5] = [
    "crates/bench/src/protocol.rs",
    "crates/bench/src/shard.rs",
    "crates/bench/src/checkpoint.rs",
    "crates/bench/src/resilient.rs",
    "crates/bench/src/supervisor.rs",
];

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`panic-path`, `thread-spawn`, `wall-clock`).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (bytes).
    pub col: usize,
    /// The offending token.
    pub snippet: String,
    /// True when an allowlist entry covers it.
    pub allowed: bool,
    /// The allowlist entry's reason, when allowed.
    pub reason: Option<String>,
}

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry covers.
    pub rule: String,
    /// Repo-relative path it covers.
    pub path: String,
    /// Why the finding is acceptable (mandatory).
    pub reason: String,
}

/// The lint pass's full result.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every hit, allowed or not.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing (warnings).
    pub stale_allowlist: Vec<String>,
    /// Allowlist lines that could not be parsed (gate failures).
    pub malformed_allowlist: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings not covered by the allowlist.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    /// True iff the gate passes: no denied finding, no malformed
    /// allowlist entry, and no stale allowlist entry — an allow row
    /// matching nothing documents a finding that no longer exists and
    /// must be deleted, not carried.
    #[must_use]
    pub fn gate_ok(&self) -> bool {
        self.denied().next().is_none()
            && self.malformed_allowlist.is_empty()
            && self.stale_allowlist.is_empty()
    }

    /// Machine-readable JSON rendering.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"files_scanned\":{},", self.files_scanned);
        s.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"snippet\":{},\"allowed\":{}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.snippet),
                f.allowed
            );
            if let Some(r) = &f.reason {
                let _ = write!(s, ",\"reason\":{}", json_str(r));
            }
            s.push('}');
        }
        s.push_str("],\"stale_allowlist\":[");
        for (i, e) in self.stale_allowlist.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_str(e));
        }
        s.push_str("],\"malformed_allowlist\":[");
        for (i, e) in self.malformed_allowlist.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_str(e));
        }
        s.push_str("]}");
        s
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Replace the contents of comments, string/char literals (including
/// raw and byte forms) with spaces, byte for byte, preserving newlines —
/// offsets into the masked text are offsets into the original.
fn mask_source(src: &str) -> Vec<u8> {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let n = b.len();
    let mut i = 0;
    // Mask bytes [from, to), keeping newlines for line accounting.
    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for x in &mut out[from..to.min(n)] {
            if *x != b'\n' {
                *x = b' ';
            }
        }
    };
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(n, |p| i + p);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < n {
                    if b[j] == b'\\' {
                        j += 2;
                    } else if b[j] == b'"' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'r' | b'b' => {
                if let Some((start, hashes)) = raw_string_start(b, i) {
                    // Find the closing `"` followed by `hashes` hashes.
                    let mut j = start;
                    while j < n {
                        if b[j] == b'"'
                            && b[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count()
                                == hashes
                        {
                            j += 1 + hashes;
                            break;
                        }
                        j += 1;
                    }
                    blank(&mut out, i, j);
                    i = j;
                } else if b[i] == b'b' && i + 1 < n && b[i + 1] == b'\'' {
                    i = mask_char_literal(b, &mut out, i + 1, &blank);
                } else {
                    i = skip_identifier(b, i);
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal is `'\…'` or `'x'`.
                let is_char = (i + 1 < n && b[i + 1] == b'\\')
                    || (i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'');
                if is_char {
                    i = mask_char_literal(b, &mut out, i, &blank);
                } else {
                    i += 1; // lifetime tick: leave the identifier in code
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                i = skip_identifier(b, i);
            }
            _ => i += 1,
        }
    }
    out
}

/// If `b[i..]` begins a raw (byte) string `r#*"` / `br#*"`, return the
/// offset just past the opening quote and the hash count.
fn raw_string_start(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (j < b.len() && b[j] == b'"').then_some((j + 1, hashes))
}

/// Mask one char literal starting at the opening `'` at `i`; returns the
/// offset past the closing quote.
fn mask_char_literal(
    b: &[u8],
    out: &mut Vec<u8>,
    i: usize,
    blank: &dyn Fn(&mut Vec<u8>, usize, usize),
) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n && b[j] != b'\'' {
        j += if b[j] == b'\\' { 2 } else { 1 };
    }
    let end = (j + 1).min(n);
    blank(out, i, end);
    end
}

/// Skip past the identifier starting at `i`.
fn skip_identifier(b: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    j.max(i + 1)
}

/// Byte ranges of `#[cfg(test)] mod … { … }` bodies in the masked text.
fn test_mod_regions(masked: &[u8]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while i + needle.len() <= masked.len() {
        if &masked[i..i + needle.len()] != needle.as_slice() {
            i += 1;
            continue;
        }
        let mut j = i + needle.len();
        // Skip whitespace, further attributes, and visibility up to `mod`.
        let mut is_mod = false;
        loop {
            while j < masked.len() && masked[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < masked.len() && masked[j] == b'#' {
                // Skip `#[…]` with bracket depth.
                let mut depth = 0usize;
                while j < masked.len() {
                    match masked[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            let end = skip_identifier(masked, j);
            let word = &masked[j..end];
            match word {
                b"pub" => {
                    j = end;
                    // `pub(crate)` and friends.
                    while j < masked.len() && masked[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < masked.len() && masked[j] == b'(' {
                        while j < masked.len() && masked[j] != b')' {
                            j += 1;
                        }
                        j += 1;
                    }
                }
                b"mod" => {
                    is_mod = true;
                    j = end;
                    break;
                }
                _ => break,
            }
        }
        if is_mod {
            // Skip the module name, then expect `{`.
            while j < masked.len() && masked[j].is_ascii_whitespace() {
                j += 1;
            }
            j = skip_identifier(masked, j);
            while j < masked.len() && masked[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < masked.len() && masked[j] == b'{' {
                let open = j;
                let mut depth = 0usize;
                while j < masked.len() {
                    match masked[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                regions.push((open, j));
            }
        }
        i += needle.len();
    }
    regions
}

/// The identifier (if any) ending just before the `::` that precedes
/// offset `start` — e.g. for `thread::spawn`, called at `spawn`'s start,
/// returns `Some("thread")`.
fn path_qualifier(masked: &[u8], start: usize) -> Option<String> {
    let mut j = start;
    while j > 0 && masked[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    if j < 2 || masked[j - 1] != b':' || masked[j - 2] != b':' {
        return None;
    }
    j -= 2;
    while j > 0 && masked[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && (masked[j - 1] == b'_' || masked[j - 1].is_ascii_alphanumeric()) {
        j -= 1;
    }
    (j < end).then(|| String::from_utf8_lossy(&masked[j..end]).into_owned())
}

fn prev_nonspace(masked: &[u8], start: usize) -> Option<u8> {
    masked[..start].iter().rev().find(|c| !c.is_ascii_whitespace()).copied()
}

fn next_nonspace(masked: &[u8], end: usize) -> Option<u8> {
    masked[end..].iter().find(|c| !c.is_ascii_whitespace()).copied()
}

/// Lint one file's source text. `path` is the repo-relative label;
/// `is_test_file` marks whole-file test context (tests/, benches/,
/// examples/).
#[must_use]
pub fn lint_source(path: &str, src: &str, is_test_file: bool) -> Vec<Finding> {
    let masked = mask_source(src);
    let regions = if is_test_file { Vec::new() } else { test_mod_regions(&masked) };
    let in_test = |off: usize| is_test_file || regions.iter().any(|&(a, b)| off > a && off < b);
    // Line starts for offset → (line, col).
    let mut line_starts = vec![0usize];
    for (i, &c) in masked.iter().enumerate() {
        if c == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let locate = |off: usize| {
        let line = line_starts.partition_point(|&s| s <= off);
        (line, off - line_starts[line - 1] + 1)
    };

    let mut findings = Vec::new();
    let mut push = |rule: &'static str, off: usize, snippet: String| {
        let (line, col) = locate(off);
        findings.push(Finding {
            rule,
            path: path.to_string(),
            line,
            col,
            snippet,
            allowed: false,
            reason: None,
        });
    };

    // File-scoped socket rule state: the first socket type named
    // outside tests, and whether ANY deadline-arming identifier appears
    // (helpers may arm deadlines inside a test-exempt region or a
    // dedicated function, so the satisfier is file-wide).
    let mut first_socket: Option<(usize, &'static str)> = None;
    let mut arms_deadline = false;
    // Same shape for the rename rule: first `fs::rename` outside
    // tests, satisfied by any data-forcing identifier in the file.
    let mut first_rename: Option<usize> = None;
    let mut syncs_data = false;
    let is_protocol_file = PROTOCOL_PATHS.contains(&path);
    // And again for the span rule: the first span opened in a
    // fleet-observed file, satisfied by any trace-context identifier
    // anywhere in the file (stamping usually lives in a field closure).
    let mut first_span: Option<usize> = None;
    let mut stamps_context = false;
    let is_fleet_obs_file = (path.starts_with("crates/serve/src/")
        || PROTOCOL_PATHS.contains(&path))
        && !path.split('/').any(|c| c == "bin");

    let mut i = 0;
    while i < masked.len() {
        let c = masked[i];
        if !(c == b'_' || c.is_ascii_alphabetic()) {
            i += 1;
            continue;
        }
        let end = skip_identifier(&masked, i);
        let ident = std::str::from_utf8(&masked[i..end]).unwrap_or("");
        if matches!(ident, "set_read_timeout" | "set_write_timeout" | "apply_deadlines") {
            arms_deadline = true;
        }
        if matches!(ident, "sync_all" | "sync_data") {
            syncs_data = true;
        }
        if matches!(ident, "TraceContext" | "stamp" | "with_context") {
            stamps_context = true;
        }
        if !in_test(i) {
            if first_socket.is_none() {
                if ident == "TcpStream" {
                    first_socket = Some((i, "TcpStream"));
                } else if ident == "TcpListener" {
                    first_socket = Some((i, "TcpListener"));
                }
            }
            if PANIC_METHODS.contains(&ident)
                && prev_nonspace(&masked, i) == Some(b'.')
                && next_nonspace(&masked, end) == Some(b'(')
            {
                push("panic-path", i, format!(".{ident}()"));
            } else if PANIC_MACROS.contains(&ident) && next_nonspace(&masked, end) == Some(b'!') {
                push("panic-path", i, format!("{ident}!"));
            } else if ident == "spawn" && path_qualifier(&masked, i).as_deref() == Some("thread") {
                push("thread-spawn", i, "thread::spawn".to_string());
            } else if ident == "now" && path_qualifier(&masked, i).as_deref() == Some("SystemTime")
            {
                // In a protocol file the sharper rule subsumes the
                // general one (one finding per token, one allow row).
                if is_protocol_file {
                    push("wall-clock-in-protocol", i, "SystemTime::now".to_string());
                } else {
                    push("wall-clock", i, "SystemTime::now".to_string());
                }
            } else if is_protocol_file
                && ident == "now"
                && path_qualifier(&masked, i).as_deref() == Some("Instant")
            {
                push("wall-clock-in-protocol", i, "Instant::now".to_string());
            } else if ident == "rename" && path_qualifier(&masked, i).as_deref() == Some("fs") {
                if first_rename.is_none() {
                    first_rename = Some(i);
                }
            } else if is_fleet_obs_file
                && first_span.is_none()
                && ident == "span"
                && (next_nonspace(&masked, end) == Some(b'!')
                    || (prev_nonspace(&masked, i) == Some(b'.')
                        && next_nonspace(&masked, end) == Some(b'(')))
            {
                first_span = Some(i);
            } else if ident == "eprintln"
                && next_nonspace(&masked, end) == Some(b'!')
                && !path.starts_with("crates/obs/")
                && !path.split('/').any(|c| c == "bin")
            {
                push("eprintln-outside-obs", i, "eprintln!".to_string());
            }
        }
        i = end;
    }
    if let Some((off, name)) = first_socket {
        if !arms_deadline {
            push("socket-without-deadline", off, name.to_string());
        }
    }
    if let Some(off) = first_rename {
        if !syncs_data {
            push("rename-without-fsync", off, "fs::rename".to_string());
        }
    }
    if let Some(off) = first_span {
        if !stamps_context {
            push("span-without-context", off, "span".to_string());
        }
    }
    findings
}

/// Parse the allowlist file contents. Returns `(entries, malformed)`.
#[must_use]
pub fn parse_allowlist(text: &str) -> (Vec<AllowEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut malformed = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() >= 3 {
            entries.push(AllowEntry {
                rule: tokens[0].to_string(),
                path: tokens[1].to_string(),
                reason: tokens[2..].join(" "),
            });
        } else {
            malformed
                .push(format!("line {}: expected `rule path reason…`, got `{line}`", lineno + 1));
        }
    }
    (entries, malformed)
}

/// Recursively collect `.rs` files under `dir` (sorted, deterministic).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), WcmsError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| Ok(e?.path())).collect::<Result<_, WcmsError>>()?;
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint the workspace's production sources under `root`: the root
/// package's `src/` and every `crates/*/src/`. Integration tests,
/// benches and examples are out of scope by construction (panics there
/// are test assertions). `allowlist` is the allowlist file's contents
/// (empty string = no allowlist).
///
/// # Errors
///
/// Propagates I/O errors reading the tree.
pub fn lint_workspace(root: &Path, allowlist: &str) -> Result<LintReport, WcmsError> {
    let (entries, malformed) = parse_allowlist(allowlist);
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .map(|e| Ok(e?.path()))
            .collect::<Result<_, WcmsError>>()?;
        members.sort();
        for m in members {
            collect_rs(&m.join("src"), &mut files)?;
        }
    }

    let mut report = LintReport { malformed_allowlist: malformed, ..Default::default() };
    let mut used = vec![false; entries.len()];
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(file)?;
        let is_test_file = rel.split('/').any(|c| matches!(c, "tests" | "benches" | "examples"));
        report.files_scanned += 1;
        for mut f in lint_source(&rel, &src, is_test_file) {
            if let Some(k) = entries.iter().position(|e| e.rule == f.rule && e.path == f.path) {
                f.allowed = true;
                f.reason = Some(entries[k].reason.clone());
                used[k] = true;
            }
            report.findings.push(f);
        }
    }
    for (k, e) in entries.iter().enumerate() {
        if !used[k] {
            report.stale_allowlist.push(format!("{} {} ({})", e.rule, e.path, e.reason));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_calls_are_flagged_but_lookalikes_are_not() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0);\n    x.unwrap()\n}\n";
        let fs = lint_source("a.rs", src, false);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "panic-path");
        assert_eq!(fs[0].line, 3);
        assert_eq!(fs[0].snippet, ".unwrap()");
    }

    #[test]
    fn strings_comments_and_chars_are_masked() {
        let src = concat!(
            "// x.unwrap() in a comment\n",
            "/* panic! in a /* nested */ block */\n",
            "fn f() { let s = \".unwrap()\"; let r = r#\"panic!(\"x\")\"#; let c = '\"'; }\n",
            "fn g() { \"after the char literal: .expect(\" ; }\n",
        );
        assert!(lint_source("a.rs", src, false).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = concat!(
            "fn prod() { maybe().expect(\"boom\"); }\n",
            "#[cfg(test)]\nmod tests {\n    fn t() { maybe().unwrap(); panic!(\"x\"); }\n}\n",
        );
        let fs = lint_source("a.rs", src, false);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 1);
    }

    #[test]
    fn spawn_and_wall_clock_rules() {
        let src = concat!(
            "fn a() { std::thread::spawn(|| {}); }\n",
            "fn b(s: &std::thread::Scope) { s.spawn(|| {}); }\n",
            "fn c() { let _ = std::time::SystemTime::now(); }\n",
            "fn d() { let _ = std::time::Instant::now(); }\n",
        );
        let fs = lint_source("a.rs", src, false);
        let rules: Vec<_> = fs.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["thread-spawn", "wall-clock"], "{fs:?}");
    }

    #[test]
    fn raw_eprintln_is_flagged_outside_obs_and_bins() {
        let src = "fn f() { eprintln!(\"# warn\"); eprint!(\"x\"); }\n";
        let fs = lint_source("crates/bench/src/panel.rs", src, false);
        let rules: Vec<_> = fs.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["eprintln-outside-obs"], "{fs:?}");
        // The obs crate (implements Obs::warn) and bin/ entry points
        // (stderr is their UI) are exempt by path.
        assert!(lint_source("crates/obs/src/lib.rs", src, false).is_empty());
        assert!(lint_source("crates/bench/src/bin/chaos.rs", src, false).is_empty());
        // Test code is exempt like every other rule.
        assert!(lint_source("crates/bench/tests/t.rs", src, true).is_empty());
    }

    #[test]
    fn sockets_without_deadlines_are_flagged_once_per_file() {
        let src = concat!(
            "use std::net::TcpStream;\n",
            "fn f(a: &str) { let s = TcpStream::connect(a); let _ = s; }\n",
        );
        let fs = lint_source("a.rs", src, false);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "socket-without-deadline");
        assert_eq!(fs[0].line, 1, "first token only: {fs:?}");
        assert_eq!(fs[0].snippet, "TcpStream");

        // Arming either direction anywhere in the file satisfies the rule,
        // as does routing through the serve crate's helper.
        let armed = format!("{src}fn g(s: &TcpStream) {{ let _ = s.set_read_timeout(None); }}\n");
        assert!(
            lint_source("a.rs", &armed, false).is_empty(),
            "{:?}",
            lint_source("a.rs", &armed, false)
        );
        let helper = format!("{src}fn g(s: &TcpStream) {{ apply_deadlines(s, R, W).ok(); }}\n");
        assert!(lint_source("a.rs", &helper, false).is_empty());

        // Listeners count too, and test code is exempt.
        let listener = "fn f() { let l = std::net::TcpListener::bind(\"x\"); let _ = l; }\n";
        let fs = lint_source("a.rs", listener, false);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].snippet, "TcpListener");
        assert!(lint_source("crates/serve/tests/t.rs", listener, true).is_empty());
    }

    #[test]
    fn deadline_armed_only_in_tests_still_satisfies_the_socket_rule() {
        // The arming identifier may live in a #[cfg(test)] helper —
        // the rule is about the file knowing the concept at all, and a
        // masked-region satisfier must not force an allowlist entry.
        let src = concat!(
            "use std::net::TcpStream;\n",
            "fn f(s: &TcpStream) { crate::deadline::apply_deadlines(s, R, W).ok(); }\n",
            "#[cfg(test)]\nmod tests { fn t() { let _ = super::f; } }\n",
        );
        assert!(lint_source("a.rs", src, false).is_empty());
    }

    #[test]
    fn protocol_files_ban_every_raw_clock() {
        let src = concat!(
            "fn a() { let _ = std::time::Instant::now(); }\n",
            "fn b() { let _ = std::time::SystemTime::now(); }\n",
            "fn c(clock: &wcms_obs::Clock) { let _ = clock.now_us(); }\n",
        );
        // Inside a protocol file both raw clocks hit the sharper rule
        // (and SystemTime is not double-reported under `wall-clock`).
        let fs = lint_source("crates/bench/src/shard.rs", src, false);
        let rules: Vec<_> = fs.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["wall-clock-in-protocol", "wall-clock-in-protocol"], "{fs:?}");
        assert_eq!(fs[0].snippet, "Instant::now");
        assert_eq!(fs[1].snippet, "SystemTime::now");
        // Outside the protocol set, `Instant` stays fine and
        // `SystemTime` hits the general rule as before.
        let fs = lint_source("crates/bench/src/series.rs", src, false);
        let rules: Vec<_> = fs.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["wall-clock"], "{fs:?}");
        // Protocol test modules are exempt like every other rule.
        let test_src = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint_source("crates/bench/src/shard.rs", &test_src, false).is_empty());
    }

    #[test]
    fn rename_without_fsync_is_file_scoped() {
        let src = "fn f() { std::fs::rename(\"a\", \"b\").ok(); fs::rename(\"c\", \"d\").ok(); }\n";
        let fs = lint_source("a.rs", src, false);
        assert_eq!(fs.len(), 1, "first rename only: {fs:?}");
        assert_eq!(fs[0].rule, "rename-without-fsync");
        assert_eq!(fs[0].snippet, "fs::rename");

        // Forcing data anywhere in the file satisfies the rule — the
        // temp-file fsync lives a few lines above the rename.
        let synced = format!("fn s(f: &std::fs::File) {{ f.sync_all().ok(); }}\n{src}");
        assert!(lint_source("a.rs", &synced, false).is_empty());
        let synced = format!("fn s(f: &std::fs::File) {{ f.sync_data().ok(); }}\n{src}");
        assert!(lint_source("a.rs", &synced, false).is_empty());

        // Test files and #[cfg(test)] modules are exempt.
        assert!(lint_source("crates/bench/tests/t.rs", src, true).is_empty());
        let test_src = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint_source("a.rs", &test_src, false).is_empty());
    }

    #[test]
    fn spans_without_context_are_flagged_in_fleet_paths_only() {
        let src = concat!(
            "fn f(obs: &Obs) { let _g = obs.span(\"request\", Vec::new); }\n",
            "fn g(obs: &Obs) { let _g = span!(obs, \"cell\", cell => 1); }\n",
        );
        // A fleet-observed file opening spans with no context machinery:
        // flagged once, on the first span.
        let fs = lint_source("crates/serve/src/server.rs", src, false);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "span-without-context");
        assert_eq!(fs[0].line, 1, "first span only: {fs:?}");
        let fs = lint_source("crates/bench/src/supervisor.rs", src, false);
        assert_eq!(fs.len(), 1, "{fs:?}");

        // Any trace-context identifier anywhere in the file satisfies
        // the rule — stamping lives inside the field closures.
        for satisfier in [
            "fn s(ctx: &TraceContext, f: &mut Vec<Field>) { let _ = (ctx, f); }\n",
            "fn s(ctx: C, f: &mut Vec<Field>) { ctx.stamp(f); }\n",
            "fn s(obs: &Obs, ctx: C) -> Obs { obs.with_context(ctx) }\n",
        ] {
            let stamped = format!("{src}{satisfier}");
            let fs = lint_source("crates/serve/src/server.rs", &stamped, false);
            assert!(fs.is_empty(), "{satisfier:?}: {fs:?}");
        }

        // Outside the fleet-observed set — other library code, bin/
        // entry points (UI-local spans), and test files — no finding.
        assert!(lint_source("crates/bench/src/figures.rs", src, false).is_empty());
        assert!(lint_source("crates/serve/src/bin/wcms-serve.rs", src, false).is_empty());
        assert!(lint_source("crates/obs/src/bin/wcms-trace.rs", src, false).is_empty());
        assert!(lint_source("crates/serve/tests/t.rs", src, true).is_empty());
        // A field or variable merely *named* span is not a span open.
        let named = "fn f(r: &R) { let span = r.span; let _ = span; }\n";
        assert!(lint_source("crates/serve/src/server.rs", named, false).is_empty());
    }

    #[test]
    fn stale_allowlist_entries_fail_the_gate() {
        // A deliberately-stale fixture: a tiny on-disk workspace whose
        // one source file is clean, plus an allowlist row for a
        // finding that does not exist. The row must be reported stale
        // AND fail the gate — a stale allow is cover for a future
        // regression, not a warning.
        let root =
            std::env::temp_dir().join(format!("wcms-lint-stale-fixture-{}", std::process::id()));
        let src_dir = root.join("src");
        std::fs::create_dir_all(&src_dir).expect("fixture dir");
        std::fs::write(src_dir.join("lib.rs"), "pub fn clean() -> u32 { 7 }\n")
            .expect("fixture file");
        let report =
            lint_workspace(&root, "wall-clock src/lib.rs this finding was fixed long ago\n")
                .expect("fixture lints");
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(report.files_scanned, 1);
        assert!(report.denied().next().is_none(), "{:?}", report.findings);
        assert_eq!(report.stale_allowlist.len(), 1, "{:?}", report.stale_allowlist);
        assert!(!report.gate_ok(), "a stale allowlist entry must fail the gate");
    }

    #[test]
    fn allowlist_covers_stales_and_malformed() {
        let (entries, malformed) = parse_allowlist(
            "# comment\n\
             panic-path a.rs internal invariant, documented\n\
             thread-spawn b.rs\n\
             wall-clock c.rs never hit\n",
        );
        assert_eq!(entries.len(), 2);
        assert_eq!(malformed.len(), 1, "{malformed:?}");
        assert!(malformed[0].contains("line 3"));
    }

    #[test]
    fn json_rendering_escapes() {
        let report = LintReport {
            findings: vec![Finding {
                rule: "panic-path",
                path: "a\"b.rs".into(),
                line: 1,
                col: 2,
                snippet: ".unwrap()".into(),
                allowed: false,
                reason: None,
            }],
            ..Default::default()
        };
        let j = report.to_json();
        assert!(j.contains("\"a\\\"b.rs\""), "{j}");
        assert!(j.contains("\"files_scanned\":0"), "{j}");
    }

    #[test]
    fn lifetimes_do_not_derail_the_masker() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { h().unwrap(); }\n";
        let fs = lint_source("a.rs", src, false);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 2);
    }
}
