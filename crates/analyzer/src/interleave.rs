//! Pass 2 (engine) — exhaustive bounded interleaving exploration.
//!
//! A mini-loom: a [`Model`] describes a finite set of processes as a
//! deterministic transition function over an explicit state, and
//! [`explore`] enumerates **every** schedule (total order of process
//! steps) up to a bound by depth-first search, checking a safety
//! invariant at every state and a terminal condition at every complete
//! schedule. A state where no process can step but the model is not
//! terminal is reported as a deadlock (hung join).
//!
//! The search is exhaustive rather than sampled: with the supervisor
//! protocol's step counts the full schedule space is ~10⁵ orders, well
//! within a test budget, and exhaustiveness is the point — seeded chaos
//! runs (PR 3) sample this space, the checker covers it.

/// A finite-state concurrent system to explore.
pub trait Model {
    /// Explicit system state (cloned once per explored branch).
    type State: Clone;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Process ids that can take a step in `s`. An empty answer in a
    /// non-terminal state is a deadlock.
    fn enabled(&self, s: &Self::State) -> Vec<usize>;

    /// Advance process `pid` by one atomic step.
    fn step(&self, s: &mut Self::State, pid: usize);

    /// True when the schedule is complete (all processes done).
    fn is_terminal(&self, s: &Self::State) -> bool;

    /// Safety invariant, checked after every step. `Err` describes the
    /// violation.
    ///
    /// # Errors
    ///
    /// Implementations return the violation message.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Checked once per complete schedule (liveness-style conditions:
    /// nothing lost, everything committed).
    ///
    /// # Errors
    ///
    /// Implementations return the violation message.
    fn terminal_check(&self, s: &Self::State) -> Result<(), String>;
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Stop after this many complete schedules (the exploration is
    /// reported as truncated).
    pub max_schedules: usize,
    /// Abort any single schedule longer than this many steps (guards
    /// against models with unbounded loops).
    pub max_depth: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self { max_schedules: 2_000_000, max_depth: 256 }
    }
}

/// One found violation, with the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The process-id sequence that drives the system into the
    /// violation.
    pub schedule: Vec<usize>,
    /// What was violated.
    pub message: String,
}

/// The result of exploring one model.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Complete schedules explored.
    pub schedules: usize,
    /// States visited (steps taken, counted with multiplicity).
    pub states: usize,
    /// Length of the longest schedule.
    pub max_depth_seen: usize,
    /// Violations found (empty = the protocol holds on every explored
    /// schedule).
    pub violations: Vec<Violation>,
    /// True if `max_schedules` cut the search short.
    pub truncated: bool,
}

impl ExploreReport {
    /// True iff no violation was found and the search was complete.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }

    /// Fold another model's report into this one (for multi-scenario
    /// totals).
    pub fn absorb(&mut self, other: ExploreReport) {
        self.schedules += other.schedules;
        self.states += other.states;
        self.max_depth_seen = self.max_depth_seen.max(other.max_depth_seen);
        self.violations.extend(other.violations);
        self.truncated |= other.truncated;
    }
}

/// Exhaustively explore every schedule of `model` up to `cfg`'s bounds.
pub fn explore<M: Model>(model: &M, cfg: &ExploreConfig) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut schedule = Vec::new();
    let state = model.initial();
    if let Err(message) = model.invariant(&state) {
        report.violations.push(Violation { schedule: Vec::new(), message });
        return report;
    }
    dfs(model, cfg, state, &mut schedule, &mut report);
    report
}

fn dfs<M: Model>(
    model: &M,
    cfg: &ExploreConfig,
    state: M::State,
    schedule: &mut Vec<usize>,
    report: &mut ExploreReport,
) {
    if report.schedules >= cfg.max_schedules {
        report.truncated = true;
        return;
    }
    if model.is_terminal(&state) {
        report.schedules += 1;
        report.max_depth_seen = report.max_depth_seen.max(schedule.len());
        if let Err(message) = model.terminal_check(&state) {
            report.violations.push(Violation { schedule: schedule.clone(), message });
        }
        return;
    }
    if schedule.len() >= cfg.max_depth {
        report.violations.push(Violation {
            schedule: schedule.clone(),
            message: format!("schedule exceeded max depth {} without terminating", cfg.max_depth),
        });
        return;
    }
    let enabled = model.enabled(&state);
    if enabled.is_empty() {
        report.violations.push(Violation {
            schedule: schedule.clone(),
            message: "deadlock: no process can step but the system is not terminal (hung join)"
                .to_string(),
        });
        return;
    }
    for pid in enabled {
        let mut next = state.clone();
        model.step(&mut next, pid);
        report.states += 1;
        schedule.push(pid);
        if let Err(message) = model.invariant(&next) {
            report.violations.push(Violation { schedule: schedule.clone(), message });
        } else {
            dfs(model, cfg, next, schedule, report);
        }
        schedule.pop();
        if report.truncated {
            return;
        }
    }
}

/// Replay `schedule` on a fresh copy of the model, returning the final
/// state (for counterexample inspection and conformance replay).
pub fn replay<M: Model>(model: &M, schedule: &[usize]) -> M::State {
    let mut state = model.initial();
    for &pid in schedule {
        model.step(&mut state, pid);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two processes, each incrementing a shared counter `k` times: every
    /// interleaving must end at `2k`, and there are C(2k, k) schedules.
    struct Counter {
        k: usize,
    }

    impl Model for Counter {
        type State = (usize, usize, usize); // (done_a, done_b, total)

        fn initial(&self) -> Self::State {
            (0, 0, 0)
        }

        fn enabled(&self, s: &Self::State) -> Vec<usize> {
            let mut v = Vec::new();
            if s.0 < self.k {
                v.push(0);
            }
            if s.1 < self.k {
                v.push(1);
            }
            v
        }

        fn step(&self, s: &mut Self::State, pid: usize) {
            if pid == 0 {
                s.0 += 1;
            } else {
                s.1 += 1;
            }
            s.2 += 1;
        }

        fn is_terminal(&self, s: &Self::State) -> bool {
            s.0 == self.k && s.1 == self.k
        }

        fn invariant(&self, s: &Self::State) -> Result<(), String> {
            (s.2 == s.0 + s.1).then_some(()).ok_or_else(|| "lost increment".into())
        }

        fn terminal_check(&self, s: &Self::State) -> Result<(), String> {
            (s.2 == 2 * self.k).then_some(()).ok_or_else(|| format!("total {} != 2k", s.2))
        }
    }

    #[test]
    fn counts_every_interleaving() {
        // C(8, 4) = 70 schedules of 2×4 steps.
        let r = explore(&Counter { k: 4 }, &ExploreConfig::default());
        assert!(r.clean(), "{:?}", r.violations);
        assert_eq!(r.schedules, 70);
        assert_eq!(r.max_depth_seen, 8);
    }

    #[test]
    fn truncation_is_reported() {
        let r = explore(&Counter { k: 6 }, &ExploreConfig { max_schedules: 10, max_depth: 64 });
        assert!(r.truncated);
        assert!(!r.clean());
        assert_eq!(r.schedules, 10);
    }

    /// A model that deadlocks when process 1 runs before process 0.
    struct Deadlocky;

    impl Model for Deadlocky {
        type State = (bool, bool);

        fn initial(&self) -> Self::State {
            (false, false)
        }

        fn enabled(&self, s: &Self::State) -> Vec<usize> {
            let mut v = Vec::new();
            if !s.0 {
                v.push(0);
            }
            // Process 1 only progresses after process 0 — unless it goes
            // first, in which case it wedges the system.
            if !s.1 && s.0 {
                v.push(1);
            }
            v
        }

        fn step(&self, s: &mut Self::State, pid: usize) {
            if pid == 0 {
                s.0 = true;
            } else {
                s.1 = true;
            }
        }

        fn is_terminal(&self, s: &Self::State) -> bool {
            s.0 && s.1
        }

        fn invariant(&self, _s: &Self::State) -> Result<(), String> {
            Ok(())
        }

        fn terminal_check(&self, _s: &Self::State) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn replay_reaches_the_recorded_state() {
        let m = Counter { k: 2 };
        let s = replay(&m, &[0, 1, 1, 0]);
        assert_eq!(s, (2, 2, 4));
    }

    #[test]
    fn single_order_model_has_one_schedule() {
        let r = explore(&Deadlocky, &ExploreConfig::default());
        // Only 0→1 completes; there is no schedule where 1 goes first
        // (it is simply not enabled), so no deadlock either.
        assert_eq!(r.schedules, 1);
        assert!(r.clean(), "{:?}", r.violations);
    }
}
