//! Cross-check — the symbolic verdicts against the measured world.
//!
//! The bound verifier ([`crate::bounds`]) is pure arithmetic; this
//! module pins it to reality from two sides so the static story and the
//! measured story can never silently drift apart:
//!
//! * **Layer A (exact, per warp)** — for every `E < w` the symbolic
//!   alignment must agree *element-for-element* with
//!   [`wcms_core::evaluate::evaluate`]'s DMM measurement of the same
//!   assignment:
//!   same aligned count, same per-step window multiplicity, and the
//!   static `min_cycles` must lower-bound the measured cycles.
//! * **Layer B (full sort, Fig. 4 grid)** — run the `AnalyticBackend`
//!   (counter-identical to the lockstep simulator) on worst-case inputs
//!   under the paper's library tunings and check the whole-sort merge
//!   counters against the per-warp verdict: every global round performs
//!   exactly `n/w` merge steps, its serialized merge cycles equal
//!   `n/(wE)` warp-stages times the per-warp worst-case cycles, the
//!   static `min_cycles` scales to a valid lower bound, and the
//!   worst-case input's global `β₂` dominates sorted input's.
//!
//! For regimes where the paper's explicit construction exists (odd `E`
//! co-prime with `w`) the adversarial permutation drives the sort; in
//! the shared-factor regimes sorted order *is* the reference worst case,
//! so the sorted workload is measured instead.

use crate::bounds::{classify, reference_assignment, BoundCase};
use wcms_core::evaluate::evaluate;
use wcms_error::WcmsError;
use wcms_gpu_sim::DeviceSpec;
use wcms_mergesort::{BackendKind, SortParams};
use wcms_workloads::WorkloadSpec;

/// Layer A: diff the symbolic pass against the DMM oracle for every
/// `E < w`. Returns one disagreement string per mismatch (empty = the
/// two derivations agree exactly).
///
/// # Errors
///
/// Propagates construction/evaluation errors (inadmissible `w`).
pub fn warp_grid_disagreements(w: usize) -> Result<Vec<String>, WcmsError> {
    let mut diffs = Vec::new();
    for e in 1..w {
        let asg = reference_assignment(w, e)?;
        let sym = crate::bounds::alignment_of_assignment(&asg);
        let ev = evaluate(&asg)?;
        if sym.aligned != ev.aligned {
            diffs.push(format!(
                "w={w} E={e}: symbolic aligned {} != measured {}",
                sym.aligned, ev.aligned
            ));
        }
        if sym.multiplicity != ev.window_multiplicity {
            diffs.push(format!(
                "w={w} E={e}: symbolic multiplicity {:?} != measured {:?}",
                sym.multiplicity, ev.window_multiplicity
            ));
        }
        if sym.min_cycles > ev.cycles() {
            diffs.push(format!(
                "w={w} E={e}: static min_cycles {} exceeds measured cycles {}",
                sym.min_cycles,
                ev.cycles()
            ));
        }
    }
    Ok(diffs)
}

/// Layer B outcome for one `(params, workload)` cell.
#[derive(Debug, Clone)]
pub struct CellCheck {
    /// Display label (`thrust E=15 b=512`, …).
    pub label: String,
    /// Input size (`bE · 2^doublings`).
    pub n: usize,
    /// Global merge rounds measured.
    pub rounds: usize,
    /// Measured merge-phase cycles per global round.
    pub merge_cycles: Vec<usize>,
    /// Predicted per-round merge cycles: `n/(wE) ×` per-warp worst-case
    /// cycles.
    pub predicted_cycles: usize,
    /// Global-round `β₂` of the worst-case workload.
    pub beta2_worst: Option<f64>,
    /// Global-round `β₂` of the sorted control (only when the worst
    /// case differs from sorted order).
    pub beta2_sorted: Option<f64>,
    /// Everything that disagreed (empty = the cell checks out).
    pub failures: Vec<String>,
}

impl CellCheck {
    /// True iff the static and measured stories agree.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The workload whose merge rounds realize the reference worst case for
/// these parameters.
fn worst_workload(w: usize, e: usize) -> WorkloadSpec {
    match classify(w, e) {
        BoundCase::SmallOdd | BoundCase::LargeOdd { .. } => WorkloadSpec::WorstCase,
        BoundCase::PowerOfTwo | BoundCase::Sorted { .. } => WorkloadSpec::Sorted,
    }
}

/// Cross-check one cell: sort `bE · 2^doublings` worst-case keys on the
/// analytic backend and compare its merge counters against the symbolic
/// per-warp verdict.
///
/// # Errors
///
/// Propagates generation and sort errors (inadmissible parameters).
pub fn crosscheck_cell(
    label: &str,
    params: &SortParams,
    doublings: usize,
) -> Result<CellCheck, WcmsError> {
    let (w, e, b) = (params.w, params.e, params.b);
    let n = params.block_elems() << doublings;
    let spec = worst_workload(w, e);
    let input = spec.generate(n, w, e, b)?;

    let (out, report) = BackendKind::Analytic.sort_with_report(&input, params)?;
    let asg = reference_assignment(w, e)?;
    let sym = crate::bounds::alignment_of_assignment(&asg);
    let ev = evaluate(&asg)?;
    let warp_stages = n / (w * e);
    let predicted_cycles = warp_stages * ev.cycles();
    let static_floor = warp_stages * sym.min_cycles;

    let mut failures = Vec::new();
    if !out.iter().enumerate().all(|(i, &v)| v == i as u32) {
        failures.push(format!("{label}: output is not the sorted permutation"));
    }
    if report.rounds.len() != doublings {
        failures.push(format!(
            "{label}: expected {doublings} global rounds, measured {}",
            report.rounds.len()
        ));
    }
    let merge_cycles: Vec<usize> = report.rounds.iter().map(|r| r.shared.merge.cycles).collect();
    for (i, r) in report.rounds.iter().enumerate() {
        if r.shared.merge.steps != n / w {
            failures.push(format!(
                "{label} round {i}: merge steps {} != n/w = {}",
                r.shared.merge.steps,
                n / w
            ));
        }
        if r.shared.merge.cycles != predicted_cycles {
            failures.push(format!(
                "{label} round {i}: merge cycles {} != {warp_stages} warp-stages × {} \
                 per-warp worst-case cycles = {predicted_cycles}",
                r.shared.merge.cycles,
                ev.cycles()
            ));
        }
        if r.shared.merge.cycles < static_floor {
            failures.push(format!(
                "{label} round {i}: merge cycles {} below the static floor {static_floor}",
                r.shared.merge.cycles
            ));
        }
    }

    // β₂ dominance: the adversarial permutation must not be beaten by
    // the sorted control (only meaningful when they differ).
    let beta2_worst = report.global_beta2();
    let beta2_sorted = if spec == WorkloadSpec::WorstCase {
        let sorted_input = WorkloadSpec::Sorted.generate(n, w, e, b)?;
        let (_, sorted_report) = BackendKind::Analytic.sort_with_report(&sorted_input, params)?;
        let bs = sorted_report.global_beta2();
        if let (Some(worst), Some(sorted)) = (beta2_worst, bs) {
            if worst < sorted {
                failures.push(format!(
                    "{label}: worst-case β₂ {worst:.4} below sorted control {sorted:.4}"
                ));
            }
        }
        bs
    } else {
        None
    };

    Ok(CellCheck {
        label: label.to_string(),
        n,
        rounds: report.rounds.len(),
        merge_cycles,
        predicted_cycles,
        beta2_worst,
        beta2_sorted,
        failures,
    })
}

/// Layer B over the Fig. 4 grid: both library tunings on the Quadro
/// M4000 (Thrust `E=15, b=512`; Modern GPU `E=15, b=128`), worst-case
/// inputs, `doublings` global rounds each.
///
/// # Errors
///
/// Propagates cell errors.
pub fn crosscheck_fig4(doublings: usize) -> Result<Vec<CellCheck>, WcmsError> {
    let device = DeviceSpec::quadro_m4000();
    let thrust = SortParams::thrust(&device)?;
    let mgpu = SortParams::mgpu(&device)?;
    Ok(vec![
        crosscheck_cell("fig4/thrust", &thrust, doublings)?,
        crosscheck_cell("fig4/mgpu", &mgpu, doublings)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_a_has_no_disagreements_at_w32() {
        let diffs = warp_grid_disagreements(32).unwrap();
        assert!(diffs.is_empty(), "{diffs:?}");
    }

    #[test]
    fn fig4_cells_check_out() {
        for cell in crosscheck_fig4(2).unwrap() {
            assert!(cell.holds(), "{}: {:?}", cell.label, cell.failures);
            assert_eq!(cell.rounds, 2, "{}", cell.label);
        }
    }

    #[test]
    fn shared_factor_cell_checks_out_on_sorted_input() {
        // E = 8 (power of two): sorted order is the reference worst case.
        let p = SortParams::new(32, 8, 64).unwrap();
        let cell = crosscheck_cell("pow2/E=8", &p, 2).unwrap();
        assert!(cell.holds(), "{:?}", cell.failures);
        assert!(cell.beta2_sorted.is_none());
    }
}
