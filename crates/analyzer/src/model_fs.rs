//! Pass 2 (model) — filesystem crash consistency of the checkpoint
//! store's write paths.
//!
//! The interleaving model ([`crate::shard_model`]) explores *process*
//! schedules; this module explores *machine crashes*: power loss after
//! every individual filesystem operation of the store's two durable
//! publish sequences, under a crash model where file **data** may be
//! lost or torn unless fsynced. The scripts are not hand-written —
//! they are generated from the same
//! [`wcms_bench::protocol::ATOMIC_WRITE_STEPS`] /
//! [`wcms_bench::protocol::LEASE_CLAIM_STEPS`] constants production
//! iterates, and recovery is judged by the same
//! [`wcms_bench::checkpoint::decode_file`] /
//! [`wcms_bench::protocol::classify_lease`] ladder recovery runs. If
//! the protocol constants changed (say, fsync moved after the
//! rename), this explorer — not a human reviewer — would be what
//! notices.
//!
//! ## The crash model
//!
//! [`ModelFs`] mimics a metadata-journaling, data-delayed filesystem
//! (ext4 `data=ordered` reality): names are durable as soon as the
//! operation returns — `create`, `rename`, `hard_link` and `remove`
//! survive a crash — but file *contents* written since the last
//! `fsync` may survive as any torn prefix (including empty). A crash
//! therefore yields a **set** of possible disk states: the cartesian
//! product, over surviving files, of each file's possible contents.
//! The explorer enumerates a crash after every prefix of every script
//! and every member of that set, and asserts recovery reaches a legal
//! state:
//!
//! * **fresh commit** (new cell/manifest): the destination is absent
//!   or decodes to exactly the committed payload — never torn;
//! * **overwrite commit**: the destination decodes to the old payload
//!   or the new one — never absent, never torn;
//! * **lease claim**: the lease path classifies as `Missing` or
//!   `Valid` with the claimed payload — a published lease name never
//!   points at bytes that were not forced;
//! * after the final acknowledgement, the new content must have
//!   survived (an acked commit is durable).
//!
//! Seeded buggy variants ([`FsVariant`]) — skipping the fsync,
//! writing in place — are each caught with a replayable
//! counterexample (script, crash point, survivor choice).

use std::collections::BTreeMap;

use wcms_bench::checkpoint::{decode_file, encode_file};
use wcms_bench::protocol::{
    classify_lease, CommitStep, LeaseInfo, LeaseView, ATOMIC_WRITE_STEPS, LEASE_CLAIM_STEPS,
};

/// One filesystem operation of a commit script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsOp {
    /// Create an empty file (truncating; data not durable yet).
    Create(&'static str),
    /// Replace a file's cached contents (creates the file if absent;
    /// data not durable until fsynced).
    Write(&'static str, Vec<u8>),
    /// Force the file's current contents to durable storage.
    Fsync(&'static str),
    /// Atomically rename `src` to `dst` (name change is durable).
    Rename(&'static str, &'static str),
    /// Atomically link `dst` to `src`'s file (durable; the claim race
    /// loser path — fails if `dst` exists — never fires in these
    /// single-writer scripts).
    HardLink(&'static str, &'static str),
    /// Unlink a name (durable).
    Remove(&'static str),
    /// The caller observes success ("the commit happened"). After
    /// this, the committed content must survive any crash.
    Ack,
}

/// A file's state: `cached` is what readers see pre-crash, `durable`
/// is what `fsync` last forced (`None`: never forced).
#[derive(Debug, Clone)]
struct FileNode {
    cached: Vec<u8>,
    durable: Option<Vec<u8>>,
}

/// The modeled directory: name → file. Names behave
/// metadata-journaled (operations on them are crash-durable); data is
/// delayed (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ModelFs {
    files: BTreeMap<&'static str, FileNode>,
}

impl ModelFs {
    /// Start with `name` present and durable with `bytes` (a file a
    /// previous, completed commit left behind).
    pub fn seed_durable(&mut self, name: &'static str, bytes: Vec<u8>) {
        self.files.insert(name, FileNode { cached: bytes.clone(), durable: Some(bytes) });
    }

    /// Execute one operation (scripts are single-writer; the ops
    /// cannot fail on the states our scripts produce).
    pub fn apply(&mut self, op: &FsOp) {
        match op {
            FsOp::Create(name) => {
                self.files.insert(name, FileNode { cached: Vec::new(), durable: None });
            }
            FsOp::Write(name, bytes) => {
                let node = self
                    .files
                    .entry(name)
                    .or_insert(FileNode { cached: Vec::new(), durable: None });
                node.cached = bytes.clone();
            }
            FsOp::Fsync(name) => {
                if let Some(node) = self.files.get_mut(name) {
                    node.durable = Some(node.cached.clone());
                }
            }
            FsOp::Rename(src, dst) => {
                if let Some(node) = self.files.remove(src) {
                    self.files.insert(dst, node);
                }
            }
            FsOp::HardLink(src, dst) => {
                debug_assert!(
                    !self.files.contains_key(dst),
                    "claim race loser in a 1-writer script"
                );
                if let Some(node) = self.files.get(src).cloned() {
                    self.files.entry(dst).or_insert(node);
                }
            }
            FsOp::Remove(name) => {
                self.files.remove(name);
            }
            FsOp::Ack => {}
        }
    }

    /// The possible post-crash contents of one file: its durable bytes
    /// if in sync, else the durable bytes plus every distinct torn
    /// prefix of the unforced cache (empty, half, all-but-one, all).
    fn survivors(node: &FileNode) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = Vec::new();
        if let Some(d) = &node.durable {
            out.push(d.clone());
            if *d == node.cached {
                return out;
            }
        }
        let len = node.cached.len();
        for cut in [0, len / 2, len.saturating_sub(1), len] {
            let p = node.cached[..cut].to_vec();
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }

    /// Enumerate every possible post-crash disk image: for each
    /// surviving name, the choice of which torn/durable content it
    /// retained. Returns `(names, per-file survivor lists)`; a crash
    /// image is one index per file.
    fn crash_space(&self) -> (Vec<&'static str>, Vec<Vec<Vec<u8>>>) {
        let names: Vec<&'static str> = self.files.keys().copied().collect();
        let options = names.iter().map(|n| Self::survivors(&self.files[n])).collect();
        (names, options)
    }
}

/// What counts as a legal recovery state for a script.
#[derive(Debug, Clone)]
enum Contract {
    /// `dst` absent, or decodes to exactly `payload`.
    FreshCell { dst: &'static str, payload: String },
    /// `dst` decodes to `old` or `new` — never absent, never torn.
    OverwriteCell { dst: &'static str, old: String, new: String },
    /// `dst` classifies (checksum + payload parse) as `Missing` or
    /// `Valid(info)`.
    LeaseClaim { dst: &'static str, info: LeaseInfo },
}

impl Contract {
    fn dst(&self) -> &'static str {
        match self {
            Contract::FreshCell { dst, .. }
            | Contract::OverwriteCell { dst, .. }
            | Contract::LeaseClaim { dst, .. } => dst,
        }
    }

    /// Judge one recovered disk image. `acked`: the script's `Ack` had
    /// executed before the crash, so the new content must be there.
    fn judge(&self, disk: &BTreeMap<&'static str, Vec<u8>>, acked: bool) -> Result<(), String> {
        let text = disk.get(self.dst()).map(|b| String::from_utf8_lossy(b).into_owned());
        match self {
            Contract::FreshCell { dst, payload } => match &text {
                None if acked => Err(format!("{dst}: acknowledged commit vanished in the crash")),
                None => Ok(()),
                Some(t) => match decode_file(t) {
                    Ok(p) if p == *payload => Ok(()),
                    Ok(_) | Err(_) => Err(format!(
                        "{dst}: a published name points at torn/foreign bytes after crash \
                         ({} byte(s) recovered)",
                        t.len()
                    )),
                },
            },
            Contract::OverwriteCell { dst, old, new } => match &text {
                None => Err(format!("{dst}: overwrite destroyed the previous committed file")),
                Some(t) => match decode_file(t) {
                    Ok(p) if p == *new => Ok(()),
                    Ok(p) if p == *old && !acked => Ok(()),
                    Ok(p) if p == *old => {
                        Err(format!("{dst}: acknowledged overwrite rolled back to the old payload"))
                    }
                    Ok(_) | Err(_) => Err(format!(
                        "{dst}: overwrite left torn bytes — neither old nor new payload \
                         ({} byte(s) recovered)",
                        t.len()
                    )),
                },
            },
            Contract::LeaseClaim { dst, info } => match classify_lease(text.as_deref()) {
                LeaseView::Missing if acked => {
                    Err(format!("{dst}: acknowledged lease claim vanished in the crash"))
                }
                LeaseView::Missing => Ok(()),
                LeaseView::Valid(got) if got == *info => Ok(()),
                LeaseView::Valid(_) => {
                    Err(format!("{dst}: recovered lease names a different claimant"))
                }
                LeaseView::Corrupt => Err(format!(
                    "{dst}: published lease classifies Corrupt — its bytes were never forced"
                )),
            },
        }
    }
}

/// Correct write path or a deliberately seeded mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsVariant {
    /// The step plans exactly as `protocol` specifies them.
    Correct,
    /// Bug: the `SyncTemp` step is dropped — publish a name whose
    /// data was never forced.
    BuggySkipFsync,
    /// Bug: write the destination in place instead of via
    /// temp + fsync + rename.
    BuggyDirectWrite,
}

impl FsVariant {
    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FsVariant::Correct => "correct",
            FsVariant::BuggySkipFsync => "skip-fsync",
            FsVariant::BuggyDirectWrite => "direct-write",
        }
    }
}

/// One commit script: initial durable files, the operation sequence
/// (generated from the protocol's step plan), and the recovery
/// contract.
#[derive(Debug, Clone)]
pub struct FsScript {
    /// Display name (`atomic-write/fresh`, `lease-claim/publish`, …).
    pub name: &'static str,
    initial: Vec<(&'static str, Vec<u8>)>,
    ops: Vec<FsOp>,
    contract: Contract,
}

const TMP: &str = "cell.tmp";
const CELL: &str = "cell";
const LEASE: &str = "lease";

/// Translate a protocol step plan into concrete filesystem operations
/// (the same translation `run_claim_steps` / `write_atomic` perform),
/// with a trailing `Ack`.
fn ops_from_plan(plan: &[CommitStep], framed: &[u8], link: bool) -> Vec<FsOp> {
    let dst = if link { LEASE } else { CELL };
    let mut ops: Vec<FsOp> = plan
        .iter()
        .map(|step| match step {
            CommitStep::CreateTemp => FsOp::Create(TMP),
            CommitStep::WritePayload => FsOp::Write(TMP, framed.to_vec()),
            CommitStep::SyncTemp => FsOp::Fsync(TMP),
            CommitStep::Publish => {
                if link {
                    FsOp::HardLink(TMP, dst)
                } else {
                    FsOp::Rename(TMP, dst)
                }
            }
            CommitStep::RemoveTemp => FsOp::Remove(TMP),
        })
        .collect();
    ops.push(FsOp::Ack);
    ops
}

fn apply_variant(
    ops: Vec<FsOp>,
    framed: &[u8],
    dst: &'static str,
    variant: FsVariant,
) -> Vec<FsOp> {
    match variant {
        FsVariant::Correct => ops,
        FsVariant::BuggySkipFsync => {
            ops.into_iter().filter(|op| !matches!(op, FsOp::Fsync(_))).collect()
        }
        FsVariant::BuggyDirectWrite => vec![FsOp::Write(dst, framed.to_vec()), FsOp::Ack],
    }
}

fn cell_payload_old() -> String {
    "{\"cell\":\"old\",\"elapsed_s\":1.0}".to_string()
}

fn cell_payload_new() -> String {
    "{\"cell\":\"new\",\"elapsed_s\":2.0}".to_string()
}

fn claim_info() -> LeaseInfo {
    LeaseInfo { pid: 42, worker: "w0".into(), fingerprint: 0xBEEF, deadline_ms: 5_000, trace: None }
}

/// The standard script suite for one variant: every durable publish
/// sequence the store runs, generated from the protocol constants.
#[must_use]
pub fn standard_fs_scripts(variant: FsVariant) -> Vec<FsScript> {
    let new = cell_payload_new();
    let old = cell_payload_old();
    let framed_new = encode_file(&new).into_bytes();
    let framed_old = encode_file(&old).into_bytes();
    let info = claim_info();
    let framed_lease = encode_file(&info.encode()).into_bytes();
    vec![
        FsScript {
            name: "atomic-write/fresh",
            initial: Vec::new(),
            ops: apply_variant(
                ops_from_plan(ATOMIC_WRITE_STEPS, &framed_new, false),
                &framed_new,
                CELL,
                variant,
            ),
            contract: Contract::FreshCell { dst: CELL, payload: new.clone() },
        },
        FsScript {
            name: "atomic-write/overwrite",
            initial: vec![(CELL, framed_old.clone())],
            ops: apply_variant(
                ops_from_plan(ATOMIC_WRITE_STEPS, &framed_new, false),
                &framed_new,
                CELL,
                variant,
            ),
            contract: Contract::OverwriteCell { dst: CELL, old, new },
        },
        FsScript {
            name: "lease-claim/publish",
            initial: Vec::new(),
            ops: apply_variant(
                ops_from_plan(LEASE_CLAIM_STEPS, &framed_lease, true),
                &framed_lease,
                LEASE,
                variant,
            ),
            contract: Contract::LeaseClaim { dst: LEASE, info },
        },
    ]
}

/// One illegal recovery state, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct FsViolation {
    /// Which script.
    pub script: &'static str,
    /// Crash after this many operations had executed.
    pub crash_after: usize,
    /// Per-surviving-file survivor index (the crash image).
    pub choice: Vec<usize>,
    /// What the recovery contract rejected.
    pub message: String,
}

/// One script's exhaustive crash exploration.
#[derive(Debug, Clone)]
pub struct FsScriptReport {
    /// Which script.
    pub script: &'static str,
    /// Crash points enumerated (one after every operation prefix,
    /// including after `Ack`).
    pub crash_points: usize,
    /// Total recovered disk images judged.
    pub cases: usize,
    /// Contract violations found.
    pub violations: Vec<FsViolation>,
}

impl FsScriptReport {
    /// True iff no crash image violated the contract.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn run_prefix(script: &FsScript, crash_after: usize) -> (ModelFs, bool) {
    let mut fs = ModelFs::default();
    for (name, bytes) in &script.initial {
        fs.seed_durable(name, bytes.clone());
    }
    let mut acked = false;
    for op in &script.ops[..crash_after] {
        fs.apply(op);
        if matches!(op, FsOp::Ack) {
            acked = true;
        }
    }
    (fs, acked)
}

/// Deterministically rebuild one crash image and judge it — the
/// replay entry point for [`FsViolation`]s. Errors iff the
/// counterexample still violates the contract.
pub fn replay_fs_case(
    script: &FsScript,
    crash_after: usize,
    choice: &[usize],
) -> Result<(), String> {
    let (fs, acked) = run_prefix(script, crash_after);
    let (names, options) = fs.crash_space();
    let mut disk: BTreeMap<&'static str, Vec<u8>> = BTreeMap::new();
    for (i, name) in names.iter().enumerate() {
        let opts = &options[i];
        let pick = choice.get(i).copied().unwrap_or(0).min(opts.len().saturating_sub(1));
        disk.insert(name, opts[pick].clone());
    }
    script.contract.judge(&disk, acked)
}

/// Explore every crash point × every crash image of one script.
#[must_use]
pub fn explore_fs_script(script: &FsScript) -> FsScriptReport {
    let mut report = FsScriptReport {
        script: script.name,
        crash_points: script.ops.len() + 1,
        cases: 0,
        violations: Vec::new(),
    };
    for crash_after in 0..=script.ops.len() {
        let (fs, acked) = run_prefix(script, crash_after);
        let (names, options) = fs.crash_space();
        // Odometer over the cartesian product of survivor choices.
        let mut choice = vec![0usize; names.len()];
        loop {
            let disk: BTreeMap<&'static str, Vec<u8>> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (*n, options[i][choice[i]].clone()))
                .collect();
            report.cases += 1;
            if let Err(message) = script.contract.judge(&disk, acked) {
                report.violations.push(FsViolation {
                    script: script.name,
                    crash_after,
                    choice: choice.clone(),
                    message,
                });
            }
            // Advance the odometer; empty product runs exactly once.
            let mut i = 0;
            loop {
                if i == choice.len() {
                    break;
                }
                choice[i] += 1;
                if choice[i] < options[i].len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
            if i == choice.len() {
                break;
            }
        }
    }
    report
}

/// Explore the full standard suite on the correct protocol.
#[must_use]
pub fn check_fs_consistency() -> Vec<FsScriptReport> {
    standard_fs_scripts(FsVariant::Correct).iter().map(explore_fs_script).collect()
}

/// One seeded filesystem mutation's verdict.
#[derive(Debug, Clone)]
pub struct FsMutationReport {
    /// Which mutation.
    pub variant: FsVariant,
    /// First counterexample, when caught.
    pub counterexample: Option<FsViolation>,
    /// Crash images judged across the suite.
    pub cases: usize,
    /// True iff at least one script's contract rejected a crash image.
    pub caught: bool,
    /// True iff replaying the counterexample (script + crash point +
    /// survivor choice) reproduces the rejection.
    pub replayed: bool,
}

/// Run every seeded filesystem mutation; each must be caught with a
/// replayable counterexample.
#[must_use]
pub fn check_fs_mutations() -> Vec<FsMutationReport> {
    [FsVariant::BuggySkipFsync, FsVariant::BuggyDirectWrite]
        .into_iter()
        .map(|variant| {
            let scripts = standard_fs_scripts(variant);
            let mut cases = 0usize;
            let mut counterexample = None;
            for script in &scripts {
                let r = explore_fs_script(script);
                cases += r.cases;
                if counterexample.is_none() {
                    counterexample = r.violations.first().cloned();
                }
            }
            let caught = counterexample.is_some();
            let replayed = counterexample.as_ref().is_some_and(|v| {
                scripts
                    .iter()
                    .find(|s| s.name == v.script)
                    .is_some_and(|script| replay_fs_case(script, v.crash_after, &v.choice).is_err())
            });
            FsMutationReport { variant, counterexample, cases, caught, replayed }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_write_paths_survive_every_crash_point() {
        for r in check_fs_consistency() {
            assert!(r.clean(), "{}: {:?}", r.script, r.violations.first());
            assert!(r.crash_points >= 5, "{}: every step must get a crash point", r.script);
            assert!(r.cases > 0, "{}", r.script);
        }
    }

    #[test]
    fn every_seeded_fs_mutation_is_caught_and_replays() {
        let reports = check_fs_mutations();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.caught, "{}: mutation escaped the crash explorer", r.variant.name());
            assert!(r.replayed, "{}: counterexample did not replay", r.variant.name());
        }
    }

    #[test]
    fn skip_fsync_is_caught_by_the_published_torn_bytes_contract() {
        let reports = check_fs_mutations();
        let r = reports
            .iter()
            .find(|r| r.variant == FsVariant::BuggySkipFsync)
            .expect("suite includes skip-fsync");
        let v = r.counterexample.as_ref().expect("caught");
        assert!(v.message.contains("torn") || v.message.contains("forced"), "{}", v.message);
    }

    #[test]
    fn unfsynced_data_really_tears() {
        let mut fs = ModelFs::default();
        fs.apply(&FsOp::Write(CELL, b"0123456789".to_vec()));
        let (names, options) = fs.crash_space();
        assert_eq!(names, vec![CELL]);
        // Empty, half, all-but-one, all.
        assert_eq!(options[0].len(), 4);
        assert!(options[0].contains(&Vec::new()));
        assert!(options[0].contains(&b"0123456789".to_vec()));
        // After fsync the image is exact.
        fs.apply(&FsOp::Fsync(CELL));
        let (_, options) = fs.crash_space();
        assert_eq!(options[0], vec![b"0123456789".to_vec()]);
    }

    #[test]
    fn replay_of_a_clean_case_is_ok() {
        let scripts = standard_fs_scripts(FsVariant::Correct);
        for s in &scripts {
            assert!(replay_fs_case(s, s.ops.len(), &[0, 0]).is_ok(), "{}", s.name);
        }
    }
}
