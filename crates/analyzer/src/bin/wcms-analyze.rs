//! `wcms-analyze` — the workspace's static-analysis gate.
//!
//! ```text
//! wcms-analyze [--verify-bounds] [--model-check] [--model-check-shard] [--crosscheck]
//!              [--lint] [--all] [--warp W] [--doublings D] [--min-schedules N]
//!              [--root PATH] [--allowlist PATH] [--json]
//! ```
//!
//! Exit status 0 when every requested pass is clean, 1 on any finding,
//! 2 on usage errors. CI runs `wcms-analyze --all` as a required job.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use wcms_analyzer::bounds::{verify_grid, verify_multiway_rounds};
use wcms_analyzer::crosscheck::{crosscheck_fig4, warp_grid_disagreements};
use wcms_analyzer::interleave::ExploreConfig;
use wcms_analyzer::lint::lint_workspace;
use wcms_analyzer::model_fs::{check_fs_consistency, check_fs_mutations};
use wcms_analyzer::shard_model::{check_shard_mutations, check_shard_protocol};
use wcms_analyzer::supervisor_model::check_supervisor_protocol;

struct Options {
    verify_bounds: bool,
    model_check: bool,
    model_check_shard: bool,
    crosscheck: bool,
    lint: bool,
    json: bool,
    warp: usize,
    doublings: usize,
    min_schedules: usize,
    root: PathBuf,
    allowlist: Option<PathBuf>,
}

const USAGE: &str = "usage: wcms-analyze [--verify-bounds] [--model-check] \
[--model-check-shard] [--crosscheck] [--lint] [--all] [--warp W] [--doublings D] \
[--min-schedules N] [--root PATH] [--allowlist PATH] [--json]";

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        verify_bounds: false,
        model_check: false,
        model_check_shard: false,
        crosscheck: false,
        lint: false,
        json: false,
        warp: 32,
        doublings: 2,
        min_schedules: 10_000,
        root: PathBuf::from("."),
        allowlist: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"));
        match a.as_str() {
            "--verify-bounds" => o.verify_bounds = true,
            "--model-check" => o.model_check = true,
            "--model-check-shard" => o.model_check_shard = true,
            "--crosscheck" => o.crosscheck = true,
            "--lint" => o.lint = true,
            "--all" => {
                o.verify_bounds = true;
                o.model_check = true;
                o.model_check_shard = true;
                o.crosscheck = true;
                o.lint = true;
            }
            "--json" => o.json = true,
            "--warp" => {
                o.warp = value("--warp")?.parse().map_err(|e| format!("--warp: {e}"))?;
            }
            "--doublings" => {
                o.doublings =
                    value("--doublings")?.parse().map_err(|e| format!("--doublings: {e}"))?;
            }
            "--min-schedules" => {
                o.min_schedules = value("--min-schedules")?
                    .parse()
                    .map_err(|e| format!("--min-schedules: {e}"))?;
            }
            "--root" => o.root = PathBuf::from(value("--root")?),
            "--allowlist" => o.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if !(o.verify_bounds || o.model_check || o.model_check_shard || o.crosscheck || o.lint) {
        return Err(format!("nothing to do — pick a pass or --all\n{USAGE}"));
    }
    Ok(o)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let mut ok = true;
    let mut json_sections: Vec<String> = Vec::new();

    if o.verify_bounds {
        // Multiway rounds for a representative tuning slice: co-prime,
        // shared-factor and power-of-two E under a 4-way fan-in. Rounds
        // with no closed form (the irregular interleavings) are
        // *reported*, never failed — only a stride-regular round that
        // misses its d·E form is a finding.
        let multiway: Vec<_> = [3usize, 5, 8]
            .into_iter()
            .filter(|&e| e < o.warp)
            .filter_map(|e| verify_multiway_rounds(o.warp, e, 4).ok())
            .flatten()
            .collect();
        let multiway_bad = multiway.iter().filter(|v| !v.holds()).count();
        match verify_grid(o.warp) {
            Ok(verdicts) => {
                let bad = verdicts.iter().filter(|v| !v.holds()).count() + multiway_bad;
                if o.json {
                    let items: Vec<String> = verdicts
                        .iter()
                        .map(|v| {
                            format!(
                                "{{\"e\":{},\"case\":{},\"aligned\":{},\"closed_form\":{},\
                                 \"min_cycles\":{},\"holds\":{}}}",
                                v.e,
                                json_escape(v.case.name()),
                                v.aligned,
                                v.closed_form,
                                v.min_cycles,
                                v.holds()
                            )
                        })
                        .collect();
                    let mw_items: Vec<String> = multiway
                        .iter()
                        .map(|v| {
                            format!(
                                "{{\"e\":{},\"k\":{},\"round\":{},\"stride_regular\":{},\
                                 \"closed_form\":{},\"per_warp\":{:?},\"holds\":{}}}",
                                v.e,
                                v.k,
                                json_escape(v.label),
                                v.stride_regular,
                                v.closed_form.map_or("null".into(), |c| c.to_string()),
                                v.per_warp_aligned,
                                v.holds()
                            )
                        })
                        .collect();
                    json_sections.push(format!(
                        "\"bounds\":{{\"w\":{},\"verdicts\":[{}],\"multiway\":[{}]}}",
                        o.warp,
                        items.join(","),
                        mw_items.join(",")
                    ));
                } else {
                    println!("== verify-bounds (w = {}) ==", o.warp);
                    for v in &verdicts {
                        println!(
                            "  E={:<2} {:<13} aligned={:<4} closed-form={:<4} min-cycles={:<4} {}",
                            v.e,
                            v.case.name(),
                            v.aligned,
                            v.closed_form,
                            v.min_cycles,
                            if v.holds() { "ok" } else { "FAIL" }
                        );
                        for f in &v.failures {
                            println!("       {f}");
                        }
                    }
                    for v in &multiway {
                        match v.closed_form {
                            Some(cf) => println!(
                                "  E={:<2} multiway k={} {:<11} per-warp {:?} closed-form={cf} {}",
                                v.e,
                                v.k,
                                v.label,
                                v.per_warp_aligned,
                                if v.holds() { "ok" } else { "FAIL" }
                            ),
                            None => println!(
                                "  E={:<2} multiway k={} {:<11} per-warp {:?} \
                                 no closed form (reported, not a failure)",
                                v.e, v.k, v.label, v.per_warp_aligned
                            ),
                        }
                        for f in &v.failures {
                            println!("       {f}");
                        }
                    }
                    println!(
                        "  {} verdicts ({} multiway rounds), {} failures",
                        verdicts.len(),
                        multiway.len(),
                        bad
                    );
                }
                ok &= bad == 0;
            }
            Err(e) => {
                eprintln!("verify-bounds: {e}");
                ok = false;
            }
        }
    }

    if o.model_check {
        let reports = check_supervisor_protocol(&ExploreConfig::default());
        let total: usize = reports.iter().map(|r| r.report.schedules).sum();
        let violations: usize = reports.iter().map(|r| r.report.violations.len()).sum();
        let clean = reports.iter().all(|r| r.report.clean()) && total >= o.min_schedules;
        if o.json {
            let items: Vec<String> = reports
                .iter()
                .map(|r| {
                    format!(
                        "{{\"scenario\":{},\"schedules\":{},\"states\":{},\"max_depth\":{},\
                         \"violations\":{},\"truncated\":{}}}",
                        json_escape(r.name),
                        r.report.schedules,
                        r.report.states,
                        r.report.max_depth_seen,
                        r.report.violations.len(),
                        r.report.truncated
                    )
                })
                .collect();
            json_sections.push(format!(
                "\"model_check\":{{\"total_schedules\":{total},\"scenarios\":[{}]}}",
                items.join(",")
            ));
        } else {
            println!("== model-check (supervisor protocol) ==");
            for r in &reports {
                println!(
                    "  {:<24} {:>7} schedules, {:>8} states, depth {:>2}, {} violations{}",
                    r.name,
                    r.report.schedules,
                    r.report.states,
                    r.report.max_depth_seen,
                    r.report.violations.len(),
                    if r.report.truncated { " (TRUNCATED)" } else { "" }
                );
                for v in r.report.violations.iter().take(3) {
                    println!("       {} via {:?}", v.message, v.schedule);
                }
            }
            println!(
                "  {total} schedules total (minimum {}), {violations} violations",
                o.min_schedules
            );
        }
        if total < o.min_schedules {
            eprintln!("model-check: only {total} schedules explored (< {})", o.min_schedules);
        }
        ok &= clean;
    }

    if o.model_check_shard {
        let scenarios = check_shard_protocol(&ExploreConfig::default());
        let fs_scripts = check_fs_consistency();
        let mutations = check_shard_mutations(&ExploreConfig::default());
        let fs_mutations = check_fs_mutations();

        let total: usize = scenarios.iter().map(|r| r.report.schedules).sum();
        let fs_cases: usize = fs_scripts.iter().map(|r| r.cases).sum();
        let total_violations: usize =
            scenarios.iter().map(|r| r.report.violations.len()).sum::<usize>()
                + fs_scripts.iter().map(|r| r.violations.len()).sum::<usize>();
        let all_caught = mutations.iter().all(|m| m.caught && m.replayed)
            && fs_mutations.iter().all(|m| m.caught && m.replayed);
        let clean = scenarios.iter().all(|r| r.report.clean())
            && fs_scripts.iter().all(wcms_analyzer::model_fs::FsScriptReport::clean)
            && total >= o.min_schedules
            && all_caught;

        if o.json {
            let scenario_items: Vec<String> = scenarios
                .iter()
                .map(|r| {
                    format!(
                        "{{\"scenario\":{},\"schedules\":{},\"states\":{},\"max_depth\":{},\
                         \"violations\":{},\"truncated\":{}}}",
                        json_escape(r.name),
                        r.report.schedules,
                        r.report.states,
                        r.report.max_depth_seen,
                        r.report.violations.len(),
                        r.report.truncated
                    )
                })
                .collect();
            let fs_items: Vec<String> = fs_scripts
                .iter()
                .map(|r| {
                    format!(
                        "{{\"script\":{},\"crash_points\":{},\"cases\":{},\"violations\":{}}}",
                        json_escape(r.script),
                        r.crash_points,
                        r.cases,
                        r.violations.len()
                    )
                })
                .collect();
            let mut mutation_items: Vec<String> = mutations
                .iter()
                .map(|m| {
                    let ce = m.counterexample.as_ref().map_or("null".to_string(), |v| {
                        format!(
                            "{{\"schedule\":{:?},\"message\":{}}}",
                            v.schedule,
                            json_escape(&v.message)
                        )
                    });
                    format!(
                        "{{\"name\":{},\"kind\":\"interleaving\",\"schedules\":{},\
                         \"caught\":{},\"replayed\":{},\"counterexample\":{ce}}}",
                        json_escape(m.variant.name()),
                        m.schedules,
                        m.caught,
                        m.replayed
                    )
                })
                .collect();
            mutation_items.extend(fs_mutations.iter().map(|m| {
                let ce = m.counterexample.as_ref().map_or("null".to_string(), |v| {
                    format!(
                        "{{\"script\":{},\"crash_after\":{},\"choice\":{:?},\"message\":{}}}",
                        json_escape(v.script),
                        v.crash_after,
                        v.choice,
                        json_escape(&v.message)
                    )
                });
                format!(
                    "{{\"name\":{},\"kind\":\"crash\",\"cases\":{},\
                     \"caught\":{},\"replayed\":{},\"counterexample\":{ce}}}",
                    json_escape(m.variant.name()),
                    m.cases,
                    m.caught,
                    m.replayed
                )
            }));
            json_sections.push(format!(
                "\"model_check_shard\":{{\"total_schedules\":{total},\
                 \"total_violations\":{total_violations},\"fs_cases\":{fs_cases},\
                 \"scenarios\":[{}],\"fs\":[{}],\"mutations\":[{}]}}",
                scenario_items.join(","),
                fs_items.join(","),
                mutation_items.join(",")
            ));
        } else {
            println!("== model-check-shard (lease/steal protocol + fs crash consistency) ==");
            for r in &scenarios {
                println!(
                    "  {:<24} {:>7} schedules, {:>8} states, depth {:>2}, {} violations{}",
                    r.name,
                    r.report.schedules,
                    r.report.states,
                    r.report.max_depth_seen,
                    r.report.violations.len(),
                    if r.report.truncated { " (TRUNCATED)" } else { "" }
                );
                for v in r.report.violations.iter().take(3) {
                    println!("       {} via {:?}", v.message, v.schedule);
                }
            }
            for r in &fs_scripts {
                println!(
                    "  fs {:<21} {:>7} crash images over {} crash points, {} violations",
                    r.script,
                    r.cases,
                    r.crash_points,
                    r.violations.len()
                );
                for v in r.violations.iter().take(3) {
                    println!(
                        "       {} (crash after step {}, choice {:?})",
                        v.message, v.crash_after, v.choice
                    );
                }
            }
            for m in &mutations {
                let verdict = match (m.caught, m.replayed) {
                    (true, true) => "caught, replayed".to_string(),
                    (true, false) => "caught, REPLAY FAILED".to_string(),
                    _ => "ESCAPED".to_string(),
                };
                println!(
                    "  mutation {:<18} {:>7} schedules: {verdict}",
                    m.variant.name(),
                    m.schedules
                );
                if let Some(v) = &m.counterexample {
                    println!("       counterexample schedule {:?}: {}", v.schedule, v.message);
                }
            }
            for m in &fs_mutations {
                let verdict = match (m.caught, m.replayed) {
                    (true, true) => "caught, replayed".to_string(),
                    (true, false) => "caught, REPLAY FAILED".to_string(),
                    _ => "ESCAPED".to_string(),
                };
                println!(
                    "  mutation {:<18} {:>7} crash images: {verdict}",
                    m.variant.name(),
                    m.cases
                );
                if let Some(v) = &m.counterexample {
                    println!(
                        "       counterexample {} crash after step {} choice {:?}: {}",
                        v.script, v.crash_after, v.choice, v.message
                    );
                }
            }
            println!(
                "  {total} schedules + {fs_cases} crash images total (minimum {}), \
                 {total_violations} violations, {} mutation(s) seeded",
                o.min_schedules,
                mutations.len() + fs_mutations.len()
            );
        }
        if total < o.min_schedules {
            eprintln!("model-check-shard: only {total} schedules explored (< {})", o.min_schedules);
        }
        ok &= clean;
    }

    if o.crosscheck {
        let grid = warp_grid_disagreements(o.warp);
        let cells = crosscheck_fig4(o.doublings);
        match (grid, cells) {
            (Ok(diffs), Ok(cells)) => {
                let cell_failures: usize = cells.iter().map(|c| c.failures.len()).sum();
                if o.json {
                    let items: Vec<String> = cells
                        .iter()
                        .map(|c| {
                            format!(
                                "{{\"label\":{},\"n\":{},\"rounds\":{},\"predicted_cycles\":{},\
                                 \"holds\":{}}}",
                                json_escape(&c.label),
                                c.n,
                                c.rounds,
                                c.predicted_cycles,
                                c.holds()
                            )
                        })
                        .collect();
                    json_sections.push(format!(
                        "\"crosscheck\":{{\"grid_disagreements\":{},\"cells\":[{}]}}",
                        diffs.len(),
                        items.join(",")
                    ));
                } else {
                    println!("== crosscheck (symbolic vs AnalyticBackend) ==");
                    println!("  per-warp grid: {} disagreements", diffs.len());
                    for d in &diffs {
                        println!("       {d}");
                    }
                    for c in &cells {
                        println!(
                            "  {:<12} n={:<6} rounds={} merge-cycles/round {:?} \
                             (predicted {}) β₂ worst {:?} sorted {:?} {}",
                            c.label,
                            c.n,
                            c.rounds,
                            c.merge_cycles,
                            c.predicted_cycles,
                            c.beta2_worst,
                            c.beta2_sorted,
                            if c.holds() { "ok" } else { "FAIL" }
                        );
                        for f in &c.failures {
                            println!("       {f}");
                        }
                    }
                }
                ok &= diffs.is_empty() && cell_failures == 0;
            }
            (g, c) => {
                if let Err(e) = g {
                    eprintln!("crosscheck grid: {e}");
                }
                if let Err(e) = c {
                    eprintln!("crosscheck fig4: {e}");
                }
                ok = false;
            }
        }
    }

    if o.lint {
        let allowlist_path =
            o.allowlist.clone().unwrap_or_else(|| o.root.join("lint-allowlist.txt"));
        let allowlist = std::fs::read_to_string(&allowlist_path).unwrap_or_default();
        match lint_workspace(&o.root, &allowlist) {
            Ok(report) => {
                if o.json {
                    json_sections.push(format!("\"lint\":{}", report.to_json()));
                } else {
                    println!("== lint ({} files) ==", report.files_scanned);
                    for f in &report.findings {
                        if f.allowed {
                            println!(
                                "  allowed {:<12} {}:{}:{} {} — {}",
                                f.rule,
                                f.path,
                                f.line,
                                f.col,
                                f.snippet,
                                f.reason.as_deref().unwrap_or("")
                            );
                        } else {
                            println!(
                                "  DENIED  {:<12} {}:{}:{} {}",
                                f.rule, f.path, f.line, f.col, f.snippet
                            );
                        }
                    }
                    for s in &report.stale_allowlist {
                        println!("  STALE allowlist entry (fails the gate — delete it): {s}");
                    }
                    for m in &report.malformed_allowlist {
                        println!("  malformed allowlist entry: {m}");
                    }
                    println!(
                        "  {} findings ({} denied), {} stale entries",
                        report.findings.len(),
                        report.denied().count(),
                        report.stale_allowlist.len()
                    );
                }
                ok &= report.gate_ok();
            }
            Err(e) => {
                eprintln!("lint: {e}");
                ok = false;
            }
        }
    }

    if o.json {
        println!("{{{},\"ok\":{ok}}}", json_sections.join(","));
    } else {
        println!("{}", if ok { "analysis clean" } else { "analysis FAILED" });
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
