//! Pass 2 (model) — the scale-out lease/steal protocol.
//!
//! PR 8's multi-process layer coordinates workers through expiring
//! lease files: claim by atomic `hard_link`, steal an expired lease by
//! atomic rename, quarantine a corrupt one, release only what is still
//! yours. This model explores that protocol exhaustively on the
//! [`crate::interleave`] engine — N workers × machine crashes × clock
//! skew × lease expiry — and it is an **executable spec**, not a
//! reimplementation: every decision a modeled worker takes goes
//! through the *same* pure transition functions production runs
//! ([`wcms_bench::protocol::lease_decision`],
//! [`wcms_bench::protocol::fresh_lease`],
//! [`wcms_bench::protocol::release_decision`]), and a conformance test
//! in `wcms-bench` asserts production executes exactly those
//! transitions.
//!
//! ## What is (and is not) an invariant
//!
//! The protocol deliberately permits **duplicated execution**: a
//! worker outliving its lease races its stealer, and both may commit
//! — harmlessly, because measurements are deterministic and commits
//! are atomic renames of byte-identical content. Naive mutual
//! exclusion ("a live lease has one holder") is therefore *not* the
//! spec. The provable safety properties are:
//!
//! * **commit integrity** — a committed cell is never overwritten
//!   with *diverging* bytes (a stolen lease's holder can commit late,
//!   but never commit something different);
//! * **steal legitimacy** — every steal decision is taken on a lease
//!   that is actually expired at decision time, up to the configured
//!   clock skew (a stale clock must not license stealing live work);
//! * **tombstone discipline** — a worker never issues two steal
//!   decisions for the same lease *generation* (the steal's rename
//!   removes the generation; forgetting the tombstone re-steals it);
//! * **release hygiene** — a release never removes another holder's
//!   live lease (only [`wcms_bench::protocol::release_decision`] may
//!   say "ours");
//! * **evidence preservation** — in schedules where no steal can
//!   collaterally reap the file, a corrupt lease is quarantined,
//!   never destroyed.
//!
//! Deliberately broken variants ([`ShardVariant`]) prove the checker
//! has teeth: each seeded mutation is caught with a replayable
//! counterexample schedule.

use std::time::Duration;

use wcms_bench::protocol::{
    fresh_lease, lease_decision, release_decision, LeaseAction, LeaseInfo, LeaseView,
};

use crate::interleave::{explore, replay, ExploreConfig, ExploreReport, Model, Violation};

/// The deterministic measurement every correct worker computes for the
/// one modeled cell (an abstract byte standing in for the framed cell
/// file).
const CELL_RESULT: u8 = 0xA5;

/// The stale-clock bug's offset: far past any scenario's deadlines.
const STALE_CLOCK_MS: u64 = 1_000_000_000;

/// Correct protocol or a deliberately seeded mutation (checker-teeth
/// tests and the `--model-check-shard` acceptance gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardVariant {
    /// The protocol as implemented in `wcms-bench`.
    Correct,
    /// Bug: expiry is decided against a stale, far-future clock
    /// reading instead of the worker's current clock — licensing the
    /// steal of a live lease.
    BuggyStaleDeadline,
    /// Bug: the steal skips the tombstone rename, leaving the expired
    /// lease in place — the stealer loops and "steals" the same lease
    /// generation again.
    BuggyForgetTombstone,
    /// Bug: the guard drop removes the lease unconditionally instead
    /// of consulting `release_decision` — deleting a stealer's live
    /// lease.
    BuggyBlindRelease,
    /// Bug: a corrupt lease is deleted instead of quarantined —
    /// destroying the evidence recovery forensics depend on.
    BuggyEvidenceDrop,
    /// Bug: the measurement is nondeterministic (worker-dependent), so
    /// a late commit after a steal diverges from the stealer's bytes.
    BuggyDivergingResult,
}

impl ShardVariant {
    /// Stable display name (`correct`, `stale-deadline`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShardVariant::Correct => "correct",
            ShardVariant::BuggyStaleDeadline => "stale-deadline",
            ShardVariant::BuggyForgetTombstone => "forget-tombstone",
            ShardVariant::BuggyBlindRelease => "blind-release",
            ShardVariant::BuggyEvidenceDrop => "evidence-drop",
            ShardVariant::BuggyDivergingResult => "diverging-result",
        }
    }
}

/// One named protocol configuration to explore exhaustively.
#[derive(Debug, Clone)]
pub struct ShardScenario {
    /// Display name (`steal/expiry`, `lease/corrupt-evidence`, …).
    pub name: &'static str,
    /// Cooperating workers.
    pub workers: usize,
    /// Acquisition attempts per worker before it gives up (production
    /// retries forever with jitter; the model bounds the loop).
    pub max_attempts: u8,
    /// Lease time-to-live stamped by claims.
    pub ttl_ms: u64,
    /// Per-worker clock offset added to global time (models clock
    /// skew between hosts; the legitimacy bound is the maximum).
    pub skew_ms: Vec<u64>,
    /// How many times the global clock may tick.
    pub clock_ticks: u8,
    /// Milliseconds per clock tick.
    pub tick_ms: u64,
    /// Total machine crashes the crasher processes may inject.
    pub crash_budget: u8,
    /// Which workers own a crasher process.
    pub crashable: Vec<bool>,
    /// Start with a corrupt lease already on disk.
    pub initial_corrupt: bool,
    /// Start with the cell already committed.
    pub precommitted: bool,
    /// Check the evidence-preservation obligation at terminal states.
    /// Only meaningful in scenarios where no steal can collaterally
    /// reap the corrupt file (no expiry ⇒ no steal decisions).
    pub check_evidence: bool,
    /// Require the cell to be committed in every terminal state
    /// (only sound for uncontended, crash-free scenarios).
    pub expect_commit: bool,
    /// Protocol variant under test.
    pub variant: ShardVariant,
}

/// On-disk lease content (the model's two-point byte abstraction).
#[derive(Debug, Clone, PartialEq, Eq)]
enum LeaseBytes {
    Valid(LeaseInfo),
    Corrupt,
}

/// The shared checkpoint directory, abstracted: one lease slot, one
/// cell slot, a quarantine. Lease files get a fresh *generation*
/// number per creation so the model can tell "the same file" from "a
/// new file at the same path" — exactly what inode identity does for
/// the real rename/hard-link races.
#[derive(Debug, Clone)]
struct Disk {
    lease: Option<(u32, LeaseBytes)>,
    next_gen: u32,
    cell: Option<u8>,
    quarantined: Vec<u32>,
    corrupt_gens: Vec<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wpc {
    /// Read the lease path and run the real `lease_decision`.
    Read,
    /// Execute the claim publish (`hard_link`: single winner).
    Link,
    /// Apply the effect the Read decided (quarantine / steal rename).
    Effect,
    /// Under lease: re-check the store for an existing commit.
    Recheck,
    /// Deterministic measurement.
    Compute,
    /// Atomic-rename commit of the result.
    Commit,
    /// Guard drop: `release_decision`, maybe remove.
    Release,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    Quarantine,
    Steal { gen: u32 },
}

#[derive(Debug, Clone)]
struct Worker {
    pc: Wpc,
    attempt: u8,
    pending: Option<Pending>,
    held: Option<LeaseInfo>,
    result: Option<u8>,
    /// Lease generations this worker issued steal decisions for.
    stole: Vec<u32>,
    crashed: bool,
}

/// Explorer state for [`ShardModel`].
#[derive(Debug, Clone)]
pub struct ShardState {
    disk: Disk,
    workers: Vec<Worker>,
    now_ms: u64,
    ticks_left: u8,
    crash_budget: u8,
    violation: Option<String>,
}

/// Process layout of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Proc {
    Worker(usize),
    Crasher(usize),
    Clock,
}

/// The lease/steal protocol as an explorable [`Model`].
#[derive(Debug, Clone)]
pub struct ShardModel {
    scenario: ShardScenario,
    procs: Vec<Proc>,
    max_skew_ms: u64,
}

impl ShardModel {
    /// Build the model for one scenario.
    #[must_use]
    pub fn new(scenario: ShardScenario) -> Self {
        let mut procs: Vec<Proc> = (0..scenario.workers).map(Proc::Worker).collect();
        for (w, crashable) in scenario.crashable.iter().enumerate() {
            if *crashable {
                procs.push(Proc::Crasher(w));
            }
        }
        if scenario.clock_ticks > 0 {
            procs.push(Proc::Clock);
        }
        let max_skew_ms = scenario.skew_ms.iter().copied().max().unwrap_or(0);
        Self { scenario, procs, max_skew_ms }
    }

    fn worker_pid(w: usize) -> u64 {
        100 + w as u64
    }

    fn worker_name(w: usize) -> String {
        format!("w{w}")
    }

    fn local_now(&self, s: &ShardState, w: usize) -> u64 {
        s.now_ms + self.scenario.skew_ms.get(w).copied().unwrap_or(0)
    }

    /// One more acquisition attempt; gives up (Done) past the bound.
    fn retry(&self, s: &mut ShardState, w: usize) {
        let wk = &mut s.workers[w];
        wk.attempt += 1;
        wk.pc = if wk.attempt >= self.scenario.max_attempts { Wpc::Done } else { Wpc::Read };
    }

    fn step_worker(&self, s: &mut ShardState, w: usize) {
        let variant = self.scenario.variant;
        match s.workers[w].pc {
            Wpc::Read => {
                let (gen, view) = match &s.disk.lease {
                    None => (None, LeaseView::Missing),
                    Some((g, LeaseBytes::Corrupt)) => (Some(*g), LeaseView::Corrupt),
                    Some((g, LeaseBytes::Valid(info))) => {
                        (Some(*g), LeaseView::Valid(info.clone()))
                    }
                };
                let decide_now = if variant == ShardVariant::BuggyStaleDeadline {
                    self.local_now(s, w) + STALE_CLOCK_MS
                } else {
                    self.local_now(s, w)
                };
                // The REAL production transition function.
                match lease_decision(&view, decide_now) {
                    LeaseAction::Claim => s.workers[w].pc = Wpc::Link,
                    LeaseAction::Quarantine => {
                        s.workers[w].pending = Some(Pending::Quarantine);
                        s.workers[w].pc = Wpc::Effect;
                    }
                    LeaseAction::Steal => {
                        let viewed_gen = gen.unwrap_or(u32::MAX);
                        let deadline = match &view {
                            LeaseView::Valid(info) => info.deadline_ms,
                            _ => 0,
                        };
                        // Steal legitimacy: the lease must actually be
                        // expired at decision time, up to the worst
                        // legitimate skew.
                        if deadline > s.now_ms + self.max_skew_ms {
                            s.violation = Some(format!(
                                "worker {w} decided to steal an unexpired lease \
                                 (deadline {deadline} ms > now {} ms + max skew {} ms): \
                                 a stale clock licensed stealing live work",
                                s.now_ms, self.max_skew_ms
                            ));
                        }
                        // Tombstone discipline: one steal decision per
                        // lease generation per worker.
                        if s.workers[w].stole.contains(&viewed_gen) {
                            s.violation = Some(format!(
                                "worker {w} issued a second steal decision for lease \
                                 generation {viewed_gen}: the steal tombstone was forgotten"
                            ));
                        }
                        s.workers[w].stole.push(viewed_gen);
                        s.workers[w].pending = Some(Pending::Steal { gen: viewed_gen });
                        s.workers[w].pc = Wpc::Effect;
                    }
                    LeaseAction::Held { .. } => self.retry(s, w),
                }
            }
            Wpc::Link => {
                // hard_link: creates the name or fails AlreadyExists.
                if s.disk.lease.is_none() {
                    let info = fresh_lease(
                        Self::worker_pid(w),
                        &Self::worker_name(w),
                        0,
                        self.local_now(s, w),
                        Duration::from_millis(self.scenario.ttl_ms),
                    );
                    let gen = s.disk.next_gen;
                    s.disk.next_gen += 1;
                    s.disk.lease = Some((gen, LeaseBytes::Valid(info.clone())));
                    s.workers[w].held = Some(info);
                    s.workers[w].pc = Wpc::Recheck;
                } else {
                    self.retry(s, w);
                }
            }
            Wpc::Effect => {
                match s.workers[w].pending.take() {
                    Some(Pending::Quarantine) => {
                        // Production renames whatever is at the path
                        // into quarantine/ — the collateral race with
                        // a fresh claim is real and benign.
                        if let Some((gen, _)) = s.disk.lease.take() {
                            if variant != ShardVariant::BuggyEvidenceDrop {
                                s.disk.quarantined.push(gen);
                            }
                        }
                    }
                    // Production renames the path to a tombstone and
                    // unlinks it: net removal of the current occupant,
                    // whichever generation won races since the read.
                    Some(Pending::Steal { .. })
                        if variant != ShardVariant::BuggyForgetTombstone =>
                    {
                        s.disk.lease = None;
                    }
                    Some(Pending::Steal { .. }) => {}
                    None => {}
                }
                s.workers[w].pc = Wpc::Read;
            }
            Wpc::Recheck => {
                s.workers[w].pc = if s.disk.cell.is_some() { Wpc::Release } else { Wpc::Compute };
            }
            Wpc::Compute => {
                s.workers[w].result = Some(if variant == ShardVariant::BuggyDivergingResult {
                    1 + w as u8
                } else {
                    CELL_RESULT
                });
                s.workers[w].pc = Wpc::Commit;
            }
            Wpc::Commit => {
                let r = s.workers[w].result.unwrap_or(CELL_RESULT);
                match s.disk.cell {
                    Some(prev) if prev != r => {
                        s.violation = Some(format!(
                            "worker {w} overwrote a committed cell with diverging bytes \
                             ({prev:#04x} -> {r:#04x}): a stolen lease's holder committed \
                             a different result late"
                        ));
                    }
                    _ => s.disk.cell = Some(r),
                }
                s.workers[w].pc = Wpc::Release;
            }
            Wpc::Release => {
                let me_pid = Self::worker_pid(w);
                let me = Self::worker_name(w);
                let on_disk = match &s.disk.lease {
                    Some((_, LeaseBytes::Valid(info))) => Some(info.clone()),
                    _ => None,
                };
                // The REAL production release arbiter (unless seeded
                // to ignore it).
                let ours = if variant == ShardVariant::BuggyBlindRelease {
                    s.disk.lease.is_some()
                } else {
                    release_decision(on_disk.as_ref(), me_pid, &me)
                };
                if ours {
                    if let Some((_, bytes)) = s.disk.lease.take() {
                        let foreign = match bytes {
                            LeaseBytes::Valid(info) => info.pid != me_pid || info.worker != me,
                            LeaseBytes::Corrupt => true,
                        };
                        if foreign {
                            s.violation = Some(format!(
                                "worker {w} released a lease that was no longer its own: \
                                 a blind release deleted the stealer's live lease"
                            ));
                        }
                    }
                }
                s.workers[w].pc = Wpc::Done;
            }
            Wpc::Done => unreachable!("done worker is never enabled"),
        }
    }

    fn step_proc(&self, s: &mut ShardState, p: Proc) {
        match p {
            Proc::Worker(w) => self.step_worker(s, w),
            Proc::Crasher(w) => {
                // SIGKILL: the worker stops forever; whatever lease it
                // holds stays on disk until expiry.
                s.workers[w].crashed = true;
                s.crash_budget = s.crash_budget.saturating_sub(1);
            }
            Proc::Clock => {
                s.now_ms += self.scenario.tick_ms;
                s.ticks_left -= 1;
            }
        }
    }
}

impl Model for ShardModel {
    type State = ShardState;

    fn initial(&self) -> ShardState {
        let mut disk = Disk {
            lease: None,
            next_gen: 0,
            cell: self.scenario.precommitted.then_some(CELL_RESULT),
            quarantined: Vec::new(),
            corrupt_gens: Vec::new(),
        };
        if self.scenario.initial_corrupt {
            disk.lease = Some((0, LeaseBytes::Corrupt));
            disk.corrupt_gens.push(0);
            disk.next_gen = 1;
        }
        ShardState {
            disk,
            workers: (0..self.scenario.workers)
                .map(|_| Worker {
                    pc: Wpc::Read,
                    attempt: 0,
                    pending: None,
                    held: None,
                    result: None,
                    stole: Vec::new(),
                    crashed: false,
                })
                .collect(),
            now_ms: 1_000,
            ticks_left: self.scenario.clock_ticks,
            crash_budget: self.scenario.crash_budget,
            violation: None,
        }
    }

    fn enabled(&self, s: &ShardState) -> Vec<usize> {
        let workers_running = s.workers.iter().any(|w| !w.crashed && w.pc != Wpc::Done);
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| match p {
                Proc::Worker(w) => !s.workers[*w].crashed && s.workers[*w].pc != Wpc::Done,
                Proc::Crasher(w) => {
                    s.crash_budget > 0 && !s.workers[*w].crashed && s.workers[*w].pc != Wpc::Done
                }
                // Ticking past the last worker would only multiply
                // equivalent schedules by trailing clock orders.
                Proc::Clock => s.ticks_left > 0 && workers_running,
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn step(&self, s: &mut ShardState, pid: usize) {
        self.step_proc(s, self.procs[pid]);
    }

    fn is_terminal(&self, s: &ShardState) -> bool {
        s.workers.iter().all(|w| w.crashed || w.pc == Wpc::Done)
    }

    fn invariant(&self, s: &ShardState) -> Result<(), String> {
        match &s.violation {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }

    fn terminal_check(&self, s: &ShardState) -> Result<(), String> {
        if self.scenario.check_evidence {
            for gen in &s.disk.corrupt_gens {
                let preserved = s.disk.quarantined.contains(gen)
                    || matches!(&s.disk.lease, Some((g, _)) if g == gen);
                if !preserved {
                    return Err(format!(
                        "corrupt lease generation {gen} was destroyed instead of \
                         quarantined: recovery evidence lost"
                    ));
                }
            }
        }
        if self.scenario.precommitted && s.disk.cell != Some(CELL_RESULT) {
            return Err(format!(
                "a pre-committed cell did not survive the schedule (now {:?})",
                s.disk.cell
            ));
        }
        if self.scenario.expect_commit && s.disk.cell != Some(CELL_RESULT) {
            return Err(format!(
                "the cell was never committed (got {:?}) in a scenario that must complete",
                s.disk.cell
            ));
        }
        Ok(())
    }
}

fn base(name: &'static str, workers: usize) -> ShardScenario {
    ShardScenario {
        name,
        workers,
        max_attempts: 2,
        ttl_ms: 10,
        skew_ms: vec![0; workers],
        clock_ticks: 2,
        tick_ms: 6,
        crash_budget: 0,
        crashable: vec![false; workers],
        initial_corrupt: false,
        precommitted: false,
        check_evidence: false,
        expect_commit: false,
        variant: ShardVariant::Correct,
    }
}

/// The standard scenario suite the `--model-check-shard` pass explores
/// (all on the correct protocol).
#[must_use]
pub fn standard_shard_scenarios() -> Vec<ShardScenario> {
    vec![
        // A SIGKILLed claimant's lease expires and is stolen; every
        // crash point of worker 0 interleaves with worker 1's rounds
        // and the clock.
        ShardScenario { crash_budget: 1, crashable: vec![true, false], ..base("steal/expiry", 2) },
        // Both workers alive: claim races, held backoffs, steal of an
        // expired-but-still-running owner, late identical commits,
        // release/steal races.
        base("steal/contention", 2),
        // Same, with worker 1's clock 5 ms ahead: skewed expiry
        // decisions stay within the legitimacy bound.
        ShardScenario { skew_ms: vec![0, 5], ..base("steal/skew", 2) },
        // A corrupt lease is found on disk. TTL is effectively
        // infinite and the clock never ticks, so no steal can
        // collaterally reap the file — the evidence obligation is
        // checked at every terminal state.
        ShardScenario {
            ttl_ms: 1_000_000,
            clock_ticks: 0,
            initial_corrupt: true,
            check_evidence: true,
            ..base("lease/corrupt-evidence", 2)
        },
        // The cell is already committed: every schedule must leave it
        // intact (claim, re-check under lease, release, never
        // recompute over it).
        ShardScenario {
            ttl_ms: 1_000_000,
            clock_ticks: 0,
            precommitted: true,
            ..base("cell/precommitted", 2)
        },
        // Uncontended baseline: a single worker must always complete
        // and commit.
        ShardScenario {
            max_attempts: 1,
            clock_ticks: 0,
            ttl_ms: 1_000_000,
            expect_commit: true,
            ..base("cell/uncontended", 1)
        },
    ]
}

/// One scenario's exploration outcome.
#[derive(Debug, Clone)]
pub struct ShardScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// The exploration result.
    pub report: ExploreReport,
}

/// Explore every standard scenario exhaustively; returns per-scenario
/// reports (sum the schedule counts for the grand total).
#[must_use]
pub fn check_shard_protocol(cfg: &ExploreConfig) -> Vec<ShardScenarioReport> {
    standard_shard_scenarios()
        .into_iter()
        .map(|sc| {
            let name = sc.name;
            let report = explore(&ShardModel::new(sc), cfg);
            ShardScenarioReport { name, report }
        })
        .collect()
}

/// The seeded-mutation acceptance suite: each variant paired with the
/// scenario whose schedule space exposes it.
#[must_use]
pub fn shard_mutation_suite() -> Vec<(ShardVariant, ShardScenario)> {
    vec![
        (
            ShardVariant::BuggyStaleDeadline,
            ShardScenario { variant: ShardVariant::BuggyStaleDeadline, ..base("mut/stale", 2) },
        ),
        (
            ShardVariant::BuggyForgetTombstone,
            ShardScenario {
                variant: ShardVariant::BuggyForgetTombstone,
                max_attempts: 3,
                ..base("mut/tombstone", 2)
            },
        ),
        (
            ShardVariant::BuggyBlindRelease,
            ShardScenario { variant: ShardVariant::BuggyBlindRelease, ..base("mut/release", 2) },
        ),
        (
            ShardVariant::BuggyEvidenceDrop,
            ShardScenario {
                variant: ShardVariant::BuggyEvidenceDrop,
                ttl_ms: 1_000_000,
                clock_ticks: 0,
                initial_corrupt: true,
                check_evidence: true,
                ..base("mut/evidence", 2)
            },
        ),
        (
            ShardVariant::BuggyDivergingResult,
            ShardScenario { variant: ShardVariant::BuggyDivergingResult, ..base("mut/diverge", 2) },
        ),
    ]
}

/// One seeded mutation's checker verdict.
#[derive(Debug, Clone)]
pub struct ShardMutationReport {
    /// Which mutation.
    pub variant: ShardVariant,
    /// The first counterexample schedule, when caught.
    pub counterexample: Option<Violation>,
    /// Schedules explored before the verdict.
    pub schedules: usize,
    /// True iff the mutation produced at least one violation.
    pub caught: bool,
    /// True iff replaying the counterexample schedule on a fresh model
    /// reproduces the violating state (invariant or terminal check
    /// fails again).
    pub replayed: bool,
}

/// Run every seeded mutation and verify each is caught with a
/// replayable counterexample.
#[must_use]
pub fn check_shard_mutations(cfg: &ExploreConfig) -> Vec<ShardMutationReport> {
    shard_mutation_suite()
        .into_iter()
        .map(|(variant, sc)| {
            let model = ShardModel::new(sc);
            let report = explore(&model, cfg);
            let counterexample = report.violations.first().cloned();
            let caught = counterexample.is_some();
            let replayed = counterexample.as_ref().is_some_and(|v| {
                let s = replay(&model, &v.schedule);
                model.invariant(&s).is_err() || model.terminal_check(&s).is_err()
            });
            ShardMutationReport {
                variant,
                counterexample,
                schedules: report.schedules,
                caught,
                replayed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_standard_scenario_is_clean() {
        let mut total = 0usize;
        for r in check_shard_protocol(&ExploreConfig::default()) {
            assert!(r.report.clean(), "{}: {:?}", r.name, r.report.violations.first());
            assert!(r.report.schedules > 0, "{}", r.name);
            total += r.report.schedules;
        }
        assert!(total >= 10_000, "only {total} schedules explored");
    }

    #[test]
    fn every_seeded_mutation_is_caught_and_replays() {
        let reports = check_shard_mutations(&ExploreConfig::default());
        assert!(reports.len() >= 5, "at least five seeded mutations");
        for r in &reports {
            assert!(r.caught, "{}: mutation escaped the checker", r.variant.name());
            assert!(
                r.replayed,
                "{}: counterexample schedule did not reproduce the violation",
                r.variant.name()
            );
        }
    }

    #[test]
    fn stale_deadline_counterexample_names_the_bug() {
        let reports = check_shard_mutations(&ExploreConfig::default());
        let r = reports
            .iter()
            .find(|r| r.variant == ShardVariant::BuggyStaleDeadline)
            .expect("suite includes the stale-deadline mutation");
        let v = r.counterexample.as_ref().expect("caught");
        assert!(v.message.contains("stale clock"), "{}", v.message);
    }

    #[test]
    fn uncontended_worker_always_commits() {
        let sc = standard_shard_scenarios()
            .into_iter()
            .find(|s| s.name == "cell/uncontended")
            .expect("scenario exists");
        let model = ShardModel::new(sc);
        let report = explore(&model, &ExploreConfig::default());
        assert!(report.clean(), "{:?}", report.violations.first());
        // One worker, no clock: the schedule is the deterministic
        // claim → recheck → compute → commit → release path.
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn crashes_do_not_lose_committed_cells() {
        // The precommitted scenario with a crasher: even a SIGKILL at
        // every point never un-commits the cell.
        let sc = ShardScenario {
            crash_budget: 1,
            crashable: vec![true, true],
            ttl_ms: 1_000_000,
            clock_ticks: 0,
            precommitted: true,
            ..base("test/precommitted-crash", 2)
        };
        let report = explore(&ShardModel::new(sc), &ExploreConfig::default());
        assert!(report.clean(), "{:?}", report.violations.first());
    }
}
