//! Pass 1 — the symbolic worst-case bound verifier.
//!
//! Statically proves, **without executing any backend or DMM counter**,
//! that the paper's constructions attain their closed-form aligned-element
//! counts: Theorem 3 (`E²` for odd `E < w/2`), Theorem 9
//! (`½(E² + E + 2Er − r² − r)`, `r = w − E`, for odd `w/2 < E < w`), the
//! power-of-two case (`d = gcd(w, E) = E`, sorted order aligns `E²`), and
//! the general shared-factor case (`d > 1`, sorted order aligns `d·E`).
//!
//! The engine is one number-theoretic observation (the heart of Lemmas
//! 2/7/8): a thread scans each of its chunks at *consecutive* addresses,
//! one per step, while the expected "window bank" also advances one bank
//! per step. A chunk whose first address is `a₀` and whose first step is
//! `j₀` therefore lands in the expected bank `(s + j) mod w` at **every**
//! step it covers, or at **none**, decided by the single congruence
//! `a₀ − j₀ ≡ s (mod w)`. Aligned counts and per-step window
//! multiplicities are then interval sums over the chunks that satisfy
//! their congruence — pure arithmetic over the assignment's shares
//! ([`alignment_of_assignment`]) or over any schedule-IR address stream
//! decomposed into maximal stride-1 runs ([`alignment_of_seqs`]).

use wcms_core::assignment::{ScanFirst, WarpAssignment};
use wcms_core::numtheory::gcd;
use wcms_core::sorted_case::sorted_warp;
use wcms_core::{construct, theorem_aligned_count};
use wcms_error::WcmsError;

/// Which regime of the paper covers a given `(w, E)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundCase {
    /// Odd `E` co-prime with `w`, `3 ≤ E < w/2` — Theorem 3.
    SmallOdd,
    /// Odd `E` co-prime with `w`, `w/2 < E < w` — Theorem 9.
    LargeOdd {
        /// `r = w − E`, the theorem's remainder parameter.
        r: usize,
    },
    /// `E = 2^k ≥ 2`: `d = gcd(w, E) = E`, sorted order is itself the
    /// worst case with `E²` aligned elements.
    PowerOfTwo,
    /// Any other `E` (shared factor `d = gcd(w, E) > 1`, or the
    /// degenerate `E = 1`): sorted order aligns `d·E` elements with
    /// uniform per-step degree `d`.
    Sorted {
        /// `d = gcd(w, E)`.
        d: usize,
    },
}

impl BoundCase {
    /// Short display name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BoundCase::SmallOdd => "theorem-3",
            BoundCase::LargeOdd { .. } => "theorem-9",
            BoundCase::PowerOfTwo => "power-of-two",
            BoundCase::Sorted { .. } => "shared-factor",
        }
    }
}

/// Classify `(w, E)` into the regime whose closed form applies.
#[must_use]
pub fn classify(w: usize, e: usize) -> BoundCase {
    if wcms_core::small_e::is_small_e(w, e) {
        BoundCase::SmallOdd
    } else if wcms_core::large_e::is_large_e(w, e) {
        BoundCase::LargeOdd { r: w - e }
    } else if e >= 2 && e.is_power_of_two() {
        BoundCase::PowerOfTwo
    } else {
        BoundCase::Sorted { d: gcd(w as u64, e as u64) as usize }
    }
}

/// The closed-form aligned-element count the paper proves for `(w, E)`.
///
/// # Errors
///
/// Propagates [`WcmsError::NonCoprime`] from `theorem_aligned_count`
/// (cannot happen for `classify`-admitted regimes, but the analyzer's
/// own lint forbids panicking on it).
pub fn closed_form_aligned(w: usize, e: usize) -> Result<usize, WcmsError> {
    match classify(w, e) {
        BoundCase::SmallOdd | BoundCase::LargeOdd { .. } => theorem_aligned_count(w, e),
        BoundCase::PowerOfTwo => Ok(e * e),
        BoundCase::Sorted { d } => Ok(d * e),
    }
}

/// The worst-case warp assignment for `(w, E)`: the paper's construction
/// where one exists, sorted order otherwise (where sorted order *is* the
/// worst case or the best known bound).
///
/// # Errors
///
/// Propagates [`WcmsError::NonCoprime`] from the constructions (cannot
/// happen for `classify`-admitted regimes).
pub fn reference_assignment(w: usize, e: usize) -> Result<WarpAssignment, WcmsError> {
    match classify(w, e) {
        BoundCase::SmallOdd | BoundCase::LargeOdd { .. } => construct(w, e),
        BoundCase::PowerOfTwo | BoundCase::Sorted { .. } => Ok(sorted_warp(w, e)),
    }
}

/// Result of the symbolic alignment pass: the statically derived
/// counterparts of what `wcms_core::evaluate` measures with the DMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticAlignment {
    /// Total aligned elements (Σ of aligned chunk lengths).
    pub aligned: usize,
    /// Per-step window multiplicity: how many accesses land in the
    /// expected bank `(s + j) mod w` at step `j`.
    pub multiplicity: Vec<usize>,
    /// Lower bound on the merge stage's serialized cycles:
    /// Σⱼ max(multiplicityⱼ, 1).
    pub min_cycles: usize,
    /// Chunks (maximal stride-1 runs) the pass examined.
    pub chunks: usize,
}

impl StaticAlignment {
    fn from_multiplicity(multiplicity: Vec<usize>, chunks: usize) -> Self {
        let aligned = multiplicity.iter().sum();
        let min_cycles = multiplicity.iter().map(|&m| m.max(1)).sum();
        Self { aligned, multiplicity, min_cycles, chunks }
    }
}

/// Symbolically derive the aligned-element structure of an assignment's
/// merging stage from its *shares alone* — no addresses are
/// materialised, no DMM runs.
///
/// Each thread contributes at most two chunks. With prefix offsets
/// `(pa, pb)` (from [`WarpAssignment::thread_offsets`]) and window start
/// bank `s`, the chunk congruences are:
///
/// * scan `A` first: `A`-chunk over steps `[0, a)` aligned iff
///   `pa ≡ s (mod w)`; `B`-chunk over `[a, E)` aligned iff
///   `pb ≡ s + a (mod w)` (the `B` segment starts on a bank-0 boundary,
///   so only `pb mod w` matters);
/// * scan `B` first: `B`-chunk over `[0, b)` aligned iff
///   `pb ≡ s (mod w)`; `A`-chunk over `[b, E)` aligned iff
///   `pa ≡ s + b (mod w)`.
#[must_use]
pub fn alignment_of_assignment(asg: &WarpAssignment) -> StaticAlignment {
    let (w, e, s) = (asg.w, asg.e, asg.window_start);
    let mut mult = vec![0usize; e];
    let mut chunks = 0usize;
    let mut cover = |from: usize, to: usize, holds: bool| {
        if from < to {
            chunks += 1;
            if holds {
                for m in &mut mult[from..to] {
                    *m += 1;
                }
            }
        }
    };
    for (t, (pa, pb)) in asg.threads.iter().zip(asg.thread_offsets()) {
        match t.first {
            ScanFirst::A => {
                cover(0, t.a, pa % w == s % w);
                cover(t.a, e, pb % w == (s + t.a) % w);
            }
            ScanFirst::B => {
                cover(0, t.b, pb % w == s % w);
                cover(t.b, e, pa % w == (s + t.b) % w);
            }
        }
    }
    StaticAlignment::from_multiplicity(mult, chunks)
}

/// The same symbolic pass over schedule IR: per-thread address streams
/// (e.g. [`wcms_mergesort::schedule::MergeSchedule::merge_seqs`] for one
/// warp, or [`wcms_core::evaluate::address_sequences`]) are decomposed
/// into maximal stride-1 runs, and each run's alignment is decided by
/// its single congruence `a₀ − j₀ ≡ s (mod w)` — still no DMM.
///
/// `steps` is the merge-stage length `E`; streams shorter than `steps`
/// simply contribute fewer runs.
#[must_use]
pub fn alignment_of_seqs(
    w: usize,
    steps: usize,
    window_start: usize,
    seqs: &[Vec<usize>],
) -> StaticAlignment {
    let s = window_start % w;
    let mut mult = vec![0usize; steps];
    let mut chunks = 0usize;
    for seq in seqs {
        let mut run_start = 0usize;
        let mut j = 0usize;
        while j < seq.len().min(steps) {
            let next = j + 1;
            let run_ends = next >= seq.len().min(steps) || seq[next] != seq[j] + 1;
            if run_ends {
                chunks += 1;
                // Run covers steps [run_start, next) starting at address
                // seq[run_start]; aligned iff a₀ − j₀ ≡ s (mod w).
                if (seq[run_start] + w - run_start % w) % w == s {
                    for m in &mut mult[run_start..next] {
                        *m += 1;
                    }
                }
                run_start = next;
            }
            j = next;
        }
    }
    StaticAlignment::from_multiplicity(mult, chunks)
}

/// The verdict of the symbolic verifier for one `(w, E)`.
#[derive(Debug, Clone)]
pub struct BoundVerdict {
    /// Warp width / bank count.
    pub w: usize,
    /// Elements per thread.
    pub e: usize,
    /// Which closed form applies.
    pub case: BoundCase,
    /// Aligned count the symbolic pass derived.
    pub aligned: usize,
    /// Aligned count the closed form predicts.
    pub closed_form: usize,
    /// Per-step window multiplicities from the symbolic pass.
    pub multiplicity: Vec<usize>,
    /// Static lower bound on merge-stage cycles.
    pub min_cycles: usize,
    /// Everything the verifier found wrong (empty = the bound is proved).
    pub failures: Vec<String>,
}

impl BoundVerdict {
    /// True iff every static check passed.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Verify the closed-form bound for one `(w, E)`: derive the alignment
/// structure symbolically (twice — from the shares and from the
/// materialised address streams, as independent derivations), and assert
/// it equals the applicable closed form with the per-case multiplicity
/// profile.
///
/// # Errors
///
/// Propagates construction errors for inadmissible `(w, E)` (zero or
/// `E ≥ w`).
pub fn verify_bound(w: usize, e: usize) -> Result<BoundVerdict, WcmsError> {
    if w == 0 || e == 0 {
        return Err(WcmsError::ZeroParam { name: if w == 0 { "w" } else { "E" } });
    }
    if e >= w {
        return Err(WcmsError::NonCoprime { w, e });
    }
    let case = classify(w, e);
    let asg = reference_assignment(w, e)?;
    let from_shares = alignment_of_assignment(&asg);
    let from_ir =
        alignment_of_seqs(w, e, asg.window_start, &wcms_core::evaluate::address_sequences(&asg));
    let closed_form = closed_form_aligned(w, e)?;

    let mut failures = Vec::new();
    if from_shares != from_ir {
        failures.push(format!(
            "share-level and IR-level derivations disagree: {from_shares:?} vs {from_ir:?}"
        ));
    }
    if from_shares.aligned != closed_form {
        failures.push(format!(
            "symbolic aligned count {} != closed form {closed_form}",
            from_shares.aligned
        ));
    }
    // Per-case multiplicity profile: the uniform regimes pin every step.
    let uniform = match case {
        BoundCase::SmallOdd | BoundCase::PowerOfTwo => Some(e),
        BoundCase::Sorted { d } => Some(d),
        BoundCase::LargeOdd { .. } => None,
    };
    if let Some(k) = uniform {
        if from_shares.multiplicity.iter().any(|&m| m != k) {
            failures.push(format!(
                "expected uniform window multiplicity {k}, got {:?}",
                from_shares.multiplicity
            ));
        }
    } else if from_shares.multiplicity.iter().any(|&m| m > e) {
        // No step can align more than one element per thread-chunk layer
        // beyond the window height E.
        failures.push(format!(
            "a step's window multiplicity exceeds E: {:?}",
            from_shares.multiplicity
        ));
    }

    Ok(BoundVerdict {
        w,
        e,
        case,
        aligned: from_shares.aligned,
        closed_form,
        multiplicity: from_shares.multiplicity,
        min_cycles: from_shares.min_cycles,
        failures,
    })
}

/// Verify every `E < w` (the acceptance grid: all of `1..w`).
///
/// # Errors
///
/// Same conditions as [`verify_bound`].
pub fn verify_grid(w: usize) -> Result<Vec<BoundVerdict>, WcmsError> {
    (1..w).map(|e| verify_bound(w, e)).collect()
}

// --- Multiway rounds ------------------------------------------------------

/// The symbolic verdict for one k-way multiway merge round.
///
/// Multiway rounds have a closed-form per-warp aligned count only when
/// they are **stride-regular** — every thread's merge stream is one
/// maximal stride-1 run, as happens when the k input runs concatenate
/// into sorted order and the merge is the identity. Then thread `T`
/// reads addresses `TE..TE+E` and its single congruence
/// `TE ≡ s (mod w)` holds for exactly `gcd(w, E)` threads per warp:
/// the per-warp aligned count is `d·E`, the same shared-factor form as
/// the pairwise sorted case. Irregular rounds (the general k-way
/// interleaving) have no known closed form; the verifier *reports*
/// their per-warp counts without judging them.
#[derive(Debug, Clone)]
pub struct MultiwayRoundVerdict {
    /// Which round this is ("sorted" identity, "interleaved" k-way).
    pub label: &'static str,
    /// Warp width / bank count.
    pub w: usize,
    /// Elements per thread.
    pub e: usize,
    /// Fan-in of the round.
    pub k: usize,
    /// Symbolic per-warp aligned counts (one entry per warp).
    pub per_warp_aligned: Vec<usize>,
    /// The `d·E` closed form, present only for stride-regular rounds.
    pub closed_form: Option<usize>,
    /// True when every thread's merge stream is one stride-1 run.
    pub stride_regular: bool,
    /// Closed-form violations (empty for irregular rounds by design —
    /// having no closed form is reported, never failed).
    pub failures: Vec<String>,
}

impl MultiwayRoundVerdict {
    /// True iff no closed-form check was violated.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Symbolically verify the k-way multiway merge rounds of one block
/// tile for `(w, E)` with `b = 4w` threads: materialise the round's
/// schedule IR ([`wcms_mergesort::schedule::MergeSchedule::multiway_merge`]),
/// run the per-warp alignment pass over each warp's merge streams, and
/// check the stride-regular round against its `d·E` closed form. Two
/// rounds are examined: the identity round (k runs concatenating into
/// sorted order — stride-regular, closed form applies) and the maximal
/// k-way interleaving (no closed form — reported only).
///
/// # Errors
///
/// Propagates [`WcmsError::InvalidBlock`]/[`WcmsError::ZeroParam`] from
/// parameter validation (`b = 4w` requires power-of-two `w`).
pub fn verify_multiway_rounds(
    w: usize,
    e: usize,
    k: usize,
) -> Result<Vec<MultiwayRoundVerdict>, WcmsError> {
    use wcms_mergesort::schedule::MergeSchedule;
    use wcms_mergesort::SortParams;

    let b = 4 * w;
    let params = SortParams::new(w, e, b)?;
    let tile = b * e;
    let k = k.clamp(2, tile);
    // Runs are consecutive equal-ish slices of the tile; the last run
    // absorbs the remainder so every key is merged exactly once.
    let split = |keys: &[u32]| -> Vec<Vec<u32>> {
        let chunk = (tile / k).max(1);
        let mut runs: Vec<Vec<u32>> = keys.chunks(chunk).map(<[u32]>::to_vec).collect();
        while runs.len() > k {
            let tail = runs.pop();
            if let (Some(tail), Some(last)) = (tail, runs.last_mut()) {
                last.extend(tail);
            }
        }
        runs
    };

    // Round 1: k sorted runs that concatenate into sorted order — the
    // merge is the identity and every thread reads one stride-1 run.
    let sorted: Vec<u32> = (0..tile as u32).collect();
    // Round 2: run i holds keys ≡ i (mod k) — the merge interleaves all
    // k runs at every step, the least regular k-way round.
    let mut interleaved = vec![0u32; tile];
    {
        let chunk = (tile / k).max(1);
        let mut pos = 0usize;
        for i in 0..k {
            let count = if i + 1 == k { tile - i * chunk } else { chunk };
            for j in 0..count {
                interleaved[pos] = (j * k + i) as u32;
                pos += 1;
            }
        }
    }

    let mut out = Vec::with_capacity(2);
    for (label, keys) in [("sorted", sorted), ("interleaved", interleaved)] {
        let runs = split(&keys);
        if runs.iter().any(|r| r.windows(2).any(|p| p[0] > p[1])) {
            return Err(WcmsError::ZeroParam { name: "multiway run (not sorted)" });
        }
        let parts: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let sched = MergeSchedule::multiway_merge(&parts, &params);

        let warps = b / w;
        let mut per_warp_aligned = Vec::with_capacity(warps);
        let mut stride_regular = true;
        for g in 0..warps {
            let seqs = &sched.merge_seqs[g * w..(g + 1) * w];
            let sa = alignment_of_seqs(w, e, 0, seqs);
            // One maximal stride-1 run per thread ⇔ chunk count equals
            // the warp's thread count.
            stride_regular &= sa.chunks == w;
            per_warp_aligned.push(sa.aligned);
        }

        let d = gcd(w as u64, e as u64) as usize;
        let closed_form = stride_regular.then_some(d * e);
        let mut failures = Vec::new();
        if let Some(cf) = closed_form {
            for (g, &got) in per_warp_aligned.iter().enumerate() {
                if got != cf {
                    failures.push(format!(
                        "warp {g}: stride-regular round aligned {got} != closed form {cf}"
                    ));
                }
            }
        }
        out.push(MultiwayRoundVerdict {
            label,
            w,
            e,
            k,
            per_warp_aligned,
            closed_form,
            stride_regular,
            failures,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcms_core::evaluate::evaluate;

    #[test]
    fn classify_covers_every_e_below_32() {
        for e in 1..32usize {
            let c = classify(32, e);
            match c {
                BoundCase::SmallOdd => assert!(e % 2 == 1 && (3..16).contains(&e)),
                BoundCase::LargeOdd { r } => {
                    assert!(e % 2 == 1 && e > 16);
                    assert_eq!(r, 32 - e);
                }
                BoundCase::PowerOfTwo => assert!(e.is_power_of_two() && e >= 2),
                BoundCase::Sorted { d } => {
                    assert_eq!(d, gcd(32, e as u64) as usize);
                    assert!(e == 1 || (d > 1 && !e.is_power_of_two()));
                }
            }
        }
    }

    #[test]
    fn every_bound_below_32_holds() {
        for v in verify_grid(32).unwrap() {
            assert!(v.holds(), "E={}: {:?}", v.e, v.failures);
            assert_eq!(v.aligned, v.closed_form, "E={}", v.e);
        }
    }

    #[test]
    fn symbolic_pass_matches_the_dmm_oracle_exactly() {
        // The static derivation must agree element-for-element with the
        // DMM measurement it replaces.
        for e in 1..32usize {
            let asg = reference_assignment(32, e).unwrap();
            let sa = alignment_of_assignment(&asg);
            let ev = evaluate(&asg).unwrap();
            assert_eq!(sa.aligned, ev.aligned, "E={e}");
            assert_eq!(sa.multiplicity, ev.window_multiplicity, "E={e}");
            assert!(sa.min_cycles <= ev.cycles(), "E={e}");
        }
    }

    #[test]
    fn ir_pass_handles_fragmented_runs() {
        // Stream with two separated runs: [5,6] then [9,10] on w=4, s=1.
        // Run 1 starts at addr 5 step 0: 5 − 0 ≡ 1 (mod 4) → aligned (2).
        // Run 2 starts at addr 9 step 2: 9 − 2 ≡ 3 (mod 4) → not aligned.
        let sa = alignment_of_seqs(4, 4, 1, &[vec![5, 6, 9, 10]]);
        assert_eq!(sa.aligned, 2);
        assert_eq!(sa.multiplicity, vec![1, 1, 0, 0]);
        assert_eq!(sa.chunks, 2);
    }

    #[test]
    fn degenerate_parameters_are_typed_errors() {
        assert!(matches!(verify_bound(0, 3), Err(WcmsError::ZeroParam { .. })));
        assert!(matches!(verify_bound(32, 0), Err(WcmsError::ZeroParam { .. })));
        assert!(matches!(verify_bound(32, 32), Err(WcmsError::NonCoprime { .. })));
    }

    #[test]
    fn other_warp_widths_verify_too() {
        for w in [8usize, 16, 64] {
            for v in verify_grid(w).unwrap() {
                assert!(v.holds(), "w={w} E={}: {:?}", v.e, v.failures);
            }
        }
    }

    #[test]
    fn multiway_identity_round_attains_the_gcd_closed_form() {
        // Co-prime, shared-factor, and power-of-two tunings, across
        // fan-ins: the sorted (stride-regular) round must hit d·E on
        // every warp.
        for (w, e) in [(32usize, 3usize), (32, 5), (32, 8), (32, 15), (16, 6), (8, 3)] {
            for k in [2usize, 3, 4, 8] {
                let verdicts = verify_multiway_rounds(w, e, k).unwrap();
                let sorted = &verdicts[0];
                assert_eq!(sorted.label, "sorted");
                assert!(sorted.stride_regular, "w={w} E={e} k={k}");
                let d = gcd(w as u64, e as u64) as usize;
                assert_eq!(sorted.closed_form, Some(d * e), "w={w} E={e} k={k}");
                assert!(sorted.holds(), "w={w} E={e} k={k}: {:?}", sorted.failures);
                assert!(sorted.per_warp_aligned.iter().all(|&a| a == d * e));
            }
        }
    }

    #[test]
    fn multiway_interleaved_round_is_reported_not_failed() {
        for (w, e, k) in [(32usize, 5usize, 4usize), (32, 8, 4), (16, 3, 2)] {
            let verdicts = verify_multiway_rounds(w, e, k).unwrap();
            let inter = &verdicts[1];
            assert_eq!(inter.label, "interleaved");
            assert!(!inter.stride_regular, "w={w} E={e} k={k}");
            assert_eq!(inter.closed_form, None);
            // No closed form ⇒ nothing to violate: holds by design.
            assert!(inter.holds());
            assert_eq!(inter.per_warp_aligned.len(), 4);
        }
    }
}
