//! Static analysis for the wcms workspace — three passes, no execution
//! of any backend required for a verdict:
//!
//! 1. [`bounds`] — a **symbolic bound verifier**: derives per-warp
//!    aligned counts and access multiplicities for every `E < w`
//!    directly from the number-theoretic structure of the worst-case
//!    assignments (Lemmas 2/4/7/8 of the paper) and proves them equal
//!    to the closed forms of Theorem 3, Theorem 9 and the
//!    power-of-two/shared-factor cases.
//! 2. [`interleave`] + [`supervisor_model`] + [`shard_model`] +
//!    [`model_fs`] — a **model checker**: exhaustive bounded
//!    exploration of the sweep supervisor's
//!    cancel/deadline/commit/quarantine protocol and of the scale-out
//!    lease/steal protocol (workers × crashes × clock skew × expiry),
//!    plus a filesystem crash-consistency explorer that enumerates a
//!    machine crash after every step of the checkpoint store's durable
//!    publish sequences. The shard models execute the *production*
//!    transition functions (`wcms_bench::protocol`) — the spec cannot
//!    drift from the code it verifies.
//! 3. [`lint`] — a **token-level workspace lint engine**: panic-path,
//!    raw-thread-spawn, wall-clock, protocol-clock and
//!    rename-without-fsync lints over the crate sources, with an
//!    explicit allowlist and machine-readable diagnostics.
//!
//! The [`crosscheck`] module bridges pass 1 to the dynamic world: it
//! diffs the symbolic verdicts against the `AnalyticBackend`'s measured
//! conflict counters so the static story and the measured story can
//! never silently drift apart.
//!
//! Everything is wired into the `wcms-analyze` binary; CI runs
//! `wcms-analyze --all` as a required gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod crosscheck;
pub mod interleave;
pub mod lint;
pub mod model_fs;
pub mod shard_model;
pub mod supervisor_model;
