//! A serializable name for every input class the harness sweeps, so that
//! experiment configurations and results can be recorded symmetrically.

use serde::{Deserialize, Serialize};

use crate::{adversarial, dist, nearly, random, sorted};

/// An input-distribution specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Uniform random `u32` keys.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Random permutation of `0 … n−1`.
    RandomPermutation {
        /// RNG seed.
        seed: u64,
    },
    /// Ascending `0 … n−1`.
    Sorted,
    /// Descending `n−1 … 0`.
    Reverse,
    /// Sorted with `swaps` random transpositions.
    KSwaps {
        /// Number of transpositions.
        swaps: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Keys drawn from `distinct` values only.
    FewDistinct {
        /// Alphabet size.
        distinct: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Sawtooth with `teeth` ascending runs.
    Sawtooth {
        /// Number of runs.
        teeth: usize,
    },
    /// The paper's constructed worst case for the sort's `(w, E, b)`.
    WorstCase,
    /// A seeded member of the worst-case family.
    WorstCaseFamily {
        /// Family seed.
        seed: u64,
    },
    /// Karsin-style conflict-heavy baseline with the given stride
    /// (power-of-two strides collide `gcd(w, stride)`-ways).
    ConflictHeavy {
        /// Same-list chunk length per thread.
        stride: usize,
    },
}

impl WorkloadSpec {
    /// Short label for tables and CSV headers.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Random { .. } => "random".into(),
            WorkloadSpec::RandomPermutation { .. } => "random-perm".into(),
            WorkloadSpec::Sorted => "sorted".into(),
            WorkloadSpec::Reverse => "reverse".into(),
            WorkloadSpec::KSwaps { swaps, .. } => format!("kswaps({swaps})"),
            WorkloadSpec::FewDistinct { distinct, .. } => format!("dups({distinct})"),
            WorkloadSpec::Sawtooth { teeth } => format!("sawtooth({teeth})"),
            WorkloadSpec::WorstCase => "worst-case".into(),
            WorkloadSpec::WorstCaseFamily { seed } => format!("worst-family({seed})"),
            WorkloadSpec::ConflictHeavy { stride } => format!("conflict-heavy({stride})"),
        }
    }

    /// Generate `n` keys for a sort parameterized by `(w, E, b)` (only
    /// the adversarial classes use the parameters). Adversarial classes
    /// require `n = bE·2^m`.
    ///
    /// # Errors
    ///
    /// The adversarial classes reject parameters with no construction
    /// and lengths that are not `bE·2^m` (see
    /// [`adversarial::worst_case`]); the oblivious classes never fail.
    pub fn generate(
        &self,
        n: usize,
        w: usize,
        e: usize,
        b: usize,
    ) -> Result<Vec<u32>, wcms_error::WcmsError> {
        Ok(match *self {
            WorkloadSpec::Random { seed } => random::uniform_u32(n, seed),
            WorkloadSpec::RandomPermutation { seed } => random::random_permutation(n, seed),
            WorkloadSpec::Sorted => sorted::sorted(n),
            WorkloadSpec::Reverse => sorted::reverse_sorted(n),
            WorkloadSpec::KSwaps { swaps, seed } => nearly::k_swaps(n, swaps, seed),
            WorkloadSpec::FewDistinct { distinct, seed } => dist::few_distinct(n, distinct, seed),
            WorkloadSpec::Sawtooth { teeth } => dist::sawtooth(n, teeth),
            WorkloadSpec::WorstCase => adversarial::worst_case(w, e, b, n)?,
            WorkloadSpec::WorstCaseFamily { seed } => {
                adversarial::worst_case_family(w, e, b, n, seed)?
            }
            WorkloadSpec::ConflictHeavy { stride } => {
                adversarial::conflict_heavy(w, e, b, n, stride)?
            }
        })
    }

    /// Reseeded variant for multi-run averaging (non-random classes are
    /// returned unchanged).
    #[must_use]
    pub fn with_run_seed(&self, run: u64) -> Self {
        match *self {
            WorkloadSpec::Random { seed } => WorkloadSpec::Random { seed: seed ^ run << 32 },
            WorkloadSpec::RandomPermutation { seed } => {
                WorkloadSpec::RandomPermutation { seed: seed ^ run << 32 }
            }
            WorkloadSpec::KSwaps { swaps, seed } => {
                WorkloadSpec::KSwaps { swaps, seed: seed ^ run << 32 }
            }
            WorkloadSpec::FewDistinct { distinct, seed } => {
                WorkloadSpec::FewDistinct { distinct, seed: seed ^ run << 32 }
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let specs = [
            WorkloadSpec::Random { seed: 1 },
            WorkloadSpec::Sorted,
            WorkloadSpec::Reverse,
            WorkloadSpec::WorstCase,
            WorkloadSpec::ConflictHeavy { stride: 8 },
        ];
        let labels: Vec<String> = specs.iter().map(WorkloadSpec::label).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn generate_matches_class() {
        let n = 16 * 3 * 32 * 2; // valid for (w=16, E=3, b=32)
        assert!(WorkloadSpec::Sorted
            .generate(n, 16, 3, 32)
            .unwrap()
            .windows(2)
            .all(|w| w[0] < w[1]));
        assert_eq!(WorkloadSpec::Reverse.generate(5, 16, 3, 32).unwrap(), vec![4, 3, 2, 1, 0]);
        let wc = WorkloadSpec::WorstCase.generate(n, 16, 3, 32).unwrap();
        assert_eq!(wc.len(), n);
    }

    #[test]
    fn run_seed_changes_random_only() {
        let r = WorkloadSpec::Random { seed: 1 };
        assert_ne!(r.with_run_seed(1), r);
        assert_eq!(WorkloadSpec::Sorted.with_run_seed(1), WorkloadSpec::Sorted);
        assert_eq!(WorkloadSpec::WorstCase.with_run_seed(5), WorkloadSpec::WorstCase);
    }
}
