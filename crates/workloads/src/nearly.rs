//! Bounded-disorder inputs. Karsin et al. observed that the per-access
//! conflict averages β₁/β₂ "grow with the number of inversions in the
//! input" (§II-A) — these generators provide a controllable inversion
//! dial for reproducing that trend.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sorted order perturbed by `swaps` random transpositions.
#[must_use]
pub fn k_swaps(n: usize, swaps: usize, seed: u64) -> Vec<u32> {
    let mut xs: Vec<u32> = (0..n as u32).collect();
    if n < 2 {
        return xs;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..swaps {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        xs.swap(i, j);
    }
    xs
}

/// Sorted order where each element is displaced at most `window`
/// positions: shuffle within consecutive windows.
#[must_use]
pub fn local_shuffle(n: usize, window: usize, seed: u64) -> Vec<u32> {
    let mut xs: Vec<u32> = (0..n as u32).collect();
    if window < 2 {
        return xs;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for chunk in xs.chunks_mut(window) {
        for i in (1..chunk.len()).rev() {
            let j = rng.gen_range(0..=i);
            chunk.swap(i, j);
        }
    }
    xs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inversions::count_inversions;

    #[test]
    fn zero_swaps_is_sorted() {
        assert_eq!(k_swaps(50, 0, 1), (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn more_swaps_more_inversions() {
        let few = count_inversions(&k_swaps(10_000, 10, 3));
        let many = count_inversions(&k_swaps(10_000, 5_000, 3));
        assert!(few > 0);
        assert!(many > few);
    }

    #[test]
    fn swaps_preserve_permutation() {
        let xs = k_swaps(1000, 500, 9);
        let mut s = xs.clone();
        s.sort_unstable();
        assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn local_shuffle_bounds_displacement() {
        let window = 16;
        let xs = local_shuffle(1024, window, 5);
        for (i, &v) in xs.iter().enumerate() {
            let home = v as usize;
            assert!(home.abs_diff(i) < window, "element {v} moved {} > {window}", home.abs_diff(i));
        }
    }

    #[test]
    fn local_shuffle_window_one_is_identity() {
        assert_eq!(local_shuffle(100, 1, 7), (0..100).collect::<Vec<u32>>());
    }
}
