//! Saving and loading key datasets.
//!
//! A self-describing binary format so that expensive adversarial inputs
//! can be generated once and replayed — e.g. to hand a constructed
//! permutation to an external CUDA harness on a real GPU.
//!
//! Version 2 layout (all little-endian):
//!
//! ```text
//! magic    8 B   "WCMSKEYS"
//! version  4 B   2
//! width    4 B   key width in bytes (4 for u32 keys)
//! count    8 B   number of keys
//! payload  count × width bytes
//! checksum 8 B   FNV-1a 64 over the payload bytes
//! ```
//!
//! Version 1 files (no width field, no checksum) remain readable. The
//! decoder is strict: wrong magic, unsupported version, wrong key
//! width, truncated payload, trailing bytes and checksum mismatches all
//! surface as [`WcmsError::DatasetCorrupt`] — a fault-injection target
//! as much as a file format.

use std::io::{self, Read, Write};

use wcms_error::WcmsError;

const MAGIC: &[u8; 8] = b"WCMSKEYS";
const VERSION: u32 = 2;
const KEY_WIDTH: u32 = 4;

/// FNV-1a 64-bit — tiny, dependency-free, and plenty to catch the
/// bit-flips and truncations the fault injector produces.
fn fnv1a(bytes: &[u8], state: u64) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Serialize `keys` into `w` (version-2 format, with checksum).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_keys<W: Write>(mut w: W, keys: &[u32]) -> Result<(), WcmsError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&KEY_WIDTH.to_le_bytes())?;
    w.write_all(&(keys.len() as u64).to_le_bytes())?;
    // Chunked conversion keeps peak memory at 64 KiB regardless of N.
    let mut buf = Vec::with_capacity(16384 * 4);
    let mut checksum = FNV_OFFSET;
    for chunk in keys.chunks(16384) {
        buf.clear();
        for k in chunk {
            buf.extend_from_slice(&k.to_le_bytes());
        }
        checksum = fnv1a(&buf, checksum);
        w.write_all(&buf)?;
    }
    w.write_all(&checksum.to_le_bytes())?;
    Ok(())
}

fn corrupt(reason: impl Into<String>) -> WcmsError {
    WcmsError::DatasetCorrupt { reason: reason.into() }
}

/// `read_exact` whose premature EOF is *corruption* (a truncated file),
/// not a generic I/O failure.
fn read_exact_or_corrupt<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), WcmsError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            corrupt(format!("truncated {what}"))
        } else {
            WcmsError::Io(e)
        }
    })
}

/// Deserialize keys produced by [`write_keys`] (either format version).
///
/// # Errors
///
/// Returns [`WcmsError::DatasetCorrupt`] on a bad magic, unsupported
/// version, wrong key width, truncated payload, trailing bytes or
/// checksum mismatch; non-EOF reader failures surface as
/// [`WcmsError::Io`].
pub fn read_keys<R: Read>(mut r: R) -> Result<Vec<u32>, WcmsError> {
    let mut magic = [0u8; 8];
    read_exact_or_corrupt(&mut r, &mut magic, "header")?;
    if &magic != MAGIC {
        return Err(corrupt("not a wcms key file"));
    }
    let mut word = [0u8; 4];
    read_exact_or_corrupt(&mut r, &mut word, "header")?;
    let version = u32::from_le_bytes(word);
    if version != 1 && version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    if version == VERSION {
        read_exact_or_corrupt(&mut r, &mut word, "header")?;
        let width = u32::from_le_bytes(word);
        if width != KEY_WIDTH {
            return Err(corrupt(format!("key width {width} B, expected {KEY_WIDTH} B")));
        }
    }
    let mut len8 = [0u8; 8];
    read_exact_or_corrupt(&mut r, &mut len8, "header")?;
    let len = u64::from_le_bytes(len8) as usize;

    let mut keys = Vec::with_capacity(len.min(1 << 24));
    let mut buf = vec![0u8; 16384 * 4];
    let mut remaining = len;
    let mut checksum = FNV_OFFSET;
    while remaining > 0 {
        let take = remaining.min(16384);
        let bytes = &mut buf[..take * 4];
        read_exact_or_corrupt(&mut r, bytes, "payload")?;
        checksum = fnv1a(bytes, checksum);
        keys.extend(bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])));
        remaining -= take;
    }
    if version == VERSION {
        let mut sum8 = [0u8; 8];
        read_exact_or_corrupt(&mut r, &mut sum8, "checksum")?;
        let stored = u64::from_le_bytes(sum8);
        if stored != checksum {
            return Err(corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {checksum:#018x}"
            )));
        }
    }
    // A valid file ends exactly here: anything more means the count
    // field undersells the payload (an oversized / spliced file).
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => Ok(keys),
        Ok(_) => Err(corrupt("trailing bytes after payload")),
        Err(e) => Err(WcmsError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for keys in [vec![], vec![7u32], (0..100_000u32).rev().collect::<Vec<_>>()] {
            let mut buf = Vec::new();
            write_keys(&mut buf, &keys).unwrap();
            assert_eq!(read_keys(buf.as_slice()).unwrap(), keys);
        }
    }

    #[test]
    fn header_size_is_fixed() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &[1, 2, 3]).unwrap();
        // magic + version + width + count + payload + checksum
        assert_eq!(buf.len(), 8 + 4 + 4 + 8 + 12 + 8);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_keys(&b"NOTAKEYF\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, WcmsError::DatasetCorrupt { .. }), "{err}");
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn rejects_wrong_key_width() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&8u32.to_le_bytes()); // u64 keys: unsupported
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("key width 8"), "{err}");
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &[1u32, 2, 3]).unwrap();
        buf.truncate(buf.len() - 10); // into the payload
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(matches!(err, WcmsError::DatasetCorrupt { .. }), "{err}");
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &[1u32, 2, 3]).unwrap();
        buf.push(0);
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn detects_payload_bit_flip() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &(0..64u32).collect::<Vec<_>>()).unwrap();
        buf[8 + 4 + 4 + 8 + 17] ^= 0x40; // flip one payload bit
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn reads_legacy_v1_files() {
        // v1: magic + version + count + payload, no width, no checksum.
        let keys = [9u32, 8, 7];
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(keys.len() as u64).to_le_bytes());
        for k in keys {
            buf.extend_from_slice(&k.to_le_bytes());
        }
        assert_eq!(read_keys(buf.as_slice()).unwrap(), keys);
    }
}
