//! Saving and loading key datasets.
//!
//! A self-describing binary format so that expensive adversarial inputs
//! can be generated once and replayed — e.g. to hand a constructed
//! permutation to an external CUDA harness on a real GPU.
//!
//! Version 2 layout (all little-endian):
//!
//! ```text
//! magic    8 B   "WCMSKEYS"
//! version  4 B   2
//! width    4 B   key width in bytes (4 for u32 keys)
//! count    8 B   number of keys
//! payload  count × width bytes
//! checksum 8 B   FNV-1a 64 over the payload bytes
//! ```
//!
//! Version 3 is the *streaming* layout: the payload is cut into
//! fixed-size chunks, each independently checksummed, and the chunk
//! index lives up front so a reader can verify and yield one chunk at
//! a time under bounded memory — N = 10⁹ keys never has to exist as a
//! single allocation on either side:
//!
//! ```text
//! magic    8 B   "WCMSKEYS"
//! version  4 B   3
//! width    4 B   key width in bytes (4 for u32 keys)
//! count    8 B   number of keys
//! chunk    8 B   chunk size in keys
//! hsum     8 B   FNV-1a 64 over the 32 header bytes above
//! index    ⌈count/chunk⌉ × 8 B   per-chunk FNV-1a 64 over that chunk's bytes
//! isum     8 B   FNV-1a 64 over the index bytes
//! payload  chunks of chunk × width bytes (the final chunk may be short)
//! ```
//!
//! Version 1 files (no width field, no checksum) remain readable, and
//! [`write_keys`] still emits version 2 so existing fixtures and the
//! external CUDA harness keep working. The decoder is strict: wrong
//! magic, unsupported version, wrong key width, truncated payload,
//! trailing bytes and checksum mismatches (header, index or chunk) all
//! surface as [`WcmsError::DatasetCorrupt`] — a fault-injection target
//! as much as a file format.

use std::collections::BinaryHeap;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use wcms_error::WcmsError;

const MAGIC: &[u8; 8] = b"WCMSKEYS";
const VERSION: u32 = 2;
/// Version tag of the chunked streaming layout.
pub const VERSION_V3: u32 = 3;
const KEY_WIDTH: u32 = 4;

/// Default chunk size (in keys) for version-3 files: 4 MiB of payload
/// per chunk — small enough that a reader buffer is negligible, large
/// enough that the chunk index for N = 10⁹ stays under 8 KiB.
pub const DEFAULT_CHUNK_KEYS: usize = 1 << 20;
/// Largest chunk size (in keys) the codec accepts; bounds the reader's
/// single-chunk buffer at 16 MiB no matter what a hostile header says.
pub const MAX_CHUNK_KEYS: usize = 1 << 22;
/// Largest chunk count the codec accepts; bounds the in-memory chunk
/// index at 32 MiB no matter what a hostile header says.
pub const MAX_CHUNKS: u64 = 1 << 22;

/// FNV-1a 64-bit — tiny, dependency-free, and plenty to catch the
/// bit-flips and truncations the fault injector produces.
fn fnv1a(bytes: &[u8], state: u64) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Serialize `keys` into `w` (version-2 format, with checksum).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_keys<W: Write>(mut w: W, keys: &[u32]) -> Result<(), WcmsError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&KEY_WIDTH.to_le_bytes())?;
    w.write_all(&(keys.len() as u64).to_le_bytes())?;
    // Chunked conversion keeps peak memory at 64 KiB regardless of N.
    let mut buf = Vec::with_capacity(16384 * 4);
    let mut checksum = FNV_OFFSET;
    for chunk in keys.chunks(16384) {
        buf.clear();
        for k in chunk {
            buf.extend_from_slice(&k.to_le_bytes());
        }
        checksum = fnv1a(&buf, checksum);
        w.write_all(&buf)?;
    }
    w.write_all(&checksum.to_le_bytes())?;
    Ok(())
}

fn corrupt(reason: impl Into<String>) -> WcmsError {
    WcmsError::DatasetCorrupt { reason: reason.into() }
}

/// `read_exact` whose premature EOF is *corruption* (a truncated file),
/// not a generic I/O failure.
fn read_exact_or_corrupt<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), WcmsError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            corrupt(format!("truncated {what}"))
        } else {
            WcmsError::Io(e)
        }
    })
}

/// Deserialize keys produced by [`write_keys`] or [`DatasetWriter`]
/// (any format version). Convenience wrapper over [`DatasetReader`]
/// for datasets that fit in memory.
///
/// # Errors
///
/// Returns [`WcmsError::DatasetCorrupt`] on a bad magic, unsupported
/// version, wrong key width, truncated payload, trailing bytes or
/// checksum mismatch (payload, header, index or chunk); non-EOF reader
/// failures surface as [`WcmsError::Io`].
pub fn read_keys<R: Read>(r: R) -> Result<Vec<u32>, WcmsError> {
    let mut reader = DatasetReader::open(r)?;
    let mut keys = Vec::with_capacity((reader.count() as usize).min(1 << 24));
    while let Some(chunk) = reader.next_chunk()? {
        keys.extend_from_slice(&chunk);
    }
    Ok(keys)
}

/// Serialize `keys` into `w` in the version-3 chunked layout.
/// Convenience wrapper over [`DatasetWriter`] for in-memory datasets.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_keys_v3<W: Write + Seek>(w: W, keys: &[u32]) -> Result<(), WcmsError> {
    let mut writer = DatasetWriter::new(w, keys.len() as u64, DEFAULT_CHUNK_KEYS)?;
    writer.write_keys(keys)?;
    writer.finish()?;
    Ok(())
}

/// Streaming writer for the version-3 chunked layout.
///
/// The key count must be declared up front (it sizes the chunk index,
/// which lives before the payload); keys are then appended in any
/// slice granularity and flushed chunk-by-chunk, so peak memory is one
/// chunk regardless of N. [`DatasetWriter::finish`] seeks back to
/// backpatch the chunk index — hence the `Seek` bound — and fails if
/// the declared count was not met exactly.
pub struct DatasetWriter<W: Write + Seek> {
    w: W,
    count: u64,
    chunk: usize,
    written: u64,
    buf: Vec<u8>,
    sums: Vec<u64>,
    index_pos: u64,
    finished: bool,
}

impl<W: Write + Seek> DatasetWriter<W> {
    /// Start a version-3 file that will hold exactly `count` keys in
    /// chunks of `chunk` keys. Writes the header and a placeholder
    /// chunk index; the real index is backpatched by `finish`.
    ///
    /// # Errors
    ///
    /// [`WcmsError::DatasetCorrupt`] for a zero or oversized chunk
    /// size or an oversized chunk count; I/O errors from the writer.
    pub fn new(mut w: W, count: u64, chunk: usize) -> Result<Self, WcmsError> {
        let n_chunks = check_geometry(count, chunk)?;
        let mut header = Vec::with_capacity(32);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION_V3.to_le_bytes());
        header.extend_from_slice(&KEY_WIDTH.to_le_bytes());
        header.extend_from_slice(&count.to_le_bytes());
        header.extend_from_slice(&(chunk as u64).to_le_bytes());
        let hsum = fnv1a(&header, FNV_OFFSET);
        w.write_all(&header)?;
        w.write_all(&hsum.to_le_bytes())?;
        let index_pos = 40;
        // Placeholder index + index checksum, backpatched by finish().
        let zeros = vec![0u8; 4096];
        let mut remaining = (n_chunks as usize + 1) * 8;
        while remaining > 0 {
            let take = remaining.min(zeros.len());
            w.write_all(&zeros[..take])?;
            remaining -= take;
        }
        Ok(Self {
            w,
            count,
            chunk,
            written: 0,
            buf: Vec::with_capacity(chunk * 4),
            sums: Vec::with_capacity(n_chunks as usize),
            index_pos,
            finished: false,
        })
    }

    /// Append keys; flushes every completed chunk immediately.
    ///
    /// # Errors
    ///
    /// [`WcmsError::DatasetCorrupt`] when more keys arrive than the
    /// declared count; I/O errors from the writer.
    pub fn write_keys(&mut self, keys: &[u32]) -> Result<(), WcmsError> {
        if self.written + keys.len() as u64 > self.count {
            return Err(corrupt(format!(
                "dataset writer overflow: declared {} keys, got more",
                self.count
            )));
        }
        self.written += keys.len() as u64;
        for k in keys {
            self.buf.extend_from_slice(&k.to_le_bytes());
            if self.buf.len() == self.chunk * 4 {
                self.flush_chunk()?;
            }
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), WcmsError> {
        self.sums.push(fnv1a(&self.buf, FNV_OFFSET));
        self.w.write_all(&self.buf)?;
        self.buf.clear();
        Ok(())
    }

    /// Flush the final partial chunk, backpatch the chunk index and
    /// return the underlying writer positioned at end-of-file.
    ///
    /// # Errors
    ///
    /// [`WcmsError::DatasetCorrupt`] when fewer keys were written than
    /// declared; I/O errors from the writer.
    pub fn finish(mut self) -> Result<W, WcmsError> {
        if self.written != self.count {
            return Err(corrupt(format!(
                "dataset writer underflow: declared {} keys, wrote {}",
                self.count, self.written
            )));
        }
        if !self.buf.is_empty() {
            self.flush_chunk()?;
        }
        let mut index = Vec::with_capacity(self.sums.len() * 8);
        for s in &self.sums {
            index.extend_from_slice(&s.to_le_bytes());
        }
        let isum = fnv1a(&index, FNV_OFFSET);
        self.w.flush()?;
        self.w.seek(SeekFrom::Start(self.index_pos))?;
        self.w.write_all(&index)?;
        self.w.write_all(&isum.to_le_bytes())?;
        self.w.flush()?;
        self.w.seek(SeekFrom::End(0))?;
        self.finished = true;
        Ok(self.w)
    }
}

/// Validate the (count, chunk) geometry shared by writer and reader;
/// returns the chunk count.
fn check_geometry(count: u64, chunk: usize) -> Result<u64, WcmsError> {
    if chunk == 0 {
        return Err(corrupt("zero chunk size"));
    }
    if chunk > MAX_CHUNK_KEYS {
        return Err(corrupt(format!("oversized chunk size {chunk} keys (max {MAX_CHUNK_KEYS})")));
    }
    let n_chunks = count.div_ceil(chunk as u64);
    if n_chunks > MAX_CHUNKS {
        return Err(corrupt(format!("oversized chunk count {n_chunks} (max {MAX_CHUNKS})")));
    }
    Ok(n_chunks)
}

enum Layout {
    /// v1 (no checksum) / v2 (one whole-payload checksum): streamed in
    /// fixed 16384-key slices with a running FNV state.
    Flat { version: u32, running: u64 },
    /// v3: per-chunk checksums, verified against the up-front index.
    Chunked { sums: Vec<u64>, chunk: usize },
}

/// Streaming, verifying reader for every dataset version.
///
/// Yields one chunk of keys at a time (16384 keys for v1/v2, the
/// file's declared chunk size for v3), so peak memory stays bounded no
/// matter how large the file is. All integrity checks of [`read_keys`]
/// apply: corruption surfaces as [`WcmsError::DatasetCorrupt`] from
/// `open` or from the `next_chunk` that reaches the damaged bytes.
pub struct DatasetReader<R: Read> {
    r: R,
    count: u64,
    delivered: u64,
    next_chunk: usize,
    layout: Layout,
    done: bool,
}

impl<R: Read> DatasetReader<R> {
    /// Parse and verify the header (and, for v3, the chunk index).
    ///
    /// # Errors
    ///
    /// [`WcmsError::DatasetCorrupt`] on bad magic, unsupported
    /// version, wrong key width, truncated or checksum-failing header
    /// or index; non-EOF reader failures as [`WcmsError::Io`].
    pub fn open(mut r: R) -> Result<Self, WcmsError> {
        let mut magic = [0u8; 8];
        read_exact_or_corrupt(&mut r, &mut magic, "header")?;
        if &magic != MAGIC {
            return Err(corrupt("not a wcms key file"));
        }
        let mut word = [0u8; 4];
        read_exact_or_corrupt(&mut r, &mut word, "header")?;
        let version = u32::from_le_bytes(word);
        if version != 1 && version != VERSION && version != VERSION_V3 {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        if version != 1 {
            read_exact_or_corrupt(&mut r, &mut word, "header")?;
            let width = u32::from_le_bytes(word);
            if width != KEY_WIDTH {
                return Err(corrupt(format!("key width {width} B, expected {KEY_WIDTH} B")));
            }
        }
        let mut len8 = [0u8; 8];
        read_exact_or_corrupt(&mut r, &mut len8, "header")?;
        let count = u64::from_le_bytes(len8);

        let layout = if version == VERSION_V3 {
            let mut chunk8 = [0u8; 8];
            read_exact_or_corrupt(&mut r, &mut chunk8, "header")?;
            let mut sum8 = [0u8; 8];
            read_exact_or_corrupt(&mut r, &mut sum8, "header checksum")?;
            let stored = u64::from_le_bytes(sum8);
            // Recompute over the exact 32 bytes read so far.
            let mut header = Vec::with_capacity(32);
            header.extend_from_slice(&magic);
            header.extend_from_slice(&VERSION_V3.to_le_bytes());
            header.extend_from_slice(&KEY_WIDTH.to_le_bytes());
            header.extend_from_slice(&len8);
            header.extend_from_slice(&chunk8);
            let computed = fnv1a(&header, FNV_OFFSET);
            if stored != computed {
                return Err(corrupt(format!(
                    "header checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )));
            }
            let chunk_u64 = u64::from_le_bytes(chunk8);
            let chunk = usize::try_from(chunk_u64)
                .map_err(|_| corrupt(format!("oversized chunk size {chunk_u64} keys")))?;
            let n_chunks = check_geometry(count, chunk)? as usize;
            let mut sums = Vec::with_capacity(n_chunks);
            let mut isum = FNV_OFFSET;
            let mut entry = [0u8; 8];
            for _ in 0..n_chunks {
                read_exact_or_corrupt(&mut r, &mut entry, "chunk index")?;
                isum = fnv1a(&entry, isum);
                sums.push(u64::from_le_bytes(entry));
            }
            read_exact_or_corrupt(&mut r, &mut entry, "chunk index checksum")?;
            let stored = u64::from_le_bytes(entry);
            if stored != isum {
                return Err(corrupt(format!(
                    "chunk index checksum mismatch: stored {stored:#018x}, computed {isum:#018x}"
                )));
            }
            Layout::Chunked { sums, chunk }
        } else {
            Layout::Flat { version, running: FNV_OFFSET }
        };
        Ok(Self { r, count, delivered: 0, next_chunk: 0, layout, done: false })
    }

    /// Total number of keys the file declares.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Next verified chunk of keys, or `None` once the whole payload
    /// (and every trailing check) has been consumed.
    ///
    /// # Errors
    ///
    /// [`WcmsError::DatasetCorrupt`] on truncation, a chunk or payload
    /// checksum mismatch, or trailing bytes after the payload.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u32>>, WcmsError> {
        if self.done {
            return Ok(None);
        }
        if self.delivered == self.count {
            self.finalize()?;
            return Ok(None);
        }
        let remaining = (self.count - self.delivered) as usize;
        let take = match &self.layout {
            Layout::Flat { .. } => remaining.min(16384),
            Layout::Chunked { chunk, .. } => remaining.min(*chunk),
        };
        let mut bytes = vec![0u8; take * 4];
        read_exact_or_corrupt(&mut self.r, &mut bytes, "payload")?;
        match &mut self.layout {
            Layout::Flat { running, .. } => *running = fnv1a(&bytes, *running),
            Layout::Chunked { sums, .. } => {
                let i = self.next_chunk;
                let computed = fnv1a(&bytes, FNV_OFFSET);
                if sums[i] != computed {
                    return Err(corrupt(format!(
                        "chunk {i} checksum mismatch: stored {:#018x}, computed {computed:#018x}",
                        sums[i]
                    )));
                }
            }
        }
        self.next_chunk += 1;
        self.delivered += take as u64;
        let keys =
            bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        Ok(Some(keys))
    }

    /// Trailing checks once the payload is exhausted: the v2 payload
    /// checksum, then a one-byte probe for spliced/oversized files.
    fn finalize(&mut self) -> Result<(), WcmsError> {
        self.done = true;
        if let Layout::Flat { version, running } = &self.layout {
            if *version == VERSION {
                let mut sum8 = [0u8; 8];
                read_exact_or_corrupt(&mut self.r, &mut sum8, "checksum")?;
                let stored = u64::from_le_bytes(sum8);
                if stored != *running {
                    return Err(corrupt(format!(
                        "checksum mismatch: stored {stored:#018x}, computed {:#018x}",
                        running
                    )));
                }
            }
        }
        // A valid file ends exactly here: anything more means the count
        // field undersells the payload (an oversized / spliced file).
        let mut probe = [0u8; 1];
        match self.r.read(&mut probe) {
            Ok(0) => Ok(()),
            Ok(_) => Err(corrupt("trailing bytes after payload")),
            Err(e) => Err(WcmsError::Io(e)),
        }
    }
}

/// Order-independent (multiset) fingerprint of a key stream: the
/// wrapping sum of each key's own FNV-1a hash. Two files hold the same
/// keys in any order iff their fingerprints match (modulo collisions)
/// — the check an external sort uses to prove it lost nothing, and
/// computable one chunk at a time under bounded memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MultisetFingerprint {
    acc: u64,
}

impl MultisetFingerprint {
    /// Fresh (empty-multiset) fingerprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a chunk of keys into the fingerprint.
    pub fn update(&mut self, keys: &[u32]) {
        for k in keys {
            self.acc = self.acc.wrapping_add(fnv1a(&k.to_le_bytes(), FNV_OFFSET));
        }
    }

    /// The accumulated fingerprint value.
    pub fn finish(&self) -> u64 {
        self.acc
    }
}

/// What [`sort_dataset_file`] did: sizes for reporting and the shared
/// input/output multiset fingerprint.
#[derive(Debug, Clone, Copy)]
pub struct SortFileReport {
    /// Number of keys sorted.
    pub keys: u64,
    /// Number of sorted runs merged.
    pub runs: usize,
    /// Multiset fingerprint shared by input and output.
    pub fingerprint: u64,
}

/// External merge sort over version-3 dataset files: streams `input`
/// in sorted runs of `run_keys` keys (each run a temporary v3 file),
/// then k-way merges the runs into `output`, verifying that the output
/// multiset fingerprint matches the input's. Peak memory is one run
/// plus one reader chunk per run — N = 10⁸ sorts comfortably under
/// 256 MiB with the default geometry.
///
/// # Errors
///
/// [`WcmsError::DatasetCorrupt`] if the input fails verification or
/// the merged output's fingerprint differs from the input's; I/O
/// errors from the filesystem.
pub fn sort_dataset_file(
    input: &Path,
    output: &Path,
    run_keys: usize,
) -> Result<SortFileReport, WcmsError> {
    let run_keys = run_keys.max(1);
    let run_dir = output.with_extension("runs.tmp");
    fs::create_dir_all(&run_dir)?;
    let cleanup = |dir: &Path| {
        let _ = fs::remove_dir_all(dir);
    };

    // Phase 1: cut the input into sorted runs, fingerprinting as we go.
    let mut reader = DatasetReader::open(BufReader::new(File::open(input)?))
        .map_err(|e| (cleanup(&run_dir), e).1)?;
    let total = reader.count();
    let mut in_print = MultisetFingerprint::new();
    let mut runs: Vec<std::path::PathBuf> = Vec::new();
    let result = (|| -> Result<(), WcmsError> {
        let mut pending: Vec<u32> = Vec::with_capacity(run_keys.min(total as usize + 1));
        let flush = |pending: &mut Vec<u32>, runs: &mut Vec<std::path::PathBuf>| {
            if pending.is_empty() {
                return Ok::<(), WcmsError>(());
            }
            pending.sort_unstable();
            let path = run_dir.join(format!("run-{:06}.keys", runs.len()));
            let file = BufWriter::new(File::create(&path)?);
            let chunk = run_keys.min(DEFAULT_CHUNK_KEYS).min(1 << 16);
            let mut w = DatasetWriter::new(file, pending.len() as u64, chunk)?;
            w.write_keys(pending)?;
            w.finish()?.into_inner().map_err(|e| WcmsError::Io(e.into_error()))?.sync_all()?;
            runs.push(path);
            pending.clear();
            Ok(())
        };
        while let Some(chunk) = reader.next_chunk()? {
            in_print.update(&chunk);
            let mut rest: &[u32] = &chunk;
            while !rest.is_empty() {
                let take = (run_keys - pending.len()).min(rest.len());
                pending.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if pending.len() == run_keys {
                    flush(&mut pending, &mut runs)?;
                }
            }
        }
        flush(&mut pending, &mut runs)?;

        // Phase 2: k-way merge of the runs into the output file.
        let mut sources: Vec<DatasetReader<BufReader<File>>> = Vec::with_capacity(runs.len());
        for path in &runs {
            sources.push(DatasetReader::open(BufReader::new(File::open(path)?))?);
        }
        // (key, source) min-heap via Reverse; `cursors` holds each
        // source's current chunk and position within it.
        let mut cursors: Vec<(Vec<u32>, usize)> = Vec::with_capacity(sources.len());
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize)>> = BinaryHeap::new();
        for (i, src) in sources.iter_mut().enumerate() {
            let chunk = src.next_chunk()?.unwrap_or_default();
            if !chunk.is_empty() {
                heap.push(std::cmp::Reverse((chunk[0], i)));
            }
            cursors.push((chunk, 0));
        }
        let out_file = BufWriter::new(File::create(output)?);
        let mut w = DatasetWriter::new(out_file, total, DEFAULT_CHUNK_KEYS)?;
        let mut out_print = MultisetFingerprint::new();
        let mut out_buf: Vec<u32> = Vec::with_capacity(1 << 14);
        while let Some(std::cmp::Reverse((key, i))) = heap.pop() {
            out_buf.push(key);
            if out_buf.len() == out_buf.capacity() {
                out_print.update(&out_buf);
                w.write_keys(&out_buf)?;
                out_buf.clear();
            }
            let (chunk, pos) = &mut cursors[i];
            *pos += 1;
            if *pos == chunk.len() {
                *chunk = sources[i].next_chunk()?.unwrap_or_default();
                *pos = 0;
            }
            if *pos < chunk.len() {
                heap.push(std::cmp::Reverse((chunk[*pos], i)));
            }
        }
        out_print.update(&out_buf);
        w.write_keys(&out_buf)?;
        w.finish()?.into_inner().map_err(|e| WcmsError::Io(e.into_error()))?.sync_all()?;
        if out_print.finish() != in_print.finish() {
            return Err(corrupt(format!(
                "external sort fingerprint mismatch: input {:#018x}, output {:#018x}",
                in_print.finish(),
                out_print.finish()
            )));
        }
        Ok(())
    })();
    cleanup(&run_dir);
    result?;
    Ok(SortFileReport { keys: total, runs: runs.len(), fingerprint: in_print.finish() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        for keys in [vec![], vec![7u32], (0..100_000u32).rev().collect::<Vec<_>>()] {
            let mut buf = Vec::new();
            write_keys(&mut buf, &keys).unwrap();
            assert_eq!(read_keys(buf.as_slice()).unwrap(), keys);
        }
    }

    #[test]
    fn header_size_is_fixed() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &[1, 2, 3]).unwrap();
        // magic + version + width + count + payload + checksum
        assert_eq!(buf.len(), 8 + 4 + 4 + 8 + 12 + 8);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_keys(&b"NOTAKEYF\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, WcmsError::DatasetCorrupt { .. }), "{err}");
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn rejects_wrong_key_width() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&8u32.to_le_bytes()); // u64 keys: unsupported
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("key width 8"), "{err}");
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &[1u32, 2, 3]).unwrap();
        buf.truncate(buf.len() - 10); // into the payload
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(matches!(err, WcmsError::DatasetCorrupt { .. }), "{err}");
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &[1u32, 2, 3]).unwrap();
        buf.push(0);
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn detects_payload_bit_flip() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &(0..64u32).collect::<Vec<_>>()).unwrap();
        buf[8 + 4 + 4 + 8 + 17] ^= 0x40; // flip one payload bit
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn reads_legacy_v1_files() {
        // v1: magic + version + count + payload, no width, no checksum.
        let keys = [9u32, 8, 7];
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(keys.len() as u64).to_le_bytes());
        for k in keys {
            buf.extend_from_slice(&k.to_le_bytes());
        }
        assert_eq!(read_keys(buf.as_slice()).unwrap(), keys);
    }

    // ---- version 3 ----

    fn v3_bytes(keys: &[u32], chunk: usize) -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        let mut w = DatasetWriter::new(&mut cur, keys.len() as u64, chunk).unwrap();
        w.write_keys(keys).unwrap();
        w.finish().unwrap();
        cur.into_inner()
    }

    #[test]
    fn v3_roundtrip_various_geometries() {
        for keys in
            [vec![], vec![7u32], (0..1000u32).rev().collect::<Vec<_>>(), vec![u32::MAX; 257]]
        {
            for chunk in [1usize, 3, 64, DEFAULT_CHUNK_KEYS] {
                let buf = v3_bytes(&keys, chunk);
                assert_eq!(read_keys(buf.as_slice()).unwrap(), keys, "chunk={chunk}");
            }
        }
    }

    #[test]
    fn v3_layout_size_is_exact() {
        let buf = v3_bytes(&[1, 2, 3, 4, 5], 2);
        // header(32) + hsum(8) + index(3×8) + isum(8) + payload(20)
        assert_eq!(buf.len(), 32 + 8 + 24 + 8 + 20);
    }

    #[test]
    fn v3_streaming_reader_yields_declared_chunks() {
        let keys: Vec<u32> = (0..10u32).collect();
        let buf = v3_bytes(&keys, 4);
        let mut r = DatasetReader::open(buf.as_slice()).unwrap();
        assert_eq!(r.count(), 10);
        assert_eq!(r.next_chunk().unwrap().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(r.next_chunk().unwrap().unwrap(), vec![4, 5, 6, 7]);
        assert_eq!(r.next_chunk().unwrap().unwrap(), vec![8, 9]);
        assert!(r.next_chunk().unwrap().is_none());
        assert!(r.next_chunk().unwrap().is_none()); // idempotent
    }

    #[test]
    fn v3_writer_enforces_declared_count() {
        let mut cur = Cursor::new(Vec::new());
        let mut w = DatasetWriter::new(&mut cur, 3, 2).unwrap();
        w.write_keys(&[1, 2]).unwrap();
        let err = w.write_keys(&[3, 4]).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");

        let mut cur = Cursor::new(Vec::new());
        let mut w = DatasetWriter::new(&mut cur, 3, 2).unwrap();
        w.write_keys(&[1, 2]).unwrap();
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("underflow"), "{err}");
    }

    #[test]
    fn v3_rejects_hostile_geometry() {
        assert!(DatasetWriter::new(Cursor::new(Vec::new()), 1, 0).is_err());
        assert!(DatasetWriter::new(Cursor::new(Vec::new()), 1, MAX_CHUNK_KEYS + 1).is_err());
        assert!(DatasetWriter::new(Cursor::new(Vec::new()), u64::MAX, 1024).is_err());
    }

    #[test]
    fn v3_detects_chunk_bit_flip() {
        let mut buf = v3_bytes(&(0..32u32).collect::<Vec<_>>(), 8);
        let payload_start = buf.len() - 32 * 4;
        buf[payload_start + 37] ^= 0x01;
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("chunk 1 checksum mismatch"), "{err}");
    }

    #[test]
    fn multiset_fingerprint_is_order_independent() {
        let mut a = MultisetFingerprint::new();
        a.update(&[3, 1, 2]);
        a.update(&[9]);
        let mut b = MultisetFingerprint::new();
        b.update(&[9, 2]);
        b.update(&[1, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = MultisetFingerprint::new();
        c.update(&[3, 1, 2, 9, 9]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn external_sort_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("wcms-sortfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.keys");
        let output = dir.join("out.keys");
        let keys: Vec<u32> = (0..10_000u32).rev().map(|k| k.wrapping_mul(2654435761)).collect();
        let file = BufWriter::new(File::create(&input).unwrap());
        let mut w = DatasetWriter::new(file, keys.len() as u64, 512).unwrap();
        w.write_keys(&keys).unwrap();
        w.finish().unwrap();

        let report = sort_dataset_file(&input, &output, 1024).unwrap();
        assert_eq!(report.keys, keys.len() as u64);
        assert!(report.runs >= 2, "expected a real multi-run merge, got {}", report.runs);
        let sorted = read_keys(BufReader::new(File::open(&output).unwrap())).unwrap();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
