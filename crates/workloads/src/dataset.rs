//! Saving and loading key datasets.
//!
//! A tiny self-describing binary format (magic, version, key count,
//! little-endian `u32` keys) so that expensive adversarial inputs can be
//! generated once and replayed — e.g. to hand a constructed permutation
//! to an external CUDA harness on a real GPU.

use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"WCMSKEYS";
const VERSION: u32 = 1;

/// Serialize `keys` into `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_keys<W: Write>(mut w: W, keys: &[u32]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(keys.len() as u64).to_le_bytes())?;
    // Chunked conversion keeps peak memory at 64 KiB regardless of N.
    let mut buf = Vec::with_capacity(16384 * 4);
    for chunk in keys.chunks(16384) {
        buf.clear();
        for k in chunk {
            buf.extend_from_slice(&k.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Deserialize keys produced by [`write_keys`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/version/length, and propagates
/// I/O errors.
pub fn read_keys<R: Read>(mut r: R) -> io::Result<Vec<u32>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a wcms key file"));
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let len = u64::from_le_bytes(len8) as usize;

    let mut keys = Vec::with_capacity(len.min(1 << 24));
    let mut buf = vec![0u8; 16384 * 4];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(16384);
        let bytes = &mut buf[..take * 4];
        r.read_exact(bytes)?;
        keys.extend(bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])));
        remaining -= take;
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for keys in [vec![], vec![7u32], (0..100_000u32).rev().collect::<Vec<_>>()] {
            let mut buf = Vec::new();
            write_keys(&mut buf, &keys).unwrap();
            assert_eq!(read_keys(buf.as_slice()).unwrap(), keys);
        }
    }

    #[test]
    fn header_size_is_fixed() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &[1, 2, 3]).unwrap();
        assert_eq!(buf.len(), 8 + 4 + 8 + 12);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_keys(&b"NOTAKEYF\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_keys(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut buf = Vec::new();
        write_keys(&mut buf, &[1u32, 2, 3]).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_keys(buf.as_slice()).is_err());
    }
}
