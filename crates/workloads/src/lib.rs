//! # `wcms-workloads` — input distributions for sorting experiments
//!
//! The paper evaluates on random inputs (10-run averages) against the
//! constructed worst case. This crate provides those and the surrounding
//! distributions used by the harness and by the β-vs-inversions analysis
//! of Karsin et al. (§II-A): all generation is *seeded* and reproducible.
//!
//! * [`random`] — uniform `u32` keys and random permutations;
//! * [`sorted`] — sorted / reverse-sorted / rotated ramps;
//! * [`nearly`] — bounded-disorder inputs (k random swaps, local shuffle);
//! * [`dist`] — duplicate-heavy and sawtooth distributions;
//! * [`inversions`] — exact inversion counting (merge-count);
//! * [`adversarial`] — the worst-case/conflict-heavy generators of
//!   [`wcms_core`] wrapped as workloads (with size padding);
//! * [`dataset`] — a binary key-file format for exporting constructed
//!   inputs (e.g. to a real-GPU CUDA harness);
//! * [`spec`] — a serializable [`spec::WorkloadSpec`]
//!   naming every input class the harness sweeps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod dataset;
pub mod dist;
pub mod inversions;
pub mod nearly;
pub mod random;
pub mod sorted;
pub mod spec;

pub use inversions::count_inversions;
pub use spec::WorkloadSpec;
