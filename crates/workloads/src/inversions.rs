//! Exact inversion counting via merge-count, `O(n log n)`.
//!
//! An inversion is a pair `i < j` with `xs[i] > xs[j]`. Karsin et al.
//! report that the merge sort's bank-conflict averages grow with the
//! inversion count; the harness uses this to reproduce that trend.

/// Count inversions of `xs`.
#[must_use]
pub fn count_inversions(xs: &[u32]) -> u64 {
    if xs.len() < 2 {
        return 0;
    }
    let mut work = xs.to_vec();
    let mut buf = vec![0u32; xs.len()];
    merge_count(&mut work, &mut buf)
}

fn merge_count(xs: &mut [u32], buf: &mut [u32]) -> u64 {
    let n = xs.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left_buf, right_buf) = buf.split_at_mut(mid);
    let mut inv = {
        let (l, r) = xs.split_at_mut(mid);
        merge_count(l, left_buf) + merge_count(r, right_buf)
    };
    // Merge xs[..mid] and xs[mid..] into buf, counting cross inversions.
    let (mut i, mut j, mut k) = (0usize, mid, 0usize);
    while i < mid && j < n {
        if xs[i] <= xs[j] {
            buf[k] = xs[i];
            i += 1;
        } else {
            // xs[i..mid] all exceed xs[j]: mid − i inversions.
            inv += (mid - i) as u64;
            buf[k] = xs[j];
            j += 1;
        }
        k += 1;
    }
    while i < mid {
        buf[k] = xs[i];
        i += 1;
        k += 1;
    }
    while j < n {
        buf[k] = xs[j];
        j += 1;
        k += 1;
    }
    xs.copy_from_slice(&buf[..n]);
    inv
}

/// Normalized disorder in `[0, 1]`: inversions divided by the maximum
/// `n(n−1)/2`.
#[must_use]
pub fn disorder(xs: &[u32]) -> f64 {
    let n = xs.len() as u64;
    if n < 2 {
        return 0.0;
    }
    count_inversions(xs) as f64 / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(xs: &[u32]) -> u64 {
        let mut inv = 0;
        for i in 0..xs.len() {
            for j in i + 1..xs.len() {
                if xs[i] > xs[j] {
                    inv += 1;
                }
            }
        }
        inv
    }

    #[test]
    fn known_counts() {
        assert_eq!(count_inversions(&[]), 0);
        assert_eq!(count_inversions(&[1]), 0);
        assert_eq!(count_inversions(&[1, 2, 3]), 0);
        assert_eq!(count_inversions(&[3, 2, 1]), 3);
        assert_eq!(count_inversions(&[2, 1, 3]), 1);
        assert_eq!(count_inversions(&[5, 5, 5]), 0); // ties are not inversions
    }

    #[test]
    fn matches_brute_force() {
        let xs: Vec<u32> = (0..200).map(|i| (i * 77 + 13) % 101).collect();
        assert_eq!(count_inversions(&xs), brute(&xs));
        let ys: Vec<u32> = (0..255).map(|i| (i * 31) % 64).collect();
        assert_eq!(count_inversions(&ys), brute(&ys));
    }

    #[test]
    fn disorder_endpoints() {
        let sorted: Vec<u32> = (0..100).collect();
        let reversed: Vec<u32> = (0..100).rev().collect();
        assert_eq!(disorder(&sorted), 0.0);
        assert!((disorder(&reversed) - 1.0).abs() < 1e-12);
        assert_eq!(disorder(&[7]), 0.0);
    }
}
