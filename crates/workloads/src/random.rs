//! Seeded uniform-random inputs — the paper's baseline input class
//! ("All experiments are performed on 4-byte integers with the average
//! over 10 runs being reported", §IV-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` uniform `u32` keys (duplicates possible, like the paper's random
/// 4-byte integers).
#[must_use]
pub fn uniform_u32(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// A uniformly random permutation of `0 … n−1` (distinct keys; what the
/// adversarial builder produces, so the fairest baseline for conflict
/// comparisons).
///
/// # Panics
///
/// Panics if `n` exceeds `u32` range.
#[must_use]
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    assert!(n <= u32::MAX as usize);
    let mut xs: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates.
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
    xs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(uniform_u32(100, 7), uniform_u32(100, 7));
        assert_ne!(uniform_u32(100, 7), uniform_u32(100, 8));
        assert_eq!(uniform_u32(100, 7).len(), 100);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = random_permutation(1000, 42);
        let mut s = p.clone();
        s.sort_unstable();
        assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn permutation_is_shuffled() {
        let p = random_permutation(1000, 42);
        let sorted: Vec<u32> = (0..1000).collect();
        assert_ne!(p, sorted);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(uniform_u32(0, 1).is_empty());
        assert_eq!(random_permutation(1, 1), vec![0]);
    }
}
