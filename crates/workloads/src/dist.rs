//! Duplicate-heavy and structured distributions, exercising the merge
//! sort's tie handling and non-uniform merge paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` keys drawn uniformly from only `distinct` values.
///
/// # Panics
///
/// Panics if `distinct == 0`.
#[must_use]
pub fn few_distinct(n: usize, distinct: u32, seed: u64) -> Vec<u32> {
    assert!(distinct > 0, "need at least one distinct value");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..distinct)).collect()
}

/// A sawtooth of `teeth` ascending runs — sorted runs of equal length,
/// a classic adversary for merge strategies.
#[must_use]
pub fn sawtooth(n: usize, teeth: usize) -> Vec<u32> {
    let teeth = teeth.max(1);
    let run = n.div_ceil(teeth);
    (0..n).map(|i| ((i % run) * teeth + i / run) as u32).collect()
}

/// All keys equal — degenerate duplicate case.
#[must_use]
pub fn constant(n: usize, value: u32) -> Vec<u32> {
    vec![value; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_distinct_respects_alphabet() {
        let xs = few_distinct(10_000, 4, 11);
        assert!(xs.iter().all(|&v| v < 4));
        // All 4 values should appear in 10k draws.
        for v in 0..4 {
            assert!(xs.contains(&v), "missing value {v}");
        }
    }

    #[test]
    fn sawtooth_has_ascending_runs() {
        let xs = sawtooth(100, 4);
        let run = 25;
        for t in 0..4 {
            let tooth = &xs[t * run..(t + 1) * run];
            assert!(tooth.windows(2).all(|w| w[0] < w[1]), "tooth {t} not ascending");
        }
    }

    #[test]
    fn sawtooth_one_tooth_is_sorted() {
        let xs = sawtooth(50, 1);
        assert!(xs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn constant_is_constant() {
        assert_eq!(constant(5, 9), vec![9; 5]);
    }

    #[test]
    #[should_panic(expected = "at least one distinct")]
    fn zero_alphabet_rejected() {
        let _ = few_distinct(10, 0, 0);
    }
}
