//! The adversarial generators of [`wcms_core`] exposed as workloads.
//!
//! These wrap [`WorstCaseBuilder`] with size handling: the merge-sort
//! structure needs `n = bE·2^m`, so arbitrary sizes are padded up to the
//! next valid length (padding keys are the largest values, so they sink
//! to the tail and leave every adversarial round's structure intact for
//! the original prefix).

use wcms_core::WorstCaseBuilder;
use wcms_error::WcmsError;

/// Map a rank permutation (what the builders emit) into any
/// [`GpuKey`](wcms_gpu_sim::GpuKey) space, order-preserving — the
/// worst-case conflict structure depends only on relative order, so the
/// mapped input attacks the sort identically for every key type.
#[must_use]
pub fn as_keys<K: wcms_gpu_sim::GpuKey>(ranks: &[u32]) -> Vec<K> {
    ranks.iter().map(|&r| K::from_rank(r)).collect()
}

/// The paper's worst-case permutation for sort parameters `(w, E, b)`;
/// `n` must be a valid length (`bE·2^m`).
///
/// # Errors
///
/// Returns [`WcmsError::NonCoprime`] / [`WcmsError::InvalidBlock`] for
/// parameters with no construction, [`WcmsError::InvalidLength`] when
/// `n` is not `bE·2^m`.
pub fn worst_case(w: usize, e: usize, b: usize, n: usize) -> Result<Vec<u32>, WcmsError> {
    WorstCaseBuilder::new(w, e, b)?.build(n)
}

/// Worst-case permutation for any `n`: builds at the next valid length
/// and truncates the *values* back to `0 … n−1` (keeping relative order
/// of survivors — the resulting prefix permutation preserves each round's
/// interleaving for the surviving elements).
/// # Errors
///
/// Returns [`WcmsError::NonCoprime`] / [`WcmsError::InvalidBlock`] for
/// parameters with no construction (any `n` works — that is the point).
pub fn worst_case_padded(w: usize, e: usize, b: usize, n: usize) -> Result<Vec<u32>, WcmsError> {
    let builder = WorstCaseBuilder::new(w, e, b)?;
    if builder.valid_len(n) {
        return builder.build(n);
    }
    let full = builder.build(builder.next_valid_len(n))?;
    Ok(full.into_iter().filter(|&v| (v as usize) < n).collect())
}

/// A member of the worst-case *family* (Conclusion point 2).
///
/// # Errors
///
/// Same conditions as [`worst_case`].
pub fn worst_case_family(
    w: usize,
    e: usize,
    b: usize,
    n: usize,
    seed: u64,
) -> Result<Vec<u32>, WcmsError> {
    WorstCaseBuilder::new(w, e, b)?.build_family_member(n, seed)
}

/// Karsin-style conflict-heavy baseline input.
///
/// # Errors
///
/// Same conditions as [`worst_case`].
pub fn conflict_heavy(
    w: usize,
    e: usize,
    b: usize,
    n: usize,
    stride: usize,
) -> Result<Vec<u32>, WcmsError> {
    WorstCaseBuilder::conflict_heavy(w, e, b, stride)?.build(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_is_permutation() {
        let n = 16 * 3 * 16 * 4; // w=16,E=3,b=16 → bE=48, ×4 blocks… n = 3072
        let xs = worst_case(16, 3, 32, 3 * 32 * 8).unwrap();
        let mut s = xs.clone();
        s.sort_unstable();
        assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
        let _ = n;
    }

    #[test]
    fn padded_handles_arbitrary_sizes() {
        let (w, e, b) = (16, 3, 32);
        let n = 1000; // not bE·2^m (bE = 96)
        let xs = worst_case_padded(w, e, b, n).unwrap();
        assert_eq!(xs.len(), n);
        let mut s = xs.clone();
        s.sort_unstable();
        assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn padded_passthrough_on_valid_sizes() {
        let (w, e, b) = (16, 3, 32);
        let n = 96 * 4;
        assert_eq!(worst_case_padded(w, e, b, n).unwrap(), worst_case(w, e, b, n).unwrap());
    }

    #[test]
    fn family_members_are_distinct() {
        let n = 96 * 4;
        assert_ne!(
            worst_case_family(16, 3, 32, n, 1).unwrap(),
            worst_case_family(16, 3, 32, n, 2).unwrap()
        );
    }

    #[test]
    fn as_keys_preserves_order() {
        let ranks = vec![5u32, 0, 3, 1];
        let wide: Vec<u64> = as_keys(&ranks);
        let narrow: Vec<i32> = as_keys(&ranks);
        for i in 0..ranks.len() {
            for j in 0..ranks.len() {
                assert_eq!(ranks[i] < ranks[j], wide[i] < wide[j]);
                assert_eq!(ranks[i] < ranks[j], narrow[i] < narrow[j]);
            }
        }
    }

    #[test]
    fn conflict_heavy_is_permutation() {
        let xs = conflict_heavy(16, 3, 32, 96 * 8, 2).unwrap();
        let mut s = xs.clone();
        s.sort_unstable();
        assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
    }
}
