//! Fully-ordered inputs: sorted, reverse-sorted and rotated ramps.
//! Sorted order matters doubly here — for power-of-two `E` it *is* the
//! paper's worst case (§III), and for co-prime `E` it is conflict-free.

/// `0, 1, …, n−1`.
#[must_use]
pub fn sorted(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

/// `n−1, n−2, …, 0` — the maximum-inversion permutation
/// (`n(n−1)/2` inversions).
#[must_use]
pub fn reverse_sorted(n: usize) -> Vec<u32> {
    (0..n as u32).rev().collect()
}

/// Sorted order rotated left by `k`: `k, k+1, …, n−1, 0, …, k−1`.
#[must_use]
pub fn rotated(n: usize, k: usize) -> Vec<u32> {
    let k = if n == 0 { 0 } else { k % n };
    (0..n).map(|i| ((i + k) % n) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inversions::count_inversions;

    #[test]
    fn sorted_has_no_inversions() {
        assert_eq!(count_inversions(&sorted(100)), 0);
    }

    #[test]
    fn reverse_has_max_inversions() {
        let n = 100u64;
        assert_eq!(count_inversions(&reverse_sorted(n as usize)), n * (n - 1) / 2);
    }

    #[test]
    fn rotation_wraps() {
        assert_eq!(rotated(5, 2), vec![2, 3, 4, 0, 1]);
        assert_eq!(rotated(5, 7), rotated(5, 2));
        assert_eq!(rotated(5, 0), sorted(5));
        assert!(rotated(0, 3).is_empty());
    }
}
