//! Property-based tests of the workload generators and inversion counter.

use proptest::prelude::*;
use wcms_workloads::count_inversions;
use wcms_workloads::nearly::{k_swaps, local_shuffle};
use wcms_workloads::random::random_permutation;
use wcms_workloads::sorted::rotated;

fn brute_inversions(xs: &[u32]) -> u64 {
    let mut inv = 0;
    for i in 0..xs.len() {
        for j in i + 1..xs.len() {
            if xs[i] > xs[j] {
                inv += 1;
            }
        }
    }
    inv
}

proptest! {
    /// Merge-count inversions equal the brute-force count.
    #[test]
    fn inversions_match_brute(xs in proptest::collection::vec(0u32..100, 0..200)) {
        prop_assert_eq!(count_inversions(&xs), brute_inversions(&xs));
    }

    /// Inversions are bounded by n(n−1)/2 and invariant under adding a
    /// constant.
    #[test]
    fn inversion_bounds(xs in proptest::collection::vec(0u32..100, 0..150), c in 0u32..1000) {
        let inv = count_inversions(&xs);
        let n = xs.len() as u64;
        prop_assert!(inv <= n.saturating_mul(n.saturating_sub(1)) / 2);
        let shifted: Vec<u32> = xs.iter().map(|&x| x + c).collect();
        prop_assert_eq!(count_inversions(&shifted), inv);
    }

    /// Every generator that promises a permutation delivers one.
    #[test]
    fn generators_are_permutations(n in 1usize..500, seed in 0u64..100, k in 0usize..50) {
        for xs in [
            random_permutation(n, seed),
            k_swaps(n, k, seed),
            local_shuffle(n, (k % 17) + 1, seed),
            rotated(n, k),
        ] {
            let mut s = xs.clone();
            s.sort_unstable();
            prop_assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
        }
    }

    /// Local shuffle displacement stays inside the window.
    #[test]
    fn local_shuffle_displacement_bounded(n in 1usize..400, window in 2usize..32, seed in 0u64..50) {
        let xs = local_shuffle(n, window, seed);
        for (i, &v) in xs.iter().enumerate() {
            prop_assert!((v as usize).abs_diff(i) < window);
        }
    }

    /// Seeds matter: different seeds give different permutations for
    /// nontrivial sizes (overwhelmingly likely; fixed seeds keep this
    /// deterministic).
    #[test]
    fn seeds_differentiate(n in 32usize..200) {
        prop_assert_ne!(random_permutation(n, 1), random_permutation(n, 2));
    }
}

mod dataset_robustness {
    use super::*;
    use wcms_gpu_sim::fault::{FaultConfig, FaultInjector};
    use wcms_workloads::dataset::{read_keys, write_keys};

    proptest! {
        /// The decoder never panics: arbitrary bytes produce keys or a
        /// typed error, nothing else.
        #[test]
        fn decoder_never_panics(bytes in proptest::collection::vec(0u8..255, 0..512)) {
            let _ = read_keys(&bytes[..]);
        }

        /// Torn writes simulated by the fault injector are always
        /// detected: a dataset cut at *any* injector-chosen point fails
        /// to decode — zero silent corruption.
        #[test]
        fn injected_truncation_is_always_detected(
            keys in proptest::collection::vec(0u32..u32::MAX, 0..64),
            seed in 0u64..500,
            tag in 0u64..100,
        ) {
            let mut bytes = Vec::new();
            write_keys(&mut bytes, &keys).unwrap();
            let inj = FaultInjector::new(FaultConfig {
                seed,
                truncate_rate: 1.0,
                ..FaultConfig::default()
            });
            let cut = inj.truncate_dataset(bytes.len(), tag).unwrap();
            prop_assert!(cut < bytes.len());
            prop_assert!(read_keys(&bytes[..cut]).is_err(), "cut at {cut} decoded silently");
            // And the replay is deterministic.
            prop_assert_eq!(inj.truncate_dataset(bytes.len(), tag), Some(cut));
        }

        /// Flipping any single payload bit trips the checksum.
        #[test]
        fn payload_bitflips_are_always_detected(
            keys in proptest::collection::vec(0u32..u32::MAX, 1..64),
            byte_sel in 0u64..100_000,
            bit in 0u8..8,
        ) {
            let mut bytes = Vec::new();
            write_keys(&mut bytes, &keys).unwrap();
            let payload_start = 8 + 4 + 4 + 8;
            let payload_len = keys.len() * 4;
            let idx = payload_start + (byte_sel as usize % payload_len);
            bytes[idx] ^= 1 << bit;
            prop_assert!(read_keys(&bytes[..]).is_err(), "flipped bit decoded silently");
        }
    }
}
