//! Property-based tests of the workload generators and inversion counter.

use proptest::prelude::*;
use wcms_workloads::count_inversions;
use wcms_workloads::nearly::{k_swaps, local_shuffle};
use wcms_workloads::random::random_permutation;
use wcms_workloads::sorted::rotated;

fn brute_inversions(xs: &[u32]) -> u64 {
    let mut inv = 0;
    for i in 0..xs.len() {
        for j in i + 1..xs.len() {
            if xs[i] > xs[j] {
                inv += 1;
            }
        }
    }
    inv
}

proptest! {
    /// Merge-count inversions equal the brute-force count.
    #[test]
    fn inversions_match_brute(xs in proptest::collection::vec(0u32..100, 0..200)) {
        prop_assert_eq!(count_inversions(&xs), brute_inversions(&xs));
    }

    /// Inversions are bounded by n(n−1)/2 and invariant under adding a
    /// constant.
    #[test]
    fn inversion_bounds(xs in proptest::collection::vec(0u32..100, 0..150), c in 0u32..1000) {
        let inv = count_inversions(&xs);
        let n = xs.len() as u64;
        prop_assert!(inv <= n.saturating_mul(n.saturating_sub(1)) / 2);
        let shifted: Vec<u32> = xs.iter().map(|&x| x + c).collect();
        prop_assert_eq!(count_inversions(&shifted), inv);
    }

    /// Every generator that promises a permutation delivers one.
    #[test]
    fn generators_are_permutations(n in 1usize..500, seed in 0u64..100, k in 0usize..50) {
        for xs in [
            random_permutation(n, seed),
            k_swaps(n, k, seed),
            local_shuffle(n, (k % 17) + 1, seed),
            rotated(n, k),
        ] {
            let mut s = xs.clone();
            s.sort_unstable();
            prop_assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
        }
    }

    /// Local shuffle displacement stays inside the window.
    #[test]
    fn local_shuffle_displacement_bounded(n in 1usize..400, window in 2usize..32, seed in 0u64..50) {
        let xs = local_shuffle(n, window, seed);
        for (i, &v) in xs.iter().enumerate() {
            prop_assert!((v as usize).abs_diff(i) < window);
        }
    }

    /// Seeds matter: different seeds give different permutations for
    /// nontrivial sizes (overwhelmingly likely; fixed seeds keep this
    /// deterministic).
    #[test]
    fn seeds_differentiate(n in 32usize..200) {
        prop_assert_ne!(random_permutation(n, 1), random_permutation(n, 2));
    }
}
