//! Property-based tests of the workload generators and inversion counter.

use proptest::prelude::*;
use wcms_workloads::count_inversions;
use wcms_workloads::nearly::{k_swaps, local_shuffle};
use wcms_workloads::random::random_permutation;
use wcms_workloads::sorted::rotated;

fn brute_inversions(xs: &[u32]) -> u64 {
    let mut inv = 0;
    for i in 0..xs.len() {
        for j in i + 1..xs.len() {
            if xs[i] > xs[j] {
                inv += 1;
            }
        }
    }
    inv
}

proptest! {
    /// Merge-count inversions equal the brute-force count.
    #[test]
    fn inversions_match_brute(xs in proptest::collection::vec(0u32..100, 0..200)) {
        prop_assert_eq!(count_inversions(&xs), brute_inversions(&xs));
    }

    /// Inversions are bounded by n(n−1)/2 and invariant under adding a
    /// constant.
    #[test]
    fn inversion_bounds(xs in proptest::collection::vec(0u32..100, 0..150), c in 0u32..1000) {
        let inv = count_inversions(&xs);
        let n = xs.len() as u64;
        prop_assert!(inv <= n.saturating_mul(n.saturating_sub(1)) / 2);
        let shifted: Vec<u32> = xs.iter().map(|&x| x + c).collect();
        prop_assert_eq!(count_inversions(&shifted), inv);
    }

    /// Every generator that promises a permutation delivers one.
    #[test]
    fn generators_are_permutations(n in 1usize..500, seed in 0u64..100, k in 0usize..50) {
        for xs in [
            random_permutation(n, seed),
            k_swaps(n, k, seed),
            local_shuffle(n, (k % 17) + 1, seed),
            rotated(n, k),
        ] {
            let mut s = xs.clone();
            s.sort_unstable();
            prop_assert!(s.iter().enumerate().all(|(i, &v)| v == i as u32));
        }
    }

    /// Local shuffle displacement stays inside the window.
    #[test]
    fn local_shuffle_displacement_bounded(n in 1usize..400, window in 2usize..32, seed in 0u64..50) {
        let xs = local_shuffle(n, window, seed);
        for (i, &v) in xs.iter().enumerate() {
            prop_assert!((v as usize).abs_diff(i) < window);
        }
    }

    /// Seeds matter: different seeds give different permutations for
    /// nontrivial sizes (overwhelmingly likely; fixed seeds keep this
    /// deterministic).
    #[test]
    fn seeds_differentiate(n in 32usize..200) {
        prop_assert_ne!(random_permutation(n, 1), random_permutation(n, 2));
    }
}

mod dataset_robustness {
    use super::*;
    use wcms_gpu_sim::fault::{FaultConfig, FaultInjector};
    use wcms_workloads::dataset::{read_keys, write_keys};

    proptest! {
        /// The decoder never panics: arbitrary bytes produce keys or a
        /// typed error, nothing else.
        #[test]
        fn decoder_never_panics(bytes in proptest::collection::vec(0u8..255, 0..512)) {
            let _ = read_keys(&bytes[..]);
        }

        /// Torn writes simulated by the fault injector are always
        /// detected: a dataset cut at *any* injector-chosen point fails
        /// to decode — zero silent corruption.
        #[test]
        fn injected_truncation_is_always_detected(
            keys in proptest::collection::vec(0u32..u32::MAX, 0..64),
            seed in 0u64..500,
            tag in 0u64..100,
        ) {
            let mut bytes = Vec::new();
            write_keys(&mut bytes, &keys).unwrap();
            let inj = FaultInjector::new(FaultConfig {
                seed,
                truncate_rate: 1.0,
                ..FaultConfig::default()
            });
            let cut = inj.truncate_dataset(bytes.len(), tag).unwrap();
            prop_assert!(cut < bytes.len());
            prop_assert!(read_keys(&bytes[..cut]).is_err(), "cut at {cut} decoded silently");
            // And the replay is deterministic.
            prop_assert_eq!(inj.truncate_dataset(bytes.len(), tag), Some(cut));
        }

        /// Flipping any single payload bit trips the checksum.
        #[test]
        fn payload_bitflips_are_always_detected(
            keys in proptest::collection::vec(0u32..u32::MAX, 1..64),
            byte_sel in 0u64..100_000,
            bit in 0u8..8,
        ) {
            let mut bytes = Vec::new();
            write_keys(&mut bytes, &keys).unwrap();
            let payload_start = 8 + 4 + 4 + 8;
            let payload_len = keys.len() * 4;
            let idx = payload_start + (byte_sel as usize % payload_len);
            bytes[idx] ^= 1 << bit;
            prop_assert!(read_keys(&bytes[..]).is_err(), "flipped bit decoded silently");
        }
    }
}

/// Exhaustive hostile-byte drills for the version-3 chunked layout:
/// every possible truncation point (which covers every chunk boundary)
/// and every single-bit flip in the header + chunk-index region must
/// surface as a *typed* error — never a panic, never silent data.
mod dataset_v3_hostile {
    use super::*;
    use std::io::Cursor;
    use wcms_error::WcmsError;
    use wcms_workloads::dataset::{DatasetReader, DatasetWriter};

    fn v3_bytes(keys: &[u32], chunk: usize) -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        let mut w = DatasetWriter::new(&mut cur, keys.len() as u64, chunk).unwrap();
        w.write_keys(keys).unwrap();
        w.finish().unwrap();
        cur.into_inner()
    }

    fn drain(bytes: &[u8]) -> Result<Vec<u32>, WcmsError> {
        let mut r = DatasetReader::open(bytes)?;
        let mut out = Vec::new();
        while let Some(c) = r.next_chunk()? {
            out.extend(c);
        }
        Ok(out)
    }

    /// 10 keys in chunks of 4: 40-byte header+checksum, 3-entry chunk
    /// index + index checksum, 3 payload chunks. Small enough to drill
    /// every byte, structured enough to cross every boundary.
    const KEYS: [u32; 10] = [9, 3, 7, 1, 5, 0, 8, 2, 6, 4];
    const CHUNK: usize = 4;
    /// Header (40) + header checksum is inside those 40... header is
    /// 8+4+4+8+8 = 32 plus 8 checksum = 40; index = 3×8 + 8 = 32.
    const META: usize = 40 + 32;

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let bytes = v3_bytes(&KEYS, CHUNK);
        assert_eq!(bytes.len(), META + KEYS.len() * 4);
        assert_eq!(drain(&bytes).unwrap(), KEYS.to_vec());
        for cut in 0..bytes.len() {
            match drain(&bytes[..cut]) {
                Err(WcmsError::DatasetCorrupt { .. }) => {}
                Err(other) => panic!("cut at {cut}: wrong error type {other:?}"),
                Ok(_) => panic!("cut at {cut}: truncated file decoded silently"),
            }
        }
    }

    #[test]
    fn bitflip_at_every_header_and_index_byte_is_a_typed_error() {
        let bytes = v3_bytes(&KEYS, CHUNK);
        for at in 0..META {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[at] ^= 1 << bit;
                match drain(&evil) {
                    Err(WcmsError::DatasetCorrupt { .. }) => {}
                    Err(other) => panic!("flip {at}:{bit}: wrong error type {other:?}"),
                    Ok(_) => panic!("flip {at}:{bit}: corrupt metadata decoded silently"),
                }
            }
        }
    }

    proptest! {
        /// Codec round-trip over arbitrary keys and chunk geometry.
        #[test]
        fn v3_codec_round_trips(
            keys in proptest::collection::vec(0u32..u32::MAX, 0..600),
            chunk in 1usize..97,
        ) {
            let bytes = v3_bytes(&keys, chunk);
            let reader = DatasetReader::open(&bytes[..]).unwrap();
            prop_assert_eq!(reader.count(), keys.len() as u64);
            prop_assert_eq!(drain(&bytes).unwrap(), keys);
        }

        /// Arbitrary bytes never panic the v3 reader: typed error or
        /// (for a lucky valid prefix) data, nothing else.
        #[test]
        fn v3_reader_never_panics(bytes in proptest::collection::vec(0u8..255, 0..256)) {
            let _ = drain(&bytes);
        }
    }
}
