//! Golden-file and structural tests for the exporters, driven from
//! outside the crate the way `wcms-trace` and the bench harness use
//! them.

use std::sync::Arc;

use wcms_obs::journal::{bench_stats, parse_journal, validate};
use wcms_obs::{
    chrome_trace, event, fields, journal_jsonl, json, span, Clock, Field, Obs, Phase, Record,
    RingCollector,
};

/// Records built by hand with fixed tids: the live tid counter is
/// process-global, so goldens must not depend on which test ran first.
fn golden_records() -> Vec<Record> {
    vec![
        Record {
            ts_us: 0,
            tid: 1,
            phase: Phase::Begin,
            name: "sweep",
            fields: vec![Field::new("figure", "fig4"), Field::new("cells", 2u64)],
        },
        Record { ts_us: 3, tid: 2, phase: Phase::Begin, name: "cell", fields: vec![] },
        Record {
            ts_us: 5,
            tid: 2,
            phase: Phase::Event,
            name: "round-counters",
            fields: vec![
                Field::new("round", 1u64),
                Field::new("merge_steps", 42u64),
                Field::new("extra_cycles", 7u64),
            ],
        },
        Record { ts_us: 9, tid: 2, phase: Phase::End, name: "cell", fields: vec![] },
        Record { ts_us: 12, tid: 1, phase: Phase::End, name: "sweep", fields: vec![] },
    ]
}

/// The Chrome document for the fixture is byte-for-byte stable: this is
/// the contract `chrome://tracing` / Perfetto consumers load.
#[test]
fn chrome_trace_matches_golden_bytes() {
    let golden = concat!(
        "{\"traceEvents\":[\n",
        "{\"name\":\"sweep\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1,",
        "\"args\":{\"figure\":\"fig4\",\"cells\":2}},\n",
        "{\"name\":\"cell\",\"ph\":\"B\",\"ts\":3,\"pid\":1,\"tid\":2},\n",
        "{\"name\":\"round-counters\",\"ph\":\"i\",\"ts\":5,\"pid\":1,\"tid\":2,\"s\":\"t\",",
        "\"args\":{\"round\":1,\"merge_steps\":42,\"extra_cycles\":7}},\n",
        "{\"name\":\"cell\",\"ph\":\"E\",\"ts\":9,\"pid\":1,\"tid\":2},\n",
        "{\"name\":\"sweep\",\"ph\":\"E\",\"ts\":12,\"pid\":1,\"tid\":1}\n",
        "]}\n",
    );
    assert_eq!(chrome_trace(&golden_records()), golden);
}

/// The journal for the fixture is byte-for-byte stable too.
#[test]
fn journal_matches_golden_bytes() {
    let golden = concat!(
        "{\"ts\":0,\"tid\":1,\"ph\":\"B\",\"name\":\"sweep\",",
        "\"fields\":{\"figure\":\"fig4\",\"cells\":2}}\n",
        "{\"ts\":3,\"tid\":2,\"ph\":\"B\",\"name\":\"cell\"}\n",
        "{\"ts\":5,\"tid\":2,\"ph\":\"I\",\"name\":\"round-counters\",",
        "\"fields\":{\"round\":1,\"merge_steps\":42,\"extra_cycles\":7}}\n",
        "{\"ts\":9,\"tid\":2,\"ph\":\"E\",\"name\":\"cell\"}\n",
        "{\"ts\":12,\"tid\":1,\"ph\":\"E\",\"name\":\"sweep\"}\n",
    );
    assert_eq!(journal_jsonl(&golden_records(), 0), golden);
}

/// A live traced run under a virtual clock produces a Chrome document
/// that is well-formed JSON with balanced B/E pairs and per-thread
/// monotonic timestamps.
#[test]
fn live_chrome_trace_is_well_formed() {
    let ring = Arc::new(RingCollector::new());
    let obs = Obs::with_recorder(ring.clone(), Clock::virtual_us(3));
    {
        let _sweep = span!(obs, "sweep", cells => 2u64);
        for cell in ["w32 b64 E3 n1024", "w32 b64 E5 n1024"] {
            let _cell = span!(obs, "cell", cell => cell);
            event!(obs, "round-counters", round => 1u64, merge_steps => 8u64);
        }
    }
    let (records, dropped) = ring.drain();
    assert_eq!(dropped, 0);

    let doc = json::parse(&chrome_trace(&records)).expect("chrome document parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), records.len());

    // Balanced, name-matched B/E with monotonic ts (single tid here).
    let mut stack: Vec<&str> = Vec::new();
    let mut last_ts = 0u64;
    for ev in events {
        let ts = ev.get("ts").unwrap().as_u64().unwrap();
        assert!(ts >= last_ts, "timestamps must not go backwards");
        last_ts = ts;
        let name = ev.get("name").unwrap().as_str().unwrap();
        match ev.get("ph").unwrap().as_str().unwrap() {
            "B" => stack.push(name),
            "E" => assert_eq!(stack.pop(), Some(name), "E must close the innermost B"),
            "i" => assert_eq!(ev.get("s").unwrap().as_str(), Some("t")),
            other => panic!("unexpected ph {other:?}"),
        }
    }
    assert!(stack.is_empty(), "all spans closed, {stack:?} left open");
}

/// Journal → parse → validate → bench-stats, end to end on live data.
#[test]
fn live_journal_validates_and_yields_bench_stats() {
    let ring = Arc::new(RingCollector::new());
    let obs = Obs::with_recorder(ring.clone(), Clock::virtual_us(5));
    {
        let _sweep = span!(obs, "sweep", figure => "fig4");
        for _ in 0..3 {
            let _cell = span!(obs, "cell");
            event!(obs, "round-counters", merge_steps => 10u64, extra_cycles => 2u64);
        }
    }
    let (records, dropped) = ring.drain();
    let journal = parse_journal(&journal_jsonl(&records, dropped)).unwrap();
    let report = validate(&journal);
    assert!(report.is_ok(), "{:?}", report.errors);
    assert_eq!(report.matched_spans, 4);

    let stats = bench_stats(&journal);
    assert_eq!(stats.cells, 3);
    assert_eq!(stats.total_merge_steps, 30);
    assert_eq!(stats.total_conflict_extra_cycles, 6);
    assert_eq!(stats.rounds, 3);
    assert!(stats.wall_s > 0.0);
    assert!(stats.cell_latency_median_s > 0.0);
}

/// A deliberately overflowed ring exports a journal that fails
/// validation — truncation is detectable, not silent.
#[test]
fn overflowed_ring_fails_validation() {
    let ring = Arc::new(RingCollector::with_capacity(4));
    let obs = Obs::with_recorder(ring.clone(), Clock::virtual_us(1));
    for _ in 0..10 {
        event!(obs, "tick");
    }
    let (records, dropped) = ring.drain();
    assert!(dropped > 0);
    let journal = parse_journal(&journal_jsonl(&records, dropped)).unwrap();
    let report = validate(&journal);
    assert!(!report.is_ok());
    assert!(report.errors.iter().any(|e| e.contains("truncated")), "{:?}", report.errors);
}

/// Prometheus text from a populated registry has the pinned shape the
/// `--metrics` flag documents.
#[test]
fn prometheus_export_has_documented_shape() {
    let obs = Obs::enabled(Clock::virtual_us(1));
    obs.metrics.counter("sort_merge_steps_total").add(42);
    obs.metrics.gauge("sweep_jobs").set(4.0);
    obs.metrics.histogram("cell_latency_seconds", &wcms_obs::LATENCY_BUCKETS_S).observe(0.002);
    let text = obs.metrics.prometheus_text();
    assert!(text.contains("# TYPE sort_merge_steps_total counter\nsort_merge_steps_total 42\n"));
    assert!(text.contains("# TYPE sweep_jobs gauge\nsweep_jobs 4\n"));
    assert!(text.contains("# TYPE cell_latency_seconds histogram\n"));
    assert!(text.contains("cell_latency_seconds_bucket{le=\"0.005\"} 1\n"));
    assert!(text.contains("cell_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
    assert!(text.contains("cell_latency_seconds_count 1\n"));

    let _ = fields![]; // the empty form is part of the macro contract
}
