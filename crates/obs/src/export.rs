//! Exporters: records → JSONL journal, records → Chrome trace-event
//! JSON, metrics → Prometheus text (the latter lives on
//! [`crate::metrics::MetricsRegistry`]).
//!
//! The journal is the source of truth — one JSON object per line,
//! append-friendly, greppable, and parseable back by `wcms-trace`. The
//! Chrome document is a pure projection of the same records into the
//! `chrome://tracing` / Perfetto "trace event format".

use std::fmt::Write as _;

use crate::json::escape_into;
use crate::recorder::{Field, FieldValue, Phase, Record};

fn write_field_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) => {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                // JSON has no NaN/Inf; stringify so the record survives.
                escape_into(out, &v.to_string());
            }
        }
        FieldValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::Str(v) => escape_into(out, v),
    }
}

fn write_fields_object(out: &mut String, fields: &[Field]) {
    out.push('{');
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, f.key);
        out.push(':');
        write_field_value(out, &f.value);
    }
    out.push('}');
}

fn write_journal_line(out: &mut String, record: &Record) {
    let _ = write!(
        out,
        r#"{{"ts":{},"tid":{},"ph":"{}","name":"#,
        record.ts_us,
        record.tid,
        record.phase.code()
    );
    escape_into(out, record.name);
    if !record.fields.is_empty() {
        out.push_str(",\"fields\":");
        write_fields_object(out, &record.fields);
    }
    out.push_str("}\n");
}

/// Render records as a JSONL journal. If `dropped > 0` a trailing
/// `Meta` line records the loss, so `wcms-trace validate` can refuse a
/// truncated journal instead of trusting it.
#[must_use]
pub fn journal_jsonl(records: &[Record], dropped: u64) -> String {
    let mut out = String::with_capacity(records.len() * 96 + 64);
    for record in records {
        write_journal_line(&mut out, record);
    }
    if dropped > 0 {
        let ts = records.last().map_or(0, |r| r.ts_us);
        let meta = Record {
            ts_us: ts,
            tid: 0,
            phase: Phase::Meta,
            name: "dropped-records",
            fields: vec![Field::new("dropped", dropped)],
        };
        write_journal_line(&mut out, &meta);
    }
    out
}

/// Render records as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` or
/// <https://ui.perfetto.dev>. Instant events get scope `"t"` (thread);
/// all events share `pid` 1 since this is a single-process tool.
#[must_use]
pub fn chrome_trace(records: &[Record]) -> String {
    let mut out = String::with_capacity(records.len() * 112 + 32);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for record in records {
        let ph = match record.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Event => "i",
            Phase::Meta => "M",
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":");
        escape_into(&mut out, record.name);
        let _ = write!(
            out,
            ",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            record.ts_us, record.tid
        );
        if record.phase == Phase::Event {
            out.push_str(",\"s\":\"t\"");
        }
        if !record.fields.is_empty() {
            out.push_str(",\"args\":");
            write_fields_object(&mut out, &record.fields);
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn sample() -> Vec<Record> {
        vec![
            Record {
                ts_us: 10,
                tid: 1,
                phase: Phase::Begin,
                name: "sweep",
                fields: vec![Field::new("cells", 4u64)],
            },
            Record {
                ts_us: 20,
                tid: 1,
                phase: Phase::Event,
                name: "note",
                fields: vec![Field::new("why", "x\"y"), Field::new("ok", true)],
            },
            Record { ts_us: 30, tid: 1, phase: Phase::End, name: "sweep", fields: vec![] },
        ]
    }

    #[test]
    fn journal_lines_are_valid_json() {
        let text = journal_jsonl(&sample(), 0);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let v = parse(lines[1]).unwrap();
        assert_eq!(v.get("ph").unwrap().as_str(), Some("I"));
        assert_eq!(v.get("fields").unwrap().get("why").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("fields").unwrap().get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn dropped_records_leave_a_meta_marker() {
        let text = journal_jsonl(&sample(), 7);
        let last = text.lines().last().unwrap();
        let v = parse(last).unwrap();
        assert_eq!(v.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("dropped-records"));
        assert_eq!(v.get("fields").unwrap().get("dropped").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn chrome_document_is_one_json_object() {
        let text = chrome_trace(&sample());
        let v = parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(events[1].get("s").unwrap().as_str(), Some("t"));
        assert_eq!(events[2].get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(events[0].get("args").unwrap().get("cells").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn non_finite_floats_degrade_to_strings() {
        let records = vec![Record {
            ts_us: 1,
            tid: 1,
            phase: Phase::Event,
            name: "odd",
            fields: vec![Field::new("r", f64::NAN)],
        }];
        let text = journal_jsonl(&records, 0);
        let v = parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(v.get("fields").unwrap().get("r").unwrap().as_str(), Some("NaN"));
    }
}
