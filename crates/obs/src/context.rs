//! Propagated trace context: `TraceId`/`SpanId` parent links that
//! follow a job across every process boundary the workspace has.
//!
//! A fleet run fans one admitted job out into supervisor cells executed
//! by whichever shard worker steals them; without a propagated context
//! no journal can say which request caused which cell. A
//! [`TraceContext`] names the current span (`trace` + `span`) and its
//! causal parent, and is *derived, never sampled*: ids come from the
//! splitmix64 finalizer over a seed and a label stream — the same
//! deterministic idiom as the shard layer's retry jitter — so replays
//! produce identical ids and no protocol path ever reads a clock or an
//! entropy source.
//!
//! The wire form is fixed-width (`<16 hex>/<16 hex>`), which lets
//! [`TraceContext::decode`] reject hostile or oversized inputs on a
//! length check *before* touching the bytes — the same
//! validate-before-allocate posture as the serve frame reader.

use crate::recorder::Field;

/// Default seed for fresh roots when a caller has no sweep seed of its
/// own (the obs layer's seeded RNG domain).
pub const TRACE_SEED: u64 = 0x0B5E_55ED_7124_CE00;

/// Byte length of the wire encoding: 16 hex + `/` + 16 hex.
pub const TRACE_WIRE_LEN: usize = 33;

/// A 64-bit trace identifier shared by every span of one causal tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// A 64-bit span identifier, unique within its trace by construction
/// (derived from the parent chain and the span's label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// The current position in a causal tree: which trace, which span, and
/// which span caused it (`None` for a root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace every descendant span shares.
    pub trace: TraceId,
    /// This span's own id.
    pub span: SpanId,
    /// The causal parent's span id (`None` for a root span).
    pub parent: Option<SpanId>,
}

/// The splitmix64 finalizer: the workspace's sanctioned deterministic
/// bit mixer (shared shape with the shard layer's retry jitter).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// FNV-1a over a label, so distinct streams land on distinct ids.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Ids are never zero: zero is the traditional "absent" sentinel in
/// trace propagation formats, and keeping it unrepresentable means a
/// zeroed buffer can never masquerade as a valid context.
fn nonzero(x: u64) -> u64 {
    if x == 0 {
        1
    } else {
        x
    }
}

impl TraceContext {
    /// A fresh root: trace and span derived from `(seed, stream)`, no
    /// parent. Pure — the same seed and stream always name the same
    /// root, so a replayed run reproduces its trace ids exactly.
    #[must_use]
    pub fn root(seed: u64, stream: &str) -> Self {
        let trace = nonzero(mix(seed ^ fnv1a64(stream.as_bytes())));
        let span = nonzero(mix(trace ^ 0x9E37_79B9_7F4A_7C15));
        TraceContext { trace: TraceId(trace), span: SpanId(span), parent: None }
    }

    /// A child span of this context labelled `label`: same trace, a new
    /// span id derived from the parent chain and the label, parent set
    /// to this span. Distinct labels (or distinct parents) give
    /// distinct span ids.
    #[must_use]
    pub fn child(&self, label: &str) -> Self {
        let span =
            nonzero(mix(self.trace.0 ^ self.span.0.rotate_left(17) ^ fnv1a64(label.as_bytes())));
        TraceContext { trace: self.trace, span: SpanId(span), parent: Some(self.span) }
    }

    /// The fixed-width wire encoding `"<trace:016x>/<span:016x>"`. The
    /// parent is deliberately not on the wire: a receiver adopting this
    /// context as its root identity *is* the parent link.
    #[must_use]
    pub fn encode(&self) -> String {
        format!("{:016x}/{:016x}", self.trace.0, self.span.0)
    }

    /// Decode the wire form. The length gate runs before anything else,
    /// so an oversized (hostile) input is rejected without allocating
    /// or scanning it.
    ///
    /// # Errors
    ///
    /// A description for wrong length, a missing separator, non-hex
    /// digits, or a zero id.
    pub fn decode(s: &str) -> Result<Self, String> {
        if s.len() != TRACE_WIRE_LEN {
            return Err(format!(
                "trace context must be exactly {TRACE_WIRE_LEN} bytes (<16 hex>/<16 hex>), \
                 got {} bytes",
                s.len()
            ));
        }
        let bytes = s.as_bytes();
        if bytes[16] != b'/' {
            return Err("trace context separator must be '/' at byte 16".to_string());
        }
        let parse = |part: &str, what: &str| -> Result<u64, String> {
            let v = u64::from_str_radix(part, 16)
                .map_err(|_| format!("trace context {what} is not 16 hex digits: {part:?}"))?;
            if v == 0 {
                return Err(format!("trace context {what} must be nonzero"));
            }
            Ok(v)
        };
        let trace = parse(&s[..16], "trace id")?;
        let span = parse(&s[17..], "span id")?;
        Ok(TraceContext { trace: TraceId(trace), span: SpanId(span), parent: None })
    }

    /// Hex form of one id, as stamped into record fields and lease
    /// files.
    #[must_use]
    pub fn hex(id: u64) -> String {
        format!("{id:016x}")
    }

    /// Append this context's `trace`/`span`(/`parent`) fields to a span
    /// or event's field list — the stamping format the join engine and
    /// causality validator read back.
    pub fn stamp(&self, fields: &mut Vec<Field>) {
        fields.push(Field::new("trace", Self::hex(self.trace.0)));
        fields.push(Field::new("span", Self::hex(self.span.0)));
        if let Some(parent) = self.parent {
            fields.push(Field::new("parent", Self::hex(parent.0)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_deterministic_and_stream_separated() {
        let a = TraceContext::root(7, "serve/job-1");
        let b = TraceContext::root(7, "serve/job-1");
        assert_eq!(a, b, "same seed+stream must replay the same root");
        assert!(a.parent.is_none());
        let c = TraceContext::root(7, "serve/job-2");
        assert_ne!(a.trace, c.trace, "distinct streams get distinct traces");
        let d = TraceContext::root(8, "serve/job-1");
        assert_ne!(a.trace, d.trace, "distinct seeds get distinct traces");
    }

    #[test]
    fn children_share_the_trace_and_link_to_their_parent() {
        let root = TraceContext::root(1, "sweep");
        let cell = root.child("cell/w32 b64 E3 n4096");
        assert_eq!(cell.trace, root.trace);
        assert_eq!(cell.parent, Some(root.span));
        assert_ne!(cell.span, root.span);
        // Distinct labels and distinct parents both separate span ids.
        assert_ne!(cell.span, root.child("cell/other").span);
        let other_parent = TraceContext::root(1, "other").child("cell/w32 b64 E3 n4096");
        assert_ne!(cell.span, other_parent.span);
    }

    /// Property sweep: encode/decode round-trips over a seeded id walk,
    /// and every id stays nonzero.
    #[test]
    fn codec_round_trips_over_a_seeded_walk() {
        let mut ctx = TraceContext::root(0xC0FFEE, "walk");
        for i in 0..500 {
            assert_ne!(ctx.trace.0, 0);
            assert_ne!(ctx.span.0, 0);
            let decoded = TraceContext::decode(&ctx.encode()).unwrap();
            assert_eq!(decoded.trace, ctx.trace);
            assert_eq!(decoded.span, ctx.span);
            assert_eq!(decoded.parent, None, "the wire deliberately drops the parent");
            ctx = ctx.child(&format!("step-{i}"));
        }
    }

    #[test]
    fn hostile_and_oversized_inputs_are_rejected_on_the_length_gate() {
        // Oversized: rejected by length alone, before any scan.
        let huge = "f".repeat(1 << 20);
        assert!(TraceContext::decode(&huge).unwrap_err().contains("33 bytes"));
        for bad in [
            "",
            "0123456789abcdef",                         // too short
            "0123456789abcdef-0123456789abcdef",        // wrong separator
            "0123456789abcdeg/0123456789abcdef",        // non-hex
            "0123456789abcdef/0123456789abcdeg",        // non-hex span
            "0000000000000000/0123456789abcdef",        // zero trace id
            "0123456789abcdef/0000000000000000",        // zero span id
            " 123456789abcdef/0123456789abcdef",        // whitespace digit
            "0x23456789abcdef/0123456789abcdef",        // radix prefix
            "0123456789abcdef/0123456789abcde\u{00e9}", // multibyte tail
        ] {
            assert!(TraceContext::decode(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn stamp_writes_the_join_engine_field_triplet() {
        let root = TraceContext::root(1, "r");
        let mut fields = Vec::new();
        root.stamp(&mut fields);
        assert_eq!(fields.len(), 2, "a root has no parent field: {fields:?}");
        assert_eq!(fields[0].key, "trace");
        assert_eq!(fields[1].key, "span");

        let child = root.child("c");
        let mut fields = Vec::new();
        child.stamp(&mut fields);
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[2].key, "parent");
    }

    #[test]
    fn encode_is_fixed_width() {
        let ctx = TraceContext::root(1, "x");
        assert_eq!(ctx.encode().len(), TRACE_WIRE_LEN);
        assert_eq!(TraceContext::decode(&ctx.encode()).unwrap().trace, ctx.trace);
    }
}
