//! `wcms-trace`: inspect, validate, convert, and benchmark trace
//! journals written by `--trace`.
//!
//! ```text
//! wcms-trace validate <journal>...          structural check (exit 1 on failure)
//! wcms-trace summary  <journal>             per-name span/event/time table
//! wcms-trace chrome   <journal> [-o FILE]   convert to Chrome trace-event JSON
//! wcms-trace join     [--validate] <journal>... [-o FILE]  merge N per-process journals
//! wcms-trace diff     <a> <b>               compare span/event counts (exit 1 if they differ)
//! wcms-trace bench    [label=]<journal>...  [-o FILE]   derive BENCH_obs.json statistics
//! wcms-trace root     <seed> <stream>       print the deterministic root trace context
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use wcms_obs::journal::{
    bench_stats, chrome_from_journal, diff, join_journals, parse_journal, summarize, validate,
    Journal,
};
use wcms_obs::json::escape_into;
use wcms_obs::metrics::fmt_f64;
use wcms_obs::TraceContext;

const USAGE: &str = "usage: wcms-trace <validate|summary|chrome|join|diff|bench|root> [args]
  validate <journal>...            exit 1 unless every journal is structurally valid
  summary  <journal>               print a per-name span/event/time table
  chrome   <journal> [-o FILE]     convert to Chrome trace-event JSON (stdout by default)
  join     [--validate] <journal>... [-o FILE]
                                   merge per-process journals into one causally-checked
                                   Chrome trace (clock offsets from journal epoch records);
                                   --validate exits 1 on orphan/cycle/non-monotonic spans
  diff     <a> <b>                 compare span/event counts; exit 1 if they differ
  bench    [label=]<journal>... [-o FILE]  emit perf-baseline JSON (BENCH_obs.json shape)
  root     <seed> <stream>         print the deterministic root context for (seed, stream)";

fn load(path: &str) -> Result<Journal, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    parse_journal(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = args.split_first().ok_or_else(|| USAGE.to_string())?;
    match cmd.as_str() {
        "validate" => cmd_validate(rest),
        "summary" => cmd_summary(rest),
        "chrome" => cmd_chrome(rest),
        "join" => cmd_join(rest),
        "diff" => cmd_diff(rest),
        "bench" => cmd_bench(rest),
        "root" => cmd_root(rest),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

fn cmd_validate(paths: &[String]) -> Result<(), String> {
    if paths.is_empty() {
        return Err(format!("validate: no journals given\n{USAGE}"));
    }
    let mut failures = 0usize;
    for path in paths {
        let journal = load(path)?;
        let report = validate(&journal);
        if report.dropped > 0 {
            // Reported by count (the emitter's obs_dropped_spans_total),
            // not only as a pass/fail verdict.
            println!("{path}: dropped records: {}", report.dropped);
        }
        if report.is_ok() {
            println!(
                "{path}: ok ({} records, {} spans matched)",
                report.records, report.matched_spans
            );
        } else {
            failures += 1;
            println!("{path}: INVALID ({} records)", report.records);
            for err in &report.errors {
                println!("  {err}");
            }
        }
    }
    if failures > 0 {
        Err(format!("{failures} of {} journals failed validation", paths.len()))
    } else {
        Ok(())
    }
}

fn cmd_summary(paths: &[String]) -> Result<(), String> {
    let [path] = paths else {
        return Err(format!("summary: expected exactly one journal\n{USAGE}"));
    };
    print!("{}", summarize(&load(path)?));
    Ok(())
}

/// Split `[-o FILE]` off an argument list.
fn split_output(args: &[String]) -> Result<(Vec<String>, Option<String>), String> {
    let mut inputs = Vec::new();
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-o" || a == "--output" {
            out = Some(it.next().ok_or_else(|| format!("{a}: missing file operand"))?.to_string());
        } else {
            inputs.push(a.clone());
        }
    }
    Ok((inputs, out))
}

fn emit(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        None => {
            print!("{text}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("{path}: cannot write: {e}"))?;
            eprintln!("# wrote {path}");
            Ok(())
        }
    }
}

fn cmd_chrome(args: &[String]) -> Result<(), String> {
    let (inputs, out) = split_output(args)?;
    let [path] = inputs.as_slice() else {
        return Err(format!("chrome: expected exactly one journal\n{USAGE}"));
    };
    emit(&chrome_from_journal(&load(path)?), out.as_deref())
}

fn cmd_join(args: &[String]) -> Result<(), String> {
    let (inputs, out) = split_output(args)?;
    let (flags, paths): (Vec<&String>, Vec<&String>) =
        inputs.iter().partition(|a| a.as_str() == "--validate");
    let strict = !flags.is_empty();
    if paths.is_empty() {
        return Err(format!("join: no journals given\n{USAGE}"));
    }
    let mut journals = Vec::with_capacity(paths.len());
    for path in &paths {
        journals.push(((*path).clone(), load(path)?));
    }
    let (chrome, report) = join_journals(&journals)?;
    eprintln!(
        "# joined {} journals: {} records, {} spans ({} roots), {} dropped",
        report.files, report.records, report.spans, report.roots, report.dropped
    );
    for err in report.errors() {
        eprintln!("# {err}");
    }
    emit(&chrome, out.as_deref())?;
    if strict && !report.is_ok() {
        return Err(format!(
            "join: causality validation failed ({} orphans, {} cycles, {} non-monotonic)",
            report.orphans.len(),
            report.cycles.len(),
            report.non_monotonic.len()
        ));
    }
    Ok(())
}

fn cmd_root(args: &[String]) -> Result<(), String> {
    let [seed, stream] = args else {
        return Err(format!("root: expected <seed> <stream>\n{USAGE}"));
    };
    let seed = match seed.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => seed.parse(),
    }
    .map_err(|e| format!("root: bad seed '{seed}': {e}"))?;
    println!("{}", TraceContext::root(seed, stream).encode());
    Ok(())
}

fn cmd_diff(paths: &[String]) -> Result<(), String> {
    let [a, b] = paths else {
        return Err(format!("diff: expected exactly two journals\n{USAGE}"));
    };
    let lines = diff(&load(a)?, &load(b)?);
    if lines.is_empty() {
        println!("journals agree: same span/event counts per name");
        Ok(())
    } else {
        for line in &lines {
            println!("{line}");
        }
        Err(format!("{} names differ between {a} and {b}", lines.len()))
    }
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let (inputs, out) = split_output(args)?;
    if inputs.is_empty() {
        return Err(format!("bench: no journals given\n{USAGE}"));
    }
    let mut doc = String::from("{\n  \"entries\": [");
    for (i, input) in inputs.iter().enumerate() {
        // `label=path` attaches a name (e.g. backend + jobs count);
        // otherwise the path is the label.
        let (label, path) = match input.split_once('=') {
            Some((l, p)) if !l.is_empty() && !l.contains('/') => (l, p),
            _ => (input.as_str(), input.as_str()),
        };
        let stats = bench_stats(&load(path)?);
        if i > 0 {
            doc.push(',');
        }
        doc.push_str("\n    {\"label\":");
        escape_into(&mut doc, label);
        let _ = write!(
            doc,
            ",\"cells\":{},\"cell_latency_median_s\":{},\"cell_latency_p95_s\":{},\
             \"total_merge_steps\":{},\"total_conflict_extra_cycles\":{},\"rounds\":{},\
             \"conflicts_per_round\":{},\"wall_s\":{}}}",
            stats.cells,
            fmt_f64(stats.cell_latency_median_s),
            fmt_f64(stats.cell_latency_p95_s),
            stats.total_merge_steps,
            stats.total_conflict_extra_cycles,
            stats.rounds,
            fmt_f64(stats.conflicts_per_round()),
            fmt_f64(stats.wall_s),
        );
    }
    doc.push_str("\n  ]\n}\n");
    emit(&doc, out.as_deref())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("wcms-trace: {msg}");
            ExitCode::FAILURE
        }
    }
}
