//! The record model and the [`Recorder`] sink trait.
//!
//! A [`Record`] is one timestamped observation: a span boundary
//! (`Begin`/`End`, mirroring the Chrome trace-event `B`/`E` phases so
//! export is a projection, not a translation), an instant [`Phase::Event`],
//! or a [`Phase::Meta`] record the exporter itself emits (e.g. the
//! ring's drop counter). Records carry typed key=value [`Field`]s, not
//! preformatted strings, so exporters can render them losslessly.
//!
//! The sink is a trait so the disabled path costs nothing: when no
//! recorder is installed the macros never build their field vectors,
//! and [`NullRecorder`] (for tests that want a sink-shaped hole)
//! compiles to an empty inline body.

use std::sync::atomic::{AtomicU32, Ordering};

/// What kind of observation a [`Record`] is. The `char` values match
/// the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// An instant event (`ph: "I"`).
    Event,
    /// Exporter metadata, e.g. dropped-record counts (`ph: "M"`).
    Meta,
}

impl Phase {
    /// The single-character journal/Chrome encoding.
    #[must_use]
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Event => 'I',
            Phase::Meta => 'M',
        }
    }

    /// Parse the single-character encoding back.
    #[must_use]
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'B' => Some(Phase::Begin),
            'E' => Some(Phase::End),
            'I' => Some(Phase::Event),
            'M' => Some(Phase::Meta),
            _ => None,
        }
    }
}

/// A typed field value. Integers stay integers all the way into the
/// exported JSON (no float round-trip for counters).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, sizes, seeds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (latencies, ratios).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (cell names, backend names, reasons).
    Str(String),
}

macro_rules! impl_into_field_value {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        })*
    };
}
impl_into_field_value!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One `key = value` attachment of a record. Keys are `'static` by
/// construction (the `span!`/`event!` macros stringify identifiers), so
/// field cardinality is bounded by the source code, not the data.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub key: &'static str,
    /// Typed value.
    pub value: FieldValue,
}

impl Field {
    /// Build a field from anything convertible to a [`FieldValue`].
    pub fn new(key: &'static str, value: impl Into<FieldValue>) -> Self {
        Field { key, value: value.into() }
    }
}

/// One timestamped observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Timestamp in microseconds from the emitting [`crate::Obs`]'s clock.
    pub ts_us: u64,
    /// Stable small id of the emitting thread (see [`current_tid`]).
    pub tid: u32,
    /// Span boundary, instant event, or exporter metadata.
    pub phase: Phase,
    /// Record name — a source-code literal, so name cardinality is
    /// bounded (dynamic data goes in fields).
    pub name: &'static str,
    /// Typed attachments.
    pub fields: Vec<Field>,
}

/// A sink for records. Implementations must be cheap and non-blocking
/// enough to sit inside merge loops; the shipped collector
/// ([`crate::ring::RingCollector`]) is a bounded mutex-guarded ring.
pub trait Recorder: Send + Sync {
    /// Accept one record.
    fn record(&self, record: Record);
}

/// The sink that drops everything — the explicit no-op [`Recorder`].
/// (The *default* disabled path is cheaper still: no recorder installed
/// means the record is never even constructed.)
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn record(&self, _record: Record) {}
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small process-unique id for the calling thread, assigned on first
/// use. Unlike `std::thread::ThreadId` it is a plain `u32` that
/// serializes naturally into journals and Chrome's `tid` field.
/// Assignment order depends on thread creation order, so journal
/// validation treats tids as opaque labels, never as expected values.
#[must_use]
pub fn current_tid() -> u32 {
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_codes_round_trip() {
        for ph in [Phase::Begin, Phase::End, Phase::Event, Phase::Meta] {
            assert_eq!(Phase::from_code(ph.code()), Some(ph));
        }
        assert_eq!(Phase::from_code('x'), None);
    }

    #[test]
    fn field_values_convert_from_primitives() {
        assert_eq!(Field::new("n", 5usize).value, FieldValue::U64(5));
        assert_eq!(Field::new("d", -2i64).value, FieldValue::I64(-2));
        assert_eq!(Field::new("r", 0.5f64).value, FieldValue::F64(0.5));
        assert_eq!(Field::new("ok", true).value, FieldValue::Bool(true));
        assert_eq!(Field::new("s", "x").value, FieldValue::Str("x".into()));
    }

    #[test]
    fn tids_are_stable_within_a_thread_and_distinct_across() {
        let mine = current_tid();
        assert_eq!(current_tid(), mine);
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(mine, other);
    }
}
