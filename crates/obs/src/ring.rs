//! The bounded in-memory collector behind `--trace`.
//!
//! A sweep can emit hundreds of thousands of records; an unbounded
//! buffer would make the observability layer the thing that OOMs a
//! long run. [`RingCollector`] keeps the most recent `capacity`
//! records and counts what it dropped — the journal exporter then
//! appends a `Meta` record with the drop count, so a truncated journal
//! is *detectably* truncated (`wcms-trace validate` fails it) instead
//! of silently missing its prefix.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::recorder::{Record, Recorder};

/// Default capacity: enough for a full-grid figure sweep with per-round
/// events, small enough to never matter (~tens of MB worst case).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// A thread-safe bounded ring of [`Record`]s (drop-oldest).
#[derive(Debug)]
pub struct RingCollector {
    capacity: usize,
    inner: Mutex<RingInner>,
}

#[derive(Debug, Default)]
struct RingInner {
    records: VecDeque<Record>,
    dropped: u64,
}

impl RingCollector {
    /// A ring holding at most `capacity` records (clamped to ≥ 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        RingCollector { capacity: capacity.max(1), inner: Mutex::new(RingInner::default()) }
    }

    /// A ring with [`DEFAULT_RING_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Records currently held (records, dropped-count), clearing the
    /// ring. Arrival order is preserved.
    pub fn drain(&self) -> (Vec<Record>, u64) {
        let mut inner = self.inner.lock().expect("ring lock poisoned");
        let records = std::mem::take(&mut inner.records).into();
        let dropped = std::mem::take(&mut inner.dropped);
        (records, dropped)
    }

    /// Copy of the current contents without clearing.
    pub fn snapshot(&self) -> (Vec<Record>, u64) {
        let inner = self.inner.lock().expect("ring lock poisoned");
        (inner.records.iter().cloned().collect(), inner.dropped)
    }

    /// Number of records currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring lock poisoned").records.len()
    }

    /// True when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for RingCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for RingCollector {
    fn record(&self, record: Record) {
        let mut inner = self.inner.lock().expect("ring lock poisoned");
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Phase;

    fn rec(ts: u64) -> Record {
        Record { ts_us: ts, tid: 1, phase: Phase::Event, name: "t", fields: Vec::new() }
    }

    #[test]
    fn keeps_arrival_order() {
        let ring = RingCollector::with_capacity(10);
        for ts in 0..5 {
            ring.record(rec(ts));
        }
        let (records, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        assert_eq!(records.iter().map(|r| r.ts_us).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(ring.is_empty(), "drain clears");
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = RingCollector::with_capacity(3);
        for ts in 0..7 {
            ring.record(rec(ts));
        }
        let (records, dropped) = ring.snapshot();
        assert_eq!(dropped, 4);
        assert_eq!(records.iter().map(|r| r.ts_us).collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn concurrent_recording_loses_nothing_under_capacity() {
        let ring = RingCollector::with_capacity(10_000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for ts in 0..1000 {
                        ring.record(rec(ts));
                    }
                });
            }
        });
        let (records, dropped) = ring.drain();
        assert_eq!(records.len(), 4000);
        assert_eq!(dropped, 0);
    }
}
