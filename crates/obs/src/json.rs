//! A minimal hand-rolled JSON reader (and string escaper) for the
//! journal tooling.
//!
//! The workspace is offline — no serde_json — and already hand-rolls
//! its checkpoint codec; this is the same move for `wcms-trace`, which
//! must *parse* journals back. The value model is deliberately small:
//! numbers are `f64` (journal timestamps are microseconds, far inside
//! the 2^53 exact-integer range) and objects preserve insertion order.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match), else `None`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as an exact `u64` if this is a non-negative integral
    /// number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// A `String` naming the byte offset and what was expected there.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("byte {pos}: trailing characters after the document"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err(format!("byte {pos}: unexpected end of input")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("byte {pos}: expected '{lit}'"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if let Some(b'-') = bytes.get(*pos) {
        *pos += 1;
    }
    while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = bytes.get(*pos) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8".to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("byte {start}: '{text}' is not a number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("byte {pos}: unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("byte {pos}: truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("byte {pos}: bad \\u escape '{hex}'"))?;
                        // Surrogates (journals never emit them) degrade
                        // to the replacement character rather than fail.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("byte {pos}: bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("byte {pos}: invalid UTF-8"))?;
                let c = rest.chars().next().ok_or_else(|| format!("byte {pos}: empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => return Err(format!("byte {pos}: expected ',' or ']', got {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("byte {pos}: expected a string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("byte {pos}: expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            other => return Err(format!("byte {pos}: expected ',' or '}}', got {other:?}")),
        }
    }
}

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::Str("a\nb".into()));
        assert_eq!(parse(r#""é""#).unwrap(), Value::Str("é".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match v {
            Value::Obj(members) => {
                assert_eq!(members[0].0, "z");
                assert_eq!(members[1].0, "a");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", r#"{"a" 1}"#, "tru", "1 2", r#""unterminated"#] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let hostile = "a\"b\\c\nd\te\u{1}f é";
        let mut doc = String::new();
        escape_into(&mut doc, hostile);
        assert_eq!(parse(&doc).unwrap(), Value::Str(hostile.into()));
    }

    #[test]
    fn timestamps_survive_as_exact_integers() {
        let v = parse("1234567890123").unwrap();
        assert_eq!(v.as_u64(), Some(1_234_567_890_123));
    }
}
