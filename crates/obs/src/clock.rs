//! Time as a value: a [`Clock`] that is either the process's monotonic
//! wall clock or a deterministic virtual clock.
//!
//! Every timestamp in the observability layer — span begin/end,
//! sweep wall time, backoff sleeps — is read through a `Clock` instead
//! of `Instant::now()`. That makes deadline/backoff logic testable: a
//! test hands the code under test [`Clock::virtual_us`], `sleep`
//! becomes an atomic addition, and elapsed times come out exact and
//! reproducible.
//!
//! Three sources exist. [`Clock::wall`] is monotonic and
//! process-epoch-relative — right for durations, wrong for anything
//! two processes compare. [`Clock::unix`] is anchored at the Unix
//! epoch — the *one* sanctioned `SystemTime` read in the workspace
//! (allowlisted for the `wall-clock` lint), existing exactly so
//! cross-process contracts like lease deadlines go through an
//! injectable clock instead of calling `SystemTime::now()` at the
//! decision site. [`Clock::virtual_us`] is deterministic virtual time
//! for tests and model checking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Microseconds since an arbitrary per-clock epoch, or deterministic
/// virtual ticks. Cloning shares the underlying time source (clones of
/// a virtual clock advance together).
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Arc<ClockInner>,
}

#[derive(Debug)]
enum ClockInner {
    /// Monotonic wall time, measured from the clock's creation.
    Wall { epoch: Instant },
    /// Wall time measured from the Unix epoch: comparable across
    /// processes (lease deadlines), not monotonic under host clock
    /// steps — which the lease protocol tolerates by construction
    /// (skewed expiry only duplicates deterministic work).
    Unix,
    /// Virtual time: every `now_us` read returns the current value and
    /// advances it by `step_us`, so consecutive reads are strictly
    /// increasing and fully deterministic. `sleep` advances without
    /// blocking.
    Virtual { now_us: AtomicU64, step_us: u64 },
}

impl Clock {
    /// The monotonic wall clock, with its epoch at the call.
    #[must_use]
    pub fn wall() -> Self {
        Clock { inner: Arc::new(ClockInner::Wall { epoch: Instant::now() }) }
    }

    /// The epoch-anchored wall clock: [`Clock::now_us`] reads
    /// microseconds since the Unix epoch, so readings from different
    /// processes are comparable. Use this (not [`Clock::wall`]) to
    /// stamp cross-process deadlines; use it through injection so
    /// tests can substitute [`Clock::virtual_us`].
    #[must_use]
    pub fn unix() -> Self {
        Clock { inner: Arc::new(ClockInner::Unix) }
    }

    /// A deterministic virtual clock starting at 0 that advances by
    /// `step_us` microseconds on every [`Clock::now_us`] read (clamped
    /// to ≥ 1 so timestamps are strictly increasing).
    #[must_use]
    pub fn virtual_us(step_us: u64) -> Self {
        Clock {
            inner: Arc::new(ClockInner::Virtual {
                now_us: AtomicU64::new(0),
                step_us: step_us.max(1),
            }),
        }
    }

    /// True for a virtual clock (useful in diagnostics).
    #[must_use]
    pub fn is_virtual(&self) -> bool {
        matches!(*self.inner, ClockInner::Virtual { .. })
    }

    /// Current time in microseconds since the clock's epoch. On a
    /// virtual clock this read *advances* time by the step, so two
    /// consecutive reads never collide.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        match &*self.inner {
            ClockInner::Wall { epoch } => {
                u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
            }
            ClockInner::Unix => SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX)),
            ClockInner::Virtual { now_us, step_us } => now_us.fetch_add(*step_us, Ordering::SeqCst),
        }
    }

    /// Seconds elapsed since an earlier [`Clock::now_us`] reading
    /// (reads the clock, so on a virtual clock it consumes one tick).
    #[must_use]
    pub fn elapsed_s(&self, since_us: u64) -> f64 {
        self.now_us().saturating_sub(since_us) as f64 / 1e6
    }

    /// Sleep for `d`: a real `thread::sleep` on the wall clock, an
    /// instantaneous advance on a virtual clock — which is exactly what
    /// makes exponential-backoff tests run in microseconds while still
    /// observing the full virtual delay.
    pub fn sleep(&self, d: Duration) {
        match &*self.inner {
            ClockInner::Wall { .. } | ClockInner::Unix => std::thread::sleep(d),
            ClockInner::Virtual { now_us, .. } => {
                let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
                now_us.fetch_add(us, Ordering::SeqCst);
            }
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = Clock::wall();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn virtual_clock_is_deterministic_and_strictly_increasing() {
        let c = Clock::virtual_us(7);
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.now_us(), 7);
        assert_eq!(c.now_us(), 14);
        assert!(c.is_virtual());
        // A second clock with the same step replays identically.
        let d = Clock::virtual_us(7);
        assert_eq!(d.now_us(), 0);
    }

    #[test]
    fn virtual_sleep_advances_without_blocking() {
        let c = Clock::virtual_us(1);
        let t0 = c.now_us();
        let real = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert!(real.elapsed() < Duration::from_secs(1), "virtual sleep must not block");
        let dt = c.now_us() - t0;
        assert!(dt >= 3_600_000_000, "the full virtual hour elapsed, got {dt}");
    }

    #[test]
    fn unix_clock_is_epoch_anchored_and_comparable_across_instances() {
        // Two independently-created unix clocks read the same stream —
        // the property process-crossing lease deadlines depend on,
        // which Wall (per-clock epoch) deliberately lacks.
        let a = Clock::unix();
        let b = Clock::unix();
        let (ta, tb) = (a.now_us(), b.now_us());
        assert!(tb.abs_diff(ta) < 60_000_000, "unix clocks must share an epoch: {ta} vs {tb}");
        // Sanity: the reading is after 2020-01-01 (no default-zero epoch).
        assert!(ta > 1_577_836_800_000_000, "{ta}");
        assert!(!a.is_virtual());
    }

    #[test]
    fn clones_share_the_time_source() {
        let c = Clock::virtual_us(1);
        let d = c.clone();
        assert_eq!(c.now_us(), 0);
        assert_eq!(d.now_us(), 1, "a clone reads the same stream");
    }

    #[test]
    fn zero_step_is_clamped() {
        let c = Clock::virtual_us(0);
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.now_us(), 1);
    }

    #[test]
    fn elapsed_seconds_scale() {
        let c = Clock::virtual_us(1);
        let t0 = c.now_us();
        c.sleep(Duration::from_millis(2500));
        let s = c.elapsed_s(t0);
        assert!((s - 2.500_001).abs() < 1e-9, "{s}"); // +1 tick for the read
    }
}
