//! `wcms-obs`: hand-rolled structured tracing, metrics, and
//! deterministic time for the worst-case-mergesort workspace.
//!
//! The workspace is offline, so this is a dependency-free miniature of
//! the usual tracing/metrics stack, shaped around what the sweep
//! harness actually needs:
//!
//! - **Spans and events** ([`span!`], [`event!`]) — typed key=value
//!   records collected in a bounded [`RingCollector`] and exported as a
//!   JSONL journal or a Chrome trace-event document. When no recorder
//!   is installed the macros never evaluate their field expressions, so
//!   the untraced hot path costs one branch.
//! - **Metrics** ([`MetricsRegistry`]) — counters, gauges, and
//!   histograms; the `# sweep-summary` line is rebuilt from these, and
//!   `--metrics` dumps them in the Prometheus text format.
//! - **A [`Clock`]** — wall or seeded-virtual, so timestamp and
//!   backoff logic is testable without real sleeping.
//!
//! The [`Obs`] bundle carries all three; code under instrumentation
//! takes `&Obs` and never talks to a global. [`Obs::noop`] is the
//! shared disabled instance for APIs whose callers do not care.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod context;
pub mod export;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod ring;

use std::fmt;
use std::sync::{Arc, OnceLock};

pub use clock::Clock;
pub use context::{SpanId, TraceContext, TraceId, TRACE_SEED, TRACE_WIRE_LEN};
pub use export::{chrome_trace, journal_jsonl};
pub use metrics::{
    parse_prometheus_text, Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS_S,
};
pub use recorder::{current_tid, Field, FieldValue, NullRecorder, Phase, Record, Recorder};
pub use ring::{RingCollector, DEFAULT_RING_CAPACITY};

/// The observability bundle: an optional trace recorder, a metrics
/// registry, and a clock. Cloning is cheap and shares all three.
#[derive(Clone)]
pub struct Obs {
    recorder: Option<Arc<dyn Recorder>>,
    /// Metric registry (always present; recording is gated by
    /// [`Obs::is_active`]).
    pub metrics: MetricsRegistry,
    /// The time source for every timestamp this bundle emits.
    pub clock: Clock,
    active: bool,
    context: Option<TraceContext>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("tracing", &self.recorder.is_some())
            .field("active", &self.active)
            .field("clock", &self.clock)
            .field("context", &self.context)
            .finish()
    }
}

impl Obs {
    /// Fully disabled: no recorder, metrics not recorded. This is the
    /// default wired through [`Default`] so existing construction sites
    /// stay observability-free until a `--trace`/`--metrics` flag opts
    /// in.
    #[must_use]
    pub fn disabled() -> Self {
        Obs {
            recorder: None,
            metrics: MetricsRegistry::new(),
            clock: Clock::wall(),
            active: false,
            context: None,
        }
    }

    /// Metrics on, tracing off.
    #[must_use]
    pub fn enabled(clock: Clock) -> Self {
        Obs { recorder: None, metrics: MetricsRegistry::new(), clock, active: true, context: None }
    }

    /// Metrics and tracing on, records going to `recorder`.
    #[must_use]
    pub fn with_recorder(recorder: Arc<dyn Recorder>, clock: Clock) -> Self {
        Obs {
            recorder: Some(recorder),
            metrics: MetricsRegistry::new(),
            clock,
            active: true,
            context: None,
        }
    }

    /// A clone of this bundle carrying `context` as the current trace
    /// position. Instrumented layers derive child contexts from it and
    /// stamp them onto their spans; the recorder, metrics, and clock
    /// stay shared.
    #[must_use]
    pub fn with_context(&self, context: TraceContext) -> Self {
        let mut obs = self.clone();
        obs.context = Some(context);
        obs
    }

    /// The trace context this bundle carries, if any. `None` means the
    /// next instrumented layer starts a fresh root when tracing.
    #[must_use]
    pub fn context(&self) -> Option<TraceContext> {
        self.context
    }

    /// The process-wide disabled instance, for call sites that need a
    /// `&Obs` but were not handed one. Never allocates after first use.
    #[must_use]
    pub fn noop() -> &'static Obs {
        static NOOP: OnceLock<Obs> = OnceLock::new();
        NOOP.get_or_init(Obs::disabled)
    }

    /// True when a trace recorder is installed (spans/events recorded).
    #[must_use]
    pub fn is_tracing(&self) -> bool {
        self.recorder.is_some()
    }

    /// True when metrics should be recorded.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Record one raw observation (timestamped from this bundle's
    /// clock, attributed to the calling thread). No-op when not
    /// tracing.
    pub fn emit(&self, phase: Phase, name: &'static str, fields: Vec<Field>) {
        if let Some(recorder) = &self.recorder {
            recorder.record(Record {
                ts_us: self.clock.now_us(),
                tid: current_tid(),
                phase,
                name,
                fields,
            });
        }
    }

    /// Open a span. The field closure runs only when tracing; the
    /// returned guard closes the span on drop. Prefer the [`span!`]
    /// macro, which builds the closure for you.
    pub fn span(&self, name: &'static str, fields: impl FnOnce() -> Vec<Field>) -> SpanGuard<'_> {
        if self.recorder.is_some() {
            self.emit(Phase::Begin, name, fields());
            SpanGuard { obs: Some(self), name }
        } else {
            SpanGuard { obs: None, name }
        }
    }

    /// Record an instant event. The field closure runs only when
    /// tracing. Prefer the [`event!`] macro.
    pub fn event(&self, name: &'static str, fields: impl FnOnce() -> Vec<Field>) {
        if self.recorder.is_some() {
            self.emit(Phase::Event, name, fields());
        }
    }

    /// The workspace's one sanctioned diagnostic-to-stderr path: prints
    /// `# {message}` (the harness's comment convention) *and*, when
    /// tracing, records an event named `name` carrying the message and
    /// any extra fields — so warnings survive into journals instead of
    /// scrolling away.
    pub fn warn(&self, name: &'static str, message: &str, fields: impl FnOnce() -> Vec<Field>) {
        eprintln!("# {message}");
        if self.recorder.is_some() {
            let mut all = vec![Field::new("message", message)];
            all.extend(fields());
            self.emit(Phase::Event, name, all);
        }
    }

    /// Emit this process's journal epoch record: a `Meta` record whose
    /// `ts_us` is on this bundle's clock and whose `unix_us` field is
    /// the epoch-anchored wall time at the same instant. The pair is
    /// what lets `wcms-trace join` normalize per-process clocks —
    /// `offset = unix_us - ts_us` maps any record onto the shared unix
    /// timeline. Call once per journal, at collector installation.
    /// No-op when not tracing.
    pub fn emit_epoch(&self, process: &str) {
        if self.recorder.is_some() {
            self.emit(
                Phase::Meta,
                "epoch",
                vec![
                    Field::new("process", process),
                    Field::new("pid", u64::from(std::process::id())),
                    Field::new("unix_us", Clock::unix().now_us()),
                ],
            );
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

/// Closes its span on drop. Carries no data on the disabled path.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    obs: Option<&'a Obs>,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(obs) = self.obs {
            obs.emit(Phase::End, self.name, Vec::new());
        }
    }
}

impl fmt::Debug for SpanGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("tracing", &self.obs.is_some())
            .finish()
    }
}

/// Build a `Vec<Field>` from `key => value` pairs. Keys are
/// identifiers (stringified), so field-name cardinality is bounded by
/// the source code.
#[macro_export]
macro_rules! fields {
    () => { ::std::vec::Vec::<$crate::Field>::new() };
    ($($key:ident => $value:expr),+ $(,)?) => {
        ::std::vec![$($crate::Field::new(stringify!($key), $value)),+]
    };
}

/// Open a span on an [`Obs`]: `span!(obs, "name", key => value, ...)`.
/// Field expressions are evaluated only when tracing. Bind the result
/// (`let _span = span!(...)`) — dropping it closes the span.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr $(, $key:ident => $value:expr)* $(,)?) => {
        $obs.span($name, || $crate::fields![$($key => $value),*])
    };
}

/// Record an instant event on an [`Obs`]:
/// `event!(obs, "name", key => value, ...)`. Field expressions are
/// evaluated only when tracing.
#[macro_export]
macro_rules! event {
    ($obs:expr, $name:expr $(, $key:ident => $value:expr)* $(,)?) => {
        $obs.event($name, || $crate::fields![$($key => $value),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn traced() -> (Obs, Arc<RingCollector>) {
        let ring = Arc::new(RingCollector::new());
        (Obs::with_recorder(ring.clone(), Clock::virtual_us(1)), ring)
    }

    #[test]
    fn spans_emit_balanced_records() {
        let (obs, ring) = traced();
        {
            let _outer = span!(obs, "sweep", cells => 3u64);
            let _inner = span!(obs, "cell");
            event!(obs, "tick", n => 1u64);
        }
        let (records, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        let shape: Vec<(char, &str)> = records.iter().map(|r| (r.phase.code(), r.name)).collect();
        assert_eq!(
            shape,
            vec![('B', "sweep"), ('B', "cell"), ('I', "tick"), ('E', "cell"), ('E', "sweep")]
        );
        assert_eq!(records[0].fields, vec![Field::new("cells", 3u64)]);
        let ts: Vec<u64> = records.iter().map(|r| r.ts_us).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "virtual clock strictly increases: {ts:?}");
    }

    #[test]
    fn disabled_path_never_evaluates_fields() {
        let evals = AtomicUsize::new(0);
        let obs = Obs::disabled();
        {
            let _span = obs.span("s", || {
                evals.fetch_add(1, Ordering::SeqCst);
                Vec::new()
            });
            obs.event("e", || {
                evals.fetch_add(1, Ordering::SeqCst);
                Vec::new()
            });
        }
        assert_eq!(evals.load(Ordering::SeqCst), 0);
        assert!(!obs.is_tracing());
        assert!(!obs.is_active());
    }

    #[test]
    fn warn_records_the_message_when_tracing() {
        let (obs, ring) = traced();
        obs.warn("cell-demoted", "cell x demoted", || fields![backend => "analytic"]);
        let (records, _) = ring.drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "cell-demoted");
        assert_eq!(records[0].fields[0], Field::new("message", "cell x demoted"));
        assert_eq!(records[0].fields[1], Field::new("backend", "analytic"));
        // And on a disabled bundle it only prints (nothing to assert
        // beyond "does not panic").
        Obs::noop().warn("x", "quiet", Vec::new);
    }

    #[test]
    fn noop_is_shared_and_disabled() {
        let a = Obs::noop();
        let b = Obs::noop();
        assert!(std::ptr::eq(a, b));
        assert!(!a.is_tracing());
        assert!(!a.is_active());
    }

    #[test]
    fn enabled_records_metrics_but_no_trace() {
        let obs = Obs::enabled(Clock::virtual_us(1));
        assert!(obs.is_active());
        assert!(!obs.is_tracing());
        obs.metrics.counter("sweep_cells_total").add(2);
        assert_eq!(obs.metrics.counter("sweep_cells_total").get(), 2);
    }

    #[test]
    fn context_rides_the_bundle_and_shares_the_recorder() {
        let (obs, ring) = traced();
        assert!(obs.context().is_none());
        let ctx = TraceContext::root(1, "r");
        let contextual = obs.with_context(ctx);
        assert_eq!(contextual.context(), Some(ctx));
        assert!(obs.context().is_none(), "with_context clones, never mutates");
        {
            let _span = span!(contextual, "s");
        }
        let (records, _) = ring.drain();
        assert_eq!(records.len(), 2, "the clone records into the shared ring");
    }

    #[test]
    fn epoch_records_carry_process_pid_and_unix_time() {
        let (obs, ring) = traced();
        obs.emit_epoch("w0");
        let (records, _) = ring.drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].phase, Phase::Meta);
        assert_eq!(records[0].name, "epoch");
        assert_eq!(records[0].fields[0], Field::new("process", "w0"));
        assert_eq!(records[0].fields[1].key, "pid");
        assert_eq!(records[0].fields[2].key, "unix_us");
        match records[0].fields[2].value {
            FieldValue::U64(us) => assert!(us > 0, "unix time is epoch-anchored"),
            ref other => panic!("unix_us must be U64, got {other:?}"),
        }
        // Not tracing: no record, no panic.
        Obs::noop().emit_epoch("quiet");
    }

    #[test]
    fn journal_round_trips_through_export_and_parse() {
        let (obs, ring) = traced();
        {
            let _sweep = span!(obs, "sweep");
            let _cell = span!(obs, "cell", cell => "w32 b64 E3 n4096");
            event!(obs, "round-counters", merge_steps => 12u64, extra_cycles => 4u64);
        }
        let (records, dropped) = ring.drain();
        let text = journal_jsonl(&records, dropped);
        let parsed = journal::parse_journal(&text).unwrap();
        let report = journal::validate(&parsed);
        assert!(report.is_ok(), "{:?}", report.errors);
        assert_eq!(report.matched_spans, 2);
        let stats = journal::bench_stats(&parsed);
        assert_eq!(stats.total_merge_steps, 12);
        assert_eq!(stats.cells, 1);
    }
}
