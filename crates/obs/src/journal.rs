//! Reading journals back: parse, validate, summarize, diff, and derive
//! perf-baseline statistics. This is the library behind the
//! `wcms-trace` binary, kept here so tests can drive it in-process.

use std::collections::BTreeMap;

use crate::json::{parse, Value};
use crate::recorder::Phase;

/// One journal record with its name and fields owned (journals are read
/// back from disk, so `&'static str` names are gone).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Timestamp in microseconds.
    pub ts_us: u64,
    /// Emitting-thread label (opaque).
    pub tid: u32,
    /// Record phase.
    pub phase: Phase,
    /// Record name.
    pub name: String,
    /// Fields as parsed JSON values, in journal order.
    pub fields: Vec<(String, Value)>,
}

impl JournalRecord {
    /// Field lookup by key.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A parsed journal: the records plus the drop count declared by any
/// trailing `dropped-records` meta line.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// All records, in file order (meta lines included).
    pub records: Vec<JournalRecord>,
    /// Records the collector admitted to dropping.
    pub dropped: u64,
}

/// Parse a JSONL journal. Blank lines are skipped; any malformed line
/// is an error naming its line number.
///
/// # Errors
///
/// A message naming the first offending line.
pub fn parse_journal(text: &str) -> Result<Journal, String> {
    let mut journal = Journal::default();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ts_us = v
            .get("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line {lineno}: missing or non-integer 'ts'"))?;
        let tid = v
            .get("tid")
            .and_then(Value::as_u64)
            .and_then(|t| u32::try_from(t).ok())
            .ok_or_else(|| format!("line {lineno}: missing or non-u32 'tid'"))?;
        let ph = v
            .get("ph")
            .and_then(Value::as_str)
            .and_then(|s| s.chars().next())
            .and_then(Phase::from_code)
            .ok_or_else(|| format!("line {lineno}: missing or unknown 'ph'"))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing 'name'"))?
            .to_string();
        let fields = match v.get("fields") {
            None => Vec::new(),
            Some(Value::Obj(members)) => members.clone(),
            Some(_) => return Err(format!("line {lineno}: 'fields' is not an object")),
        };
        if ph == Phase::Meta && name == "dropped-records" {
            journal.dropped +=
                v.get("fields").and_then(|f| f.get("dropped")).and_then(Value::as_u64).unwrap_or(0);
        }
        journal.records.push(JournalRecord { ts_us, tid, phase: ph, name, fields });
    }
    Ok(journal)
}

/// The outcome of structural validation.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Total records examined.
    pub records: usize,
    /// Spans that opened and closed correctly.
    pub matched_spans: usize,
    /// Every structural violation found (empty means valid).
    pub errors: Vec<String>,
}

impl ValidationReport {
    /// True when no violations were found.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Structurally validate a journal:
///
/// 1. per-thread timestamps are non-decreasing,
/// 2. per-thread `Begin`/`End` records nest properly with matching
///    names (threads are independent stacks — spans never migrate),
/// 3. no thread ends with an open span,
/// 4. the collector dropped nothing (a truncated journal cannot be
///    certified).
#[must_use]
pub fn validate(journal: &Journal) -> ValidationReport {
    let mut report =
        ValidationReport { records: journal.records.len(), ..ValidationReport::default() };
    let mut stacks: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u32, u64> = BTreeMap::new();
    for (idx, rec) in journal.records.iter().enumerate() {
        let lineno = idx + 1;
        if let Some(&prev) = last_ts.get(&rec.tid) {
            if rec.ts_us < prev {
                report.errors.push(format!(
                    "record {lineno}: tid {} time went backwards ({} -> {})",
                    rec.tid, prev, rec.ts_us
                ));
            }
        }
        last_ts.insert(rec.tid, rec.ts_us);
        match rec.phase {
            Phase::Begin => stacks.entry(rec.tid).or_default().push(&rec.name),
            Phase::End => match stacks.entry(rec.tid).or_default().pop() {
                Some(open) if open == rec.name => report.matched_spans += 1,
                Some(open) => report.errors.push(format!(
                    "record {lineno}: tid {} closes '{}' but '{open}' is open",
                    rec.tid, rec.name
                )),
                None => report.errors.push(format!(
                    "record {lineno}: tid {} closes '{}' with no span open",
                    rec.tid, rec.name
                )),
            },
            Phase::Event | Phase::Meta => {}
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            report
                .errors
                .push(format!("tid {tid}: span '{open}' never closed ({} left open)", stack.len()));
        }
    }
    if journal.dropped > 0 {
        report
            .errors
            .push(format!("collector dropped {} records; journal is truncated", journal.dropped));
    }
    report
}

/// Durations (µs) of every completed span named `name`, matched
/// per-thread in nesting order.
#[must_use]
pub fn span_durations_us(journal: &Journal, name: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut stacks: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
    for rec in &journal.records {
        match rec.phase {
            Phase::Begin => stacks.entry(rec.tid).or_default().push((rec.name.clone(), rec.ts_us)),
            Phase::End => {
                if let Some((open, t0)) = stacks.entry(rec.tid).or_default().pop() {
                    if open == rec.name && open == name {
                        out.push(rec.ts_us.saturating_sub(t0));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Per-name counts: (spans completed, instant events).
#[must_use]
pub fn name_counts(journal: &Journal) -> BTreeMap<String, (usize, usize)> {
    let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for rec in &journal.records {
        let entry = out.entry(rec.name.clone()).or_default();
        match rec.phase {
            Phase::End => entry.0 += 1,
            Phase::Event => entry.1 += 1,
            _ => {}
        }
    }
    out
}

/// A human-readable summary: record/span/event counts per name plus
/// total span time.
#[must_use]
pub fn summarize(journal: &Journal) -> String {
    let mut out = String::new();
    out.push_str(&format!("records: {}  (dropped: {})\n", journal.records.len(), journal.dropped));
    out.push_str("name                      spans   events   total_ms\n");
    for (name, (spans, events)) in name_counts(journal) {
        let total_ms =
            span_durations_us(journal, &name).iter().fold(0.0, |acc, &d| acc + d as f64 / 1e3);
        out.push_str(&format!("{name:<25} {spans:>5} {events:>8} {total_ms:>10.3}\n"));
    }
    out
}

/// Compare two journals by per-name span/event counts. Returns the
/// lines that differ (empty means the journals agree structurally).
#[must_use]
pub fn diff(a: &Journal, b: &Journal) -> Vec<String> {
    let ca = name_counts(a);
    let cb = name_counts(b);
    let mut out = Vec::new();
    for name in ca.keys().chain(cb.keys()) {
        let va = ca.get(name).copied().unwrap_or((0, 0));
        let vb = cb.get(name).copied().unwrap_or((0, 0));
        if va != vb {
            let line = format!("{name}: spans {} -> {}, events {} -> {}", va.0, vb.0, va.1, vb.1);
            if !out.contains(&line) {
                out.push(line);
            }
        }
    }
    out
}

/// Render a parsed journal as a Chrome trace-event document — the
/// offline conversion behind `wcms-trace chrome` (the live path exports
/// straight from [`crate::recorder::Record`]s via
/// [`crate::export::chrome_trace`]).
#[must_use]
pub fn chrome_from_journal(journal: &Journal) -> String {
    use crate::json::escape_into;
    use std::fmt::Write as _;
    let mut out = String::with_capacity(journal.records.len() * 112 + 32);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for rec in &journal.records {
        let ph = match rec.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Event => "i",
            Phase::Meta => "M",
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":");
        escape_into(&mut out, &rec.name);
        let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}", rec.ts_us, rec.tid);
        if rec.phase == Phase::Event {
            out.push_str(",\"s\":\"t\"");
        }
        if !rec.fields.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in rec.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(&mut out, key);
                out.push(':');
                write_value(&mut out, value);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

fn write_value(out: &mut String, value: &Value) {
    use crate::json::escape_into;
    use std::fmt::Write as _;
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::Str(s) => escape_into(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, v);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// Perf-baseline statistics derived from one journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchStats {
    /// Completed `cell` spans.
    pub cells: usize,
    /// Median cell latency in seconds.
    pub cell_latency_median_s: f64,
    /// 95th-percentile cell latency in seconds.
    pub cell_latency_p95_s: f64,
    /// Sum of `merge_steps` over all `round-counters` events.
    pub total_merge_steps: u64,
    /// Sum of `extra_cycles` over all `round-counters` events.
    pub total_conflict_extra_cycles: u64,
    /// Number of `round-counters` events (rounds observed).
    pub rounds: u64,
    /// Duration of the outermost `sweep` span in seconds (0 if absent).
    pub wall_s: f64,
}

impl BenchStats {
    /// Mean conflict extra-cycles per observed round.
    #[must_use]
    pub fn conflicts_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_conflict_extra_cycles as f64 / self.rounds as f64
        }
    }
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e6
}

/// Derive [`BenchStats`] from a journal produced by a traced sweep.
#[must_use]
pub fn bench_stats(journal: &Journal) -> BenchStats {
    let mut cell_durs = span_durations_us(journal, "cell");
    cell_durs.sort_unstable();
    let mut stats = BenchStats {
        cells: cell_durs.len(),
        cell_latency_median_s: percentile_us(&cell_durs, 0.5),
        cell_latency_p95_s: percentile_us(&cell_durs, 0.95),
        ..BenchStats::default()
    };
    for rec in &journal.records {
        if rec.phase == Phase::Event && rec.name == "round-counters" {
            stats.rounds += 1;
            stats.total_merge_steps +=
                rec.field("merge_steps").and_then(Value::as_u64).unwrap_or(0);
            stats.total_conflict_extra_cycles +=
                rec.field("extra_cycles").and_then(Value::as_u64).unwrap_or(0);
        }
    }
    stats.wall_s =
        span_durations_us(journal, "sweep").iter().copied().max().unwrap_or(0) as f64 / 1e6;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(ts: u64, tid: u32, ph: char, name: &str, fields: &str) -> String {
        if fields.is_empty() {
            format!(r#"{{"ts":{ts},"tid":{tid},"ph":"{ph}","name":"{name}"}}"#)
        } else {
            format!(r#"{{"ts":{ts},"tid":{tid},"ph":"{ph}","name":"{name}","fields":{fields}}}"#)
        }
    }

    fn good_journal() -> Journal {
        let text = [
            line(0, 1, 'B', "sweep", ""),
            line(1, 2, 'B', "cell", ""),
            line(2, 2, 'I', "round-counters", r#"{"merge_steps":10,"extra_cycles":3}"#),
            line(5, 2, 'E', "cell", ""),
            line(6, 2, 'B', "cell", ""),
            line(7, 2, 'I', "round-counters", r#"{"merge_steps":20,"extra_cycles":5}"#),
            line(9, 2, 'E', "cell", ""),
            line(10, 1, 'E', "sweep", ""),
        ]
        .join("\n");
        parse_journal(&text).unwrap()
    }

    #[test]
    fn well_formed_journal_validates() {
        let j = good_journal();
        let report = validate(&j);
        assert!(report.is_ok(), "{:?}", report.errors);
        assert_eq!(report.matched_spans, 3);
    }

    #[test]
    fn unbalanced_and_misnamed_spans_are_caught() {
        let open = parse_journal(&line(0, 1, 'B', "sweep", "")).unwrap();
        assert!(!validate(&open).is_ok());

        let wrong = parse_journal(&[line(0, 1, 'B', "a", ""), line(1, 1, 'E', "b", "")].join("\n"))
            .unwrap();
        assert!(validate(&wrong).errors[0].contains("closes 'b' but 'a' is open"));

        let orphan = parse_journal(&line(0, 1, 'E', "a", "")).unwrap();
        assert!(validate(&orphan).errors[0].contains("no span open"));
    }

    #[test]
    fn time_reversal_is_caught_per_thread() {
        let j = parse_journal(&[line(5, 1, 'I', "a", ""), line(3, 1, 'I', "a", "")].join("\n"))
            .unwrap();
        assert!(validate(&j).errors[0].contains("time went backwards"));
        // Different threads are independent streams.
        let ok = parse_journal(&[line(5, 1, 'I', "a", ""), line(3, 2, 'I', "a", "")].join("\n"))
            .unwrap();
        assert!(validate(&ok).is_ok());
    }

    #[test]
    fn dropped_records_fail_validation() {
        let j = parse_journal(
            &[line(0, 1, 'I', "a", ""), line(0, 0, 'M', "dropped-records", r#"{"dropped":3}"#)]
                .join("\n"),
        )
        .unwrap();
        assert_eq!(j.dropped, 3);
        assert!(validate(&j).errors[0].contains("dropped 3"));
    }

    #[test]
    fn bench_stats_aggregate_cells_and_rounds() {
        let stats = bench_stats(&good_journal());
        assert_eq!(stats.cells, 2);
        assert_eq!(stats.total_merge_steps, 30);
        assert_eq!(stats.total_conflict_extra_cycles, 8);
        assert_eq!(stats.rounds, 2);
        assert!((stats.wall_s - 10e-6).abs() < 1e-12);
        // Durations 4 and 3 µs -> sorted [3, 4]; median rank rounds up.
        assert!((stats.cell_latency_median_s - 4e-6).abs() < 1e-12 * 10.0, "{stats:?}");
        assert!((stats.conflicts_per_round() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn diff_reports_count_changes() {
        let a = good_journal();
        let b =
            parse_journal(&[line(0, 1, 'B', "sweep", ""), line(1, 1, 'E', "sweep", "")].join("\n"))
                .unwrap();
        let d = diff(&a, &b);
        assert!(d.iter().any(|l| l.starts_with("cell:")), "{d:?}");
        assert!(d.iter().any(|l| l.starts_with("round-counters:")), "{d:?}");
        assert!(diff(&a, &a).is_empty());
    }

    #[test]
    fn summarize_names_every_record_kind() {
        let text = summarize(&good_journal());
        assert!(text.contains("records: 8"));
        assert!(text.contains("cell"));
        assert!(text.contains("round-counters"));
    }

    #[test]
    fn chrome_conversion_preserves_every_record() {
        let j = good_journal();
        let doc = crate::json::parse(&chrome_from_journal(&j)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), j.records.len());
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[2].get("args").unwrap().get("merge_steps").unwrap().as_u64(), Some(10));
        assert_eq!(events[2].get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err = parse_journal("{\"ts\":1}\n{nope").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
