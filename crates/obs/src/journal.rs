//! Reading journals back: parse, validate, summarize, diff, and derive
//! perf-baseline statistics. This is the library behind the
//! `wcms-trace` binary, kept here so tests can drive it in-process.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::{parse, Value};
use crate::recorder::Phase;

/// One journal record with its name and fields owned (journals are read
/// back from disk, so `&'static str` names are gone).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Timestamp in microseconds.
    pub ts_us: u64,
    /// Emitting-thread label (opaque).
    pub tid: u32,
    /// Record phase.
    pub phase: Phase,
    /// Record name.
    pub name: String,
    /// Fields as parsed JSON values, in journal order.
    pub fields: Vec<(String, Value)>,
}

impl JournalRecord {
    /// Field lookup by key.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A parsed journal: the records plus the drop count declared by any
/// trailing `dropped-records` meta line.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// All records, in file order (meta lines included).
    pub records: Vec<JournalRecord>,
    /// Records the collector admitted to dropping.
    pub dropped: u64,
}

/// Parse a JSONL journal. Blank lines are skipped; any malformed line
/// is an error naming its line number.
///
/// # Errors
///
/// A message naming the first offending line.
pub fn parse_journal(text: &str) -> Result<Journal, String> {
    let mut journal = Journal::default();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ts_us = v
            .get("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line {lineno}: missing or non-integer 'ts'"))?;
        let tid = v
            .get("tid")
            .and_then(Value::as_u64)
            .and_then(|t| u32::try_from(t).ok())
            .ok_or_else(|| format!("line {lineno}: missing or non-u32 'tid'"))?;
        let ph = v
            .get("ph")
            .and_then(Value::as_str)
            .and_then(|s| s.chars().next())
            .and_then(Phase::from_code)
            .ok_or_else(|| format!("line {lineno}: missing or unknown 'ph'"))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing 'name'"))?
            .to_string();
        let fields = match v.get("fields") {
            None => Vec::new(),
            Some(Value::Obj(members)) => members.clone(),
            Some(_) => return Err(format!("line {lineno}: 'fields' is not an object")),
        };
        if ph == Phase::Meta && name == "dropped-records" {
            journal.dropped +=
                v.get("fields").and_then(|f| f.get("dropped")).and_then(Value::as_u64).unwrap_or(0);
        }
        journal.records.push(JournalRecord { ts_us, tid, phase: ph, name, fields });
    }
    Ok(journal)
}

/// The outcome of structural validation.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Total records examined.
    pub records: usize,
    /// Spans that opened and closed correctly.
    pub matched_spans: usize,
    /// Records the collector admitted to dropping (surfaced so
    /// operators see the count — the same number the emitting process
    /// exports as `obs_dropped_spans_total`).
    pub dropped: u64,
    /// Every structural violation found (empty means valid).
    pub errors: Vec<String>,
}

impl ValidationReport {
    /// True when no violations were found.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Structurally validate a journal:
///
/// 1. per-thread timestamps are non-decreasing,
/// 2. per-thread `Begin`/`End` records nest properly with matching
///    names (threads are independent stacks — spans never migrate),
/// 3. no thread ends with an open span,
/// 4. the collector dropped nothing (a truncated journal cannot be
///    certified).
#[must_use]
pub fn validate(journal: &Journal) -> ValidationReport {
    let mut report = ValidationReport {
        records: journal.records.len(),
        dropped: journal.dropped,
        ..ValidationReport::default()
    };
    let mut stacks: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u32, u64> = BTreeMap::new();
    for (idx, rec) in journal.records.iter().enumerate() {
        let lineno = idx + 1;
        if let Some(&prev) = last_ts.get(&rec.tid) {
            if rec.ts_us < prev {
                report.errors.push(format!(
                    "record {lineno}: tid {} time went backwards ({} -> {})",
                    rec.tid, prev, rec.ts_us
                ));
            }
        }
        last_ts.insert(rec.tid, rec.ts_us);
        match rec.phase {
            Phase::Begin => stacks.entry(rec.tid).or_default().push(&rec.name),
            Phase::End => match stacks.entry(rec.tid).or_default().pop() {
                Some(open) if open == rec.name => report.matched_spans += 1,
                Some(open) => report.errors.push(format!(
                    "record {lineno}: tid {} closes '{}' but '{open}' is open",
                    rec.tid, rec.name
                )),
                None => report.errors.push(format!(
                    "record {lineno}: tid {} closes '{}' with no span open",
                    rec.tid, rec.name
                )),
            },
            Phase::Event | Phase::Meta => {}
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            report
                .errors
                .push(format!("tid {tid}: span '{open}' never closed ({} left open)", stack.len()));
        }
    }
    if journal.dropped > 0 {
        report
            .errors
            .push(format!("collector dropped {} records; journal is truncated", journal.dropped));
    }
    report
}

/// Durations (µs) of every completed span named `name`, matched
/// per-thread in nesting order.
#[must_use]
pub fn span_durations_us(journal: &Journal, name: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut stacks: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
    for rec in &journal.records {
        match rec.phase {
            Phase::Begin => stacks.entry(rec.tid).or_default().push((rec.name.clone(), rec.ts_us)),
            Phase::End => {
                if let Some((open, t0)) = stacks.entry(rec.tid).or_default().pop() {
                    if open == rec.name && open == name {
                        out.push(rec.ts_us.saturating_sub(t0));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Per-name counts: (spans completed, instant events).
#[must_use]
pub fn name_counts(journal: &Journal) -> BTreeMap<String, (usize, usize)> {
    let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for rec in &journal.records {
        let entry = out.entry(rec.name.clone()).or_default();
        match rec.phase {
            Phase::End => entry.0 += 1,
            Phase::Event => entry.1 += 1,
            _ => {}
        }
    }
    out
}

/// A human-readable summary: record/span/event counts per name plus
/// total span time.
#[must_use]
pub fn summarize(journal: &Journal) -> String {
    let mut out = String::new();
    out.push_str(&format!("records: {}  (dropped: {})\n", journal.records.len(), journal.dropped));
    out.push_str("name                      spans   events   total_ms\n");
    for (name, (spans, events)) in name_counts(journal) {
        let total_ms =
            span_durations_us(journal, &name).iter().fold(0.0, |acc, &d| acc + d as f64 / 1e3);
        out.push_str(&format!("{name:<25} {spans:>5} {events:>8} {total_ms:>10.3}\n"));
    }
    out
}

/// Compare two journals by per-name span/event counts. Returns the
/// lines that differ (empty means the journals agree structurally).
#[must_use]
pub fn diff(a: &Journal, b: &Journal) -> Vec<String> {
    let ca = name_counts(a);
    let cb = name_counts(b);
    let mut out = Vec::new();
    for name in ca.keys().chain(cb.keys()) {
        let va = ca.get(name).copied().unwrap_or((0, 0));
        let vb = cb.get(name).copied().unwrap_or((0, 0));
        if va != vb {
            let line = format!("{name}: spans {} -> {}, events {} -> {}", va.0, vb.0, va.1, vb.1);
            if !out.contains(&line) {
                out.push(line);
            }
        }
    }
    out
}

/// Render a parsed journal as a Chrome trace-event document — the
/// offline conversion behind `wcms-trace chrome` (the live path exports
/// straight from [`crate::recorder::Record`]s via
/// [`crate::export::chrome_trace`]).
#[must_use]
pub fn chrome_from_journal(journal: &Journal) -> String {
    use crate::json::escape_into;
    use std::fmt::Write as _;
    let mut out = String::with_capacity(journal.records.len() * 112 + 32);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for rec in &journal.records {
        let ph = match rec.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Event => "i",
            Phase::Meta => "M",
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":");
        escape_into(&mut out, &rec.name);
        let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}", rec.ts_us, rec.tid);
        if rec.phase == Phase::Event {
            out.push_str(",\"s\":\"t\"");
        }
        if !rec.fields.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in rec.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(&mut out, key);
                out.push(':');
                write_value(&mut out, value);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

fn write_value(out: &mut String, value: &Value) {
    use crate::json::escape_into;
    use std::fmt::Write as _;
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::Str(s) => escape_into(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, v);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

/// The clock anchor a journal's `epoch` meta record declares: the
/// emitting process's name and pid, the epoch-anchored unix time at
/// emission, and the record's own timestamp on the process-local clock.
/// `unix_us - ts_us` is the offset that maps every record of that
/// journal onto the shared unix timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEpoch {
    /// Self-declared process label (e.g. `wcms-serve`, `fig4/w2`).
    pub process: String,
    /// OS process id at emission.
    pub pid: u64,
    /// Epoch-anchored wall time (µs) at the emission instant.
    pub unix_us: u64,
    /// The same instant on the journal's own clock (µs).
    pub ts_us: u64,
}

/// Find a journal's epoch record (the first `Meta` record named
/// `epoch`), or `None` for journals written before epochs existed.
#[must_use]
pub fn journal_epoch(journal: &Journal) -> Option<JournalEpoch> {
    journal.records.iter().find(|r| r.phase == Phase::Meta && r.name == "epoch").map(|r| {
        JournalEpoch {
            process: r.field("process").and_then(Value::as_str).unwrap_or("?").to_string(),
            pid: r.field("pid").and_then(Value::as_u64).unwrap_or(0),
            unix_us: r.field("unix_us").and_then(Value::as_u64).unwrap_or(0),
            ts_us: r.ts_us,
        }
    })
}

/// One stamped span occurrence, gathered from a `Begin` record's
/// `trace`/`span`/`parent` fields while joining.
#[derive(Debug, Clone)]
struct SpanSite {
    file: usize,
    name: String,
    /// Begin timestamp normalized onto the unix timeline.
    begin_us: i128,
    parent: Option<String>,
}

/// The causal outcome of joining N per-process journals.
#[derive(Debug, Clone, Default)]
pub struct JoinReport {
    /// Journals joined.
    pub files: usize,
    /// Total records across all journals.
    pub records: usize,
    /// `Begin` records carrying a stamped span id.
    pub spans: usize,
    /// Stamped spans with no parent (trace roots).
    pub roots: usize,
    /// Total records the collectors admitted to dropping.
    pub dropped: u64,
    /// Spans whose parent id appears in no joined journal.
    pub orphans: Vec<String>,
    /// Parent chains that loop back on themselves.
    pub cycles: Vec<String>,
    /// Spans that begin before their parent on the normalized timeline
    /// (causality cannot run backwards across correctly-offset clocks).
    pub non_monotonic: Vec<String>,
}

impl JoinReport {
    /// True when the join found no causal violations. Dropped records
    /// are reported, not fatal — truncation already surfaces through
    /// per-journal validation and the drop counter metric.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.orphans.is_empty() && self.cycles.is_empty() && self.non_monotonic.is_empty()
    }

    /// Every causal violation, one line each, prefixed with its class.
    #[must_use]
    pub fn errors(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.extend(self.orphans.iter().map(|e| format!("orphan: {e}")));
        out.extend(self.cycles.iter().map(|e| format!("cycle: {e}")));
        out.extend(self.non_monotonic.iter().map(|e| format!("non-monotonic: {e}")));
        out
    }
}

/// Merge N per-process journals into one Chrome trace-event document
/// and causally validate the result.
///
/// Each journal must carry an `epoch` meta record; its
/// `unix_us - ts_us` offset maps that process's clock onto the shared
/// unix timeline (process-local clocks are monotonic-from-startup and
/// never comparable directly). Each input becomes one Chrome `pid`
/// (named from its epoch's process label), timestamps are rebased so
/// the earliest joined record sits at 0, and stamped
/// `trace`/`span`/`parent` fields are checked for orphan parents,
/// parent cycles, and children that begin before their parents.
///
/// # Errors
///
/// If no journals are given or any journal lacks an epoch record
/// (without one its clock cannot be normalized, and a join that
/// silently guessed offsets would fabricate causality).
pub fn join_journals(inputs: &[(String, Journal)]) -> Result<(String, JoinReport), String> {
    use crate::json::escape_into;
    use std::fmt::Write as _;
    if inputs.is_empty() {
        return Err("join: no journals given".to_string());
    }
    let mut report = JoinReport { files: inputs.len(), ..JoinReport::default() };
    let mut epochs = Vec::with_capacity(inputs.len());
    let mut offsets = Vec::with_capacity(inputs.len());
    for (label, journal) in inputs {
        let epoch = journal_epoch(journal).ok_or_else(|| {
            format!(
                "{label}: no 'epoch' meta record — cannot normalize this journal's clock \
                 onto the shared timeline (re-emit it with tracing from this revision)"
            )
        })?;
        offsets.push(epoch.unix_us as i128 - i128::from(epoch.ts_us));
        epochs.push(epoch);
        report.records += journal.records.len();
        report.dropped += journal.dropped;
    }

    let mut spans: BTreeMap<String, SpanSite> = BTreeMap::new();
    for (file, (_, journal)) in inputs.iter().enumerate() {
        for rec in &journal.records {
            if rec.phase != Phase::Begin {
                continue;
            }
            let Some(id) = rec.field("span").and_then(Value::as_str) else { continue };
            report.spans += 1;
            let parent = rec.field("parent").and_then(Value::as_str).map(str::to_string);
            if parent.is_none() {
                report.roots += 1;
            }
            // First occurrence wins: a replayed cell re-begins the same
            // derived span id, which is the same causal node.
            spans.entry(id.to_string()).or_insert(SpanSite {
                file,
                name: rec.name.clone(),
                begin_us: i128::from(rec.ts_us) + offsets[file],
                parent,
            });
        }
    }

    for (id, site) in &spans {
        let Some(parent) = &site.parent else { continue };
        match spans.get(parent) {
            None => report.orphans.push(format!(
                "{}: span {id} ('{}') parents to {parent}, found in no journal",
                inputs[site.file].0, site.name
            )),
            Some(p) => {
                if site.begin_us < p.begin_us {
                    report.non_monotonic.push(format!(
                        "{}: span {id} ('{}') begins {}us before its parent {parent} \
                         ('{}' in {})",
                        inputs[site.file].0,
                        site.name,
                        p.begin_us - site.begin_us,
                        p.name,
                        inputs[p.file].0
                    ));
                }
            }
        }
    }

    // Cycle detection over the parent links: walk each chain; a node
    // revisited on its own path closes a cycle. Members already
    // attributed to a reported cycle are skipped so each cycle is
    // reported once.
    let mut in_cycle: BTreeSet<String> = BTreeSet::new();
    for id in spans.keys() {
        if in_cycle.contains(id) {
            continue;
        }
        let mut path: Vec<String> = vec![id.clone()];
        while let Some(cur) = path.last() {
            let Some(next) = spans.get(cur).and_then(|s| s.parent.clone()) else { break };
            if !spans.contains_key(&next) {
                break; // orphan end, already reported above
            }
            if let Some(start) = path.iter().position(|p| *p == next) {
                let members = &path[start..];
                if !members.iter().any(|m| in_cycle.contains(m)) {
                    report
                        .cycles
                        .push(format!("parent cycle through spans [{}]", members.join(" -> ")));
                    in_cycle.extend(members.iter().cloned());
                }
                break;
            }
            if in_cycle.contains(&next) {
                break;
            }
            path.push(next);
        }
    }

    // Render: one Chrome pid per journal, timestamps rebased so the
    // earliest joined record sits at 0. Meta records (epoch, drop
    // markers) become report material, not trace events.
    let t0 = inputs
        .iter()
        .enumerate()
        .flat_map(|(f, (_, j))| {
            let offset = offsets[f];
            j.records.iter().map(move |r| i128::from(r.ts_us) + offset)
        })
        .min()
        .unwrap_or(0);
    let mut out = String::with_capacity(report.records * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (file, (label, journal)) in inputs.iter().enumerate() {
        let pid = file + 1;
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":"
        );
        escape_into(&mut out, &format!("{} [{}]", epochs[file].process, label));
        out.push_str("}}");
        for rec in &journal.records {
            let ph = match rec.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Event => "i",
                Phase::Meta => continue,
            };
            out.push_str(",\n{\"name\":");
            escape_into(&mut out, &rec.name);
            let ts = i128::from(rec.ts_us) + offsets[file] - t0;
            let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{}", rec.tid);
            if rec.phase == Phase::Event {
                out.push_str(",\"s\":\"t\"");
            }
            if !rec.fields.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, value)) in rec.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(&mut out, key);
                    out.push(':');
                    write_value(&mut out, value);
                }
                out.push('}');
            }
            out.push('}');
        }
    }
    out.push_str("\n]}\n");
    Ok((out, report))
}

/// Perf-baseline statistics derived from one journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchStats {
    /// Completed `cell` spans.
    pub cells: usize,
    /// Median cell latency in seconds.
    pub cell_latency_median_s: f64,
    /// 95th-percentile cell latency in seconds.
    pub cell_latency_p95_s: f64,
    /// Sum of `merge_steps` over all `round-counters` events.
    pub total_merge_steps: u64,
    /// Sum of `extra_cycles` over all `round-counters` events.
    pub total_conflict_extra_cycles: u64,
    /// Number of `round-counters` events (rounds observed).
    pub rounds: u64,
    /// Duration of the outermost `sweep` span in seconds (0 if absent).
    pub wall_s: f64,
}

impl BenchStats {
    /// Mean conflict extra-cycles per observed round.
    #[must_use]
    pub fn conflicts_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_conflict_extra_cycles as f64 / self.rounds as f64
        }
    }
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e6
}

/// Derive [`BenchStats`] from a journal produced by a traced sweep.
#[must_use]
pub fn bench_stats(journal: &Journal) -> BenchStats {
    let mut cell_durs = span_durations_us(journal, "cell");
    cell_durs.sort_unstable();
    let mut stats = BenchStats {
        cells: cell_durs.len(),
        cell_latency_median_s: percentile_us(&cell_durs, 0.5),
        cell_latency_p95_s: percentile_us(&cell_durs, 0.95),
        ..BenchStats::default()
    };
    for rec in &journal.records {
        if rec.phase == Phase::Event && rec.name == "round-counters" {
            stats.rounds += 1;
            stats.total_merge_steps +=
                rec.field("merge_steps").and_then(Value::as_u64).unwrap_or(0);
            stats.total_conflict_extra_cycles +=
                rec.field("extra_cycles").and_then(Value::as_u64).unwrap_or(0);
        }
    }
    stats.wall_s =
        span_durations_us(journal, "sweep").iter().copied().max().unwrap_or(0) as f64 / 1e6;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(ts: u64, tid: u32, ph: char, name: &str, fields: &str) -> String {
        if fields.is_empty() {
            format!(r#"{{"ts":{ts},"tid":{tid},"ph":"{ph}","name":"{name}"}}"#)
        } else {
            format!(r#"{{"ts":{ts},"tid":{tid},"ph":"{ph}","name":"{name}","fields":{fields}}}"#)
        }
    }

    fn good_journal() -> Journal {
        let text = [
            line(0, 1, 'B', "sweep", ""),
            line(1, 2, 'B', "cell", ""),
            line(2, 2, 'I', "round-counters", r#"{"merge_steps":10,"extra_cycles":3}"#),
            line(5, 2, 'E', "cell", ""),
            line(6, 2, 'B', "cell", ""),
            line(7, 2, 'I', "round-counters", r#"{"merge_steps":20,"extra_cycles":5}"#),
            line(9, 2, 'E', "cell", ""),
            line(10, 1, 'E', "sweep", ""),
        ]
        .join("\n");
        parse_journal(&text).unwrap()
    }

    #[test]
    fn well_formed_journal_validates() {
        let j = good_journal();
        let report = validate(&j);
        assert!(report.is_ok(), "{:?}", report.errors);
        assert_eq!(report.matched_spans, 3);
    }

    #[test]
    fn unbalanced_and_misnamed_spans_are_caught() {
        let open = parse_journal(&line(0, 1, 'B', "sweep", "")).unwrap();
        assert!(!validate(&open).is_ok());

        let wrong = parse_journal(&[line(0, 1, 'B', "a", ""), line(1, 1, 'E', "b", "")].join("\n"))
            .unwrap();
        assert!(validate(&wrong).errors[0].contains("closes 'b' but 'a' is open"));

        let orphan = parse_journal(&line(0, 1, 'E', "a", "")).unwrap();
        assert!(validate(&orphan).errors[0].contains("no span open"));
    }

    #[test]
    fn time_reversal_is_caught_per_thread() {
        let j = parse_journal(&[line(5, 1, 'I', "a", ""), line(3, 1, 'I', "a", "")].join("\n"))
            .unwrap();
        assert!(validate(&j).errors[0].contains("time went backwards"));
        // Different threads are independent streams.
        let ok = parse_journal(&[line(5, 1, 'I', "a", ""), line(3, 2, 'I', "a", "")].join("\n"))
            .unwrap();
        assert!(validate(&ok).is_ok());
    }

    #[test]
    fn dropped_records_fail_validation() {
        let j = parse_journal(
            &[line(0, 1, 'I', "a", ""), line(0, 0, 'M', "dropped-records", r#"{"dropped":3}"#)]
                .join("\n"),
        )
        .unwrap();
        assert_eq!(j.dropped, 3);
        assert!(validate(&j).errors[0].contains("dropped 3"));
    }

    #[test]
    fn bench_stats_aggregate_cells_and_rounds() {
        let stats = bench_stats(&good_journal());
        assert_eq!(stats.cells, 2);
        assert_eq!(stats.total_merge_steps, 30);
        assert_eq!(stats.total_conflict_extra_cycles, 8);
        assert_eq!(stats.rounds, 2);
        assert!((stats.wall_s - 10e-6).abs() < 1e-12);
        // Durations 4 and 3 µs -> sorted [3, 4]; median rank rounds up.
        assert!((stats.cell_latency_median_s - 4e-6).abs() < 1e-12 * 10.0, "{stats:?}");
        assert!((stats.conflicts_per_round() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn diff_reports_count_changes() {
        let a = good_journal();
        let b =
            parse_journal(&[line(0, 1, 'B', "sweep", ""), line(1, 1, 'E', "sweep", "")].join("\n"))
                .unwrap();
        let d = diff(&a, &b);
        assert!(d.iter().any(|l| l.starts_with("cell:")), "{d:?}");
        assert!(d.iter().any(|l| l.starts_with("round-counters:")), "{d:?}");
        assert!(diff(&a, &a).is_empty());
    }

    #[test]
    fn summarize_names_every_record_kind() {
        let text = summarize(&good_journal());
        assert!(text.contains("records: 8"));
        assert!(text.contains("cell"));
        assert!(text.contains("round-counters"));
    }

    #[test]
    fn chrome_conversion_preserves_every_record() {
        let j = good_journal();
        let doc = crate::json::parse(&chrome_from_journal(&j)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), j.records.len());
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[2].get("args").unwrap().get("merge_steps").unwrap().as_u64(), Some(10));
        assert_eq!(events[2].get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err = parse_journal("{\"ts\":1}\n{nope").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    fn epoch_line(ts: u64, process: &str, unix_us: u64) -> String {
        format!(
            r#"{{"ts":{ts},"tid":0,"ph":"M","name":"epoch","fields":{{"process":"{process}","pid":7,"unix_us":{unix_us}}}}}"#
        )
    }

    fn span_line(ts: u64, ph: char, name: &str, span: &str, parent: Option<&str>) -> String {
        let fields = match parent {
            Some(p) => format!(r#"{{"trace":"t0","span":"{span}","parent":"{p}"}}"#),
            None => format!(r#"{{"trace":"t0","span":"{span}"}}"#),
        };
        line(ts, 1, ph, name, &fields)
    }

    fn named(label: &str, text: &str) -> (String, Journal) {
        (label.to_string(), parse_journal(text).unwrap())
    }

    #[test]
    fn epoch_records_parse_back() {
        let j = parse_journal(&epoch_line(42, "w0", 1_000_042)).unwrap();
        let e = journal_epoch(&j).unwrap();
        assert_eq!(e.process, "w0");
        assert_eq!(e.pid, 7);
        assert_eq!(e.unix_us, 1_000_042);
        assert_eq!(e.ts_us, 42);
        assert_eq!(journal_epoch(&Journal::default()), None);
    }

    #[test]
    fn join_normalizes_clocks_and_links_spans_across_files() {
        // Daemon clock starts ~1s before the unix anchor difference;
        // worker clock starts near zero. Offsets differ by 500µs.
        let daemon = [
            epoch_line(100, "daemon", 1_000_100),
            span_line(200, 'B', "request", "aaaa", None),
            span_line(900, 'E', "request", "aaaa", None),
        ]
        .join("\n");
        let worker = [
            epoch_line(5, "worker", 1_000_505),
            span_line(10, 'B', "sweep", "bbbb", Some("aaaa")),
            span_line(20, 'B', "cell", "cccc", Some("bbbb")),
            span_line(30, 'E', "cell", "cccc", None),
            span_line(40, 'E', "sweep", "bbbb", None),
        ]
        .join("\n");
        let (chrome, report) =
            join_journals(&[named("d.jsonl", &daemon), named("w.jsonl", &worker)]).unwrap();
        assert!(report.is_ok(), "{:?}", report.errors());
        assert_eq!(report.files, 2);
        assert_eq!(report.spans, 3);
        assert_eq!(report.roots, 1);
        let doc = crate::json::parse(&chrome).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 process_name metadata + 6 non-meta records (epochs skipped).
        assert_eq!(events.len(), 2 + 6);
        let request = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("request"))
            .unwrap();
        let sweep =
            events.iter().find(|e| e.get("name").and_then(Value::as_str) == Some("sweep")).unwrap();
        // Earliest record (daemon epoch, unix 1_000_100) rebases to 0:
        // request begins at unix 1_000_200 -> 100; worker sweep at
        // unix 1_000_510 -> 410, on a different pid.
        assert_eq!(request.get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(request.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(sweep.get("ts").unwrap().as_u64(), Some(410));
        assert_eq!(sweep.get("pid").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn join_reports_orphans_cycles_and_backwards_parents() {
        let orphaned = [
            epoch_line(0, "w", 1_000_000),
            span_line(1, 'B', "cell", "cccc", Some("ffff")),
            span_line(2, 'E', "cell", "cccc", None),
        ]
        .join("\n");
        let (_, report) = join_journals(&[named("w.jsonl", &orphaned)]).unwrap();
        assert!(!report.is_ok());
        assert_eq!(report.orphans.len(), 1, "{:?}", report.orphans);
        assert!(report.orphans[0].contains("ffff"), "{:?}", report.orphans);

        let cyclic = [
            epoch_line(0, "w", 1_000_000),
            span_line(1, 'B', "a", "aaaa", Some("bbbb")),
            span_line(2, 'B', "b", "bbbb", Some("aaaa")),
            span_line(3, 'E', "b", "bbbb", None),
            span_line(4, 'E', "a", "aaaa", None),
        ]
        .join("\n");
        let (_, report) = join_journals(&[named("w.jsonl", &cyclic)]).unwrap();
        assert_eq!(report.cycles.len(), 1, "{:?}", report.cycles);

        // Child normalizes to *before* its parent: worker's offset puts
        // its sweep 1ms earlier than the daemon request that caused it.
        let daemon = [
            epoch_line(0, "daemon", 2_000_000),
            span_line(100, 'B', "request", "aaaa", None),
            span_line(200, 'E', "request", "aaaa", None),
        ]
        .join("\n");
        let worker = [
            epoch_line(0, "worker", 1_000_000),
            span_line(10, 'B', "sweep", "bbbb", Some("aaaa")),
            span_line(20, 'E', "sweep", "bbbb", None),
        ]
        .join("\n");
        let (_, report) =
            join_journals(&[named("d.jsonl", &daemon), named("w.jsonl", &worker)]).unwrap();
        assert_eq!(report.non_monotonic.len(), 1, "{:?}", report.non_monotonic);
        assert!(report.non_monotonic[0].contains("before its parent"));
    }

    #[test]
    fn join_requires_an_epoch_per_journal() {
        let no_epoch = span_line(1, 'B', "a", "aaaa", None);
        let err = join_journals(&[named("bare.jsonl", &no_epoch)]).unwrap_err();
        assert!(err.contains("epoch"), "{err}");
        assert!(err.contains("bare.jsonl"), "{err}");
        assert!(join_journals(&[]).is_err());
    }

    #[test]
    fn join_aggregates_drop_counts_without_failing() {
        let truncated = [
            epoch_line(0, "w", 1_000_000),
            span_line(1, 'B', "a", "aaaa", None),
            span_line(2, 'E', "a", "aaaa", None),
            line(2, 0, 'M', "dropped-records", r#"{"dropped":5}"#),
        ]
        .join("\n");
        let (_, report) = join_journals(&[named("w.jsonl", &truncated)]).unwrap();
        assert_eq!(report.dropped, 5);
        assert!(report.is_ok(), "drops are reported, not causal violations");
    }

    #[test]
    fn validation_report_carries_the_drop_count() {
        let j = parse_journal(
            &[line(0, 1, 'I', "a", ""), line(0, 0, 'M', "dropped-records", r#"{"dropped":3}"#)]
                .join("\n"),
        )
        .unwrap();
        assert_eq!(validate(&j).dropped, 3);
        assert_eq!(validate(&good_journal()).dropped, 0);
    }
}
