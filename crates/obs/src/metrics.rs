//! The metrics registry: named monotonic counters, gauges, and
//! fixed-bucket histograms, exportable as a Prometheus text-format
//! snapshot.
//!
//! Metrics are the aggregate view (tracing is the sequential one): the
//! supervisor's `# sweep-summary` line is rebuilt from these counters,
//! and `--metrics <path>` dumps the whole registry at process exit.
//! Handles are cheap `Arc`s — look one up once, then `inc`/`add` are
//! single atomic operations with no lock. Registration order does not
//! matter: exports walk a `BTreeMap`, so snapshots are deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a settable `f64` (stored as bits, so round-trips are exact).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram (cumulative-export, Prometheus-style).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing; an
    /// implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Σ observations, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.0.bounds.partition_point(|b| v > *b);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` per finite bucket, then
    /// `(+Inf ≙ f64::INFINITY, total)`.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.0.bounds.len() + 1);
        for (i, b) in self.0.bounds.iter().enumerate() {
            acc += self.0.counts[i].load(Ordering::Relaxed);
            out.push((*b, acc));
        }
        acc += self.0.counts[self.0.bounds.len()].load(Ordering::Relaxed);
        out.push((f64::INFINITY, acc));
        out
    }
}

/// Latency buckets (seconds) used for the per-cell latency histogram:
/// 1 ms … 60 s, roughly logarithmic.
pub const LATENCY_BUCKETS_S: [f64; 10] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0];

/// A shared, clonable registry of named metrics. Clones alias the same
/// underlying maps (handing a registry to a worker is free).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter `name`, registering it at 0 on first use.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        self.inner
            .counters
            .lock()
            .expect("metrics lock poisoned")
            .entry(name.into())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge `name`, registering it at 0.0 on first use.
    pub fn gauge(&self, name: impl Into<String>) -> Gauge {
        self.inner
            .gauges
            .lock()
            .expect("metrics lock poisoned")
            .entry(name.into())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
            .clone()
    }

    /// The histogram `name` with the given finite bucket bounds
    /// (ignored — with the first registration's bounds kept — if the
    /// histogram already exists).
    pub fn histogram(&self, name: impl Into<String>, bounds: &[f64]) -> Histogram {
        self.inner
            .histograms
            .lock()
            .expect("metrics lock poisoned")
            .entry(name.into())
            .or_insert_with(|| {
                let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
                Histogram(Arc::new(HistogramInner {
                    bounds: bounds.to_vec(),
                    counts,
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0.0f64.to_bits()),
                }))
            })
            .clone()
    }

    /// Fold another registry into this one: counters add, gauges take
    /// the other's value, histogram buckets merge (the other's bounds
    /// are adopted for histograms this registry has not seen). Used to
    /// absorb a sweep-local registry into the session registry.
    pub fn absorb(&self, other: &MetricsRegistry) {
        for (name, c) in other.inner.counters.lock().expect("metrics lock poisoned").iter() {
            self.counter(name.clone()).add(c.get());
        }
        for (name, g) in other.inner.gauges.lock().expect("metrics lock poisoned").iter() {
            self.gauge(name.clone()).set(g.get());
        }
        for (name, h) in other.inner.histograms.lock().expect("metrics lock poisoned").iter() {
            let mine = self.histogram(name.clone(), &h.0.bounds);
            for (i, c) in h.0.counts.iter().enumerate() {
                if let Some(slot) = mine.0.counts.get(i) {
                    slot.fetch_add(c.load(Ordering::Relaxed), Ordering::Relaxed);
                }
            }
            mine.0.count.fetch_add(h.count(), Ordering::Relaxed);
            let sum = mine.sum() + h.sum();
            mine.0.sum_bits.store(sum.to_bits(), Ordering::Relaxed);
        }
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format, deterministically ordered by metric name.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.inner.counters.lock().expect("metrics lock poisoned").iter() {
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
        }
        for (name, g) in self.inner.gauges.lock().expect("metrics lock poisoned").iter() {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_f64(g.get())));
        }
        for (name, h) in self.inner.histograms.lock().expect("metrics lock poisoned").iter() {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (bound, cum) in h.cumulative_buckets() {
                let le = if bound.is_infinite() { "+Inf".to_string() } else { fmt_f64(bound) };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum())));
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }
}

/// Format an `f64` for text export: finite shortest-round-trip `{}`,
/// with non-finite values spelled the Prometheus way.
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

fn parse_f64(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other.parse().map_err(|_| format!("not a number: {other:?}")),
    }
}

/// Parse a snapshot produced by [`MetricsRegistry::prometheus_text`]
/// back into a registry — the inverse the multi-process merge step
/// needs to [`MetricsRegistry::absorb`] per-shard exports into one
/// unified registry. Counters, gauges, and histograms round-trip;
/// every sample line must be covered by a `# TYPE` declaration.
///
/// # Errors
///
/// Returns a description (with the line number) for any malformed
/// line, undeclared sample, or non-monotonic histogram buckets.
pub fn parse_prometheus_text(text: &str) -> Result<MetricsRegistry, String> {
    struct PartialHist {
        buckets: Vec<(f64, u64)>,
        sum: f64,
        count: u64,
    }
    let reg = MetricsRegistry::new();
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    let mut hists: BTreeMap<String, PartialHist> = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", i + 1);
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some(name), Some(kind @ ("counter" | "gauge" | "histogram"))) => {
                    kinds.insert(name.to_string(), kind.to_string());
                }
                _ => return Err(at(format!("malformed TYPE declaration: {raw:?}"))),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (HELP etc.) are ignorable
        }
        let (key, value) =
            line.rsplit_once(' ').ok_or_else(|| at(format!("no sample value: {raw:?}")))?;
        if let Some((name, rest)) = key.split_once("_bucket{le=\"") {
            let le = rest
                .strip_suffix("\"}")
                .ok_or_else(|| at(format!("malformed bucket label: {key:?}")))?;
            let bound = parse_f64(le).map_err(&at)?;
            let cum: u64 =
                value.parse().map_err(|_| at(format!("not a bucket count: {value:?}")))?;
            hists
                .entry(name.to_string())
                .or_insert_with(|| PartialHist { buckets: Vec::new(), sum: 0.0, count: 0 })
                .buckets
                .push((bound, cum));
            continue;
        }
        let hist_part = |suffix: &str| {
            key.strip_suffix(suffix)
                .filter(|base| kinds.get(*base).is_some_and(|k| k == "histogram"))
                .map(ToString::to_string)
        };
        if let Some(base) = hist_part("_sum") {
            let entry = hists.entry(base).or_insert_with(|| PartialHist {
                buckets: Vec::new(),
                sum: 0.0,
                count: 0,
            });
            entry.sum = parse_f64(value).map_err(&at)?;
            continue;
        }
        if let Some(base) = hist_part("_count") {
            let entry = hists.entry(base).or_insert_with(|| PartialHist {
                buckets: Vec::new(),
                sum: 0.0,
                count: 0,
            });
            entry.count = value.parse().map_err(|_| at(format!("not a count: {value:?}")))?;
            continue;
        }
        match kinds.get(key).map(String::as_str) {
            Some("counter") => reg
                .counter(key)
                .add(value.parse().map_err(|_| at(format!("not a counter value: {value:?}")))?),
            Some("gauge") => reg.gauge(key).set(parse_f64(value).map_err(&at)?),
            Some(other) => return Err(at(format!("{key}: unexpected sample for {other}"))),
            None => return Err(at(format!("{key}: sample without a TYPE declaration"))),
        }
    }
    for (name, p) in hists {
        // De-cumulate: per-bucket counts are successive differences;
        // the final +Inf bucket becomes the implicit overflow bucket.
        let finite: Vec<f64> =
            p.buckets.iter().map(|(b, _)| *b).filter(|b| b.is_finite()).collect();
        let h = reg.histogram(&name, &finite);
        let mut prev = 0u64;
        for (i, (_, cum)) in p.buckets.iter().enumerate() {
            let delta = cum
                .checked_sub(prev)
                .ok_or_else(|| format!("{name}: non-monotonic cumulative buckets"))?;
            prev = *cum;
            if let Some(slot) = h.0.counts.get(i) {
                slot.fetch_add(delta, Ordering::Relaxed);
            }
        }
        h.0.count.fetch_add(p.count, Ordering::Relaxed);
        h.0.sum_bits.store(p.sum.to_bits(), Ordering::Relaxed);
    }
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_handles() {
        let m = MetricsRegistry::new();
        m.counter("x_total").add(3);
        m.counter("x_total").inc();
        assert_eq!(m.counter("x_total").get(), 4);
    }

    #[test]
    fn gauge_round_trips_exactly() {
        let m = MetricsRegistry::new();
        m.gauge("wall_s").set(1.2345678901234567);
        assert_eq!(m.gauge("wall_s").get(), 1.2345678901234567);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = MetricsRegistry::new();
        let h = m.histogram("lat", &[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.cumulative_buckets(), vec![(1.0, 2), (10.0, 3), (f64::INFINITY, 4)]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 56.2).abs() < 1e-9);
    }

    #[test]
    fn boundary_value_lands_in_its_bucket() {
        // Prometheus buckets are `le` (≤): an observation equal to the
        // bound belongs to that bucket.
        let m = MetricsRegistry::new();
        let h = m.histogram("b", &[1.0]);
        h.observe(1.0);
        assert_eq!(h.cumulative_buckets()[0], (1.0, 1));
    }

    #[test]
    fn prometheus_text_is_deterministic_and_typed() {
        let m = MetricsRegistry::new();
        m.counter("b_total").add(2);
        m.counter("a_total").add(1);
        m.gauge("jobs").set(4.0);
        m.histogram("lat", &[1.0]).observe(0.5);
        let text = m.prometheus_text();
        let a = text.find("a_total 1").unwrap();
        let b = text.find("b_total 2").unwrap();
        assert!(a < b, "BTreeMap order: {text}");
        assert!(text.contains("# TYPE jobs gauge\njobs 4\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lat_count 1"), "{text}");
        assert_eq!(text, m.prometheus_text(), "snapshot must be reproducible");
    }

    /// The multi-process merge contract: a text snapshot parses back
    /// into a registry whose own snapshot is byte-identical, and the
    /// parsed registry absorbs like any in-process one.
    #[test]
    fn prometheus_text_round_trips_through_the_parser() {
        let m = MetricsRegistry::new();
        m.counter("sweep_cells_total").add(7);
        m.gauge("sweep_wall_seconds").set(2.5);
        let h = m.histogram("cell_latency_seconds", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = m.prometheus_text();
        let back = parse_prometheus_text(&text).unwrap();
        assert_eq!(back.prometheus_text(), text, "parse must invert the renderer");
        let sink = MetricsRegistry::new();
        sink.absorb(&back);
        sink.absorb(&back);
        assert_eq!(sink.counter("sweep_cells_total").get(), 14);
        assert_eq!(sink.histogram("cell_latency_seconds", &[0.1, 1.0]).count(), 6);
    }

    #[test]
    fn prometheus_parser_rejects_malformed_snapshots() {
        for hostile in [
            "x 1",                           // sample without TYPE
            "# TYPE x counter\nx nope",      // non-numeric counter
            "# TYPE x counter\nx",           // no value at all
            "# TYPE x gauge\n# TYPE x\nx 1", // malformed TYPE line
            "# TYPE l histogram\nl_bucket{le=\"1\"} 5\nl_bucket{le=\"+Inf\"} 3\nl_sum 0\nl_count 3",
        ] {
            assert!(parse_prometheus_text(hostile).is_err(), "{hostile:?} must be rejected");
        }
        // But unknown comments are fine.
        assert!(parse_prometheus_text("# HELP y stuff\n# TYPE y counter\ny 3\n").is_ok());
    }

    #[test]
    fn absorb_merges_all_metric_kinds() {
        let session = MetricsRegistry::new();
        session.counter("sweep_cells").add(10);
        let sweep = MetricsRegistry::new();
        sweep.counter("sweep_cells").add(5);
        sweep.gauge("sweep_jobs").set(4.0);
        sweep.histogram("lat", &[1.0]).observe(0.5);
        session.absorb(&sweep);
        assert_eq!(session.counter("sweep_cells").get(), 15);
        assert_eq!(session.gauge("sweep_jobs").get(), 4.0);
        assert_eq!(session.histogram("lat", &[1.0]).count(), 1);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let m = MetricsRegistry::new();
        let c = m.counter("n");
        let h = m.histogram("h", &[0.5]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(1.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 4000.0).abs() < 1e-9, "CAS sum must not lose updates");
    }
}
